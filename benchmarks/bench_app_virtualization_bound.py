"""Benchmark: model application 2 — ideal-hypervisor QoS ceiling."""

import pytest

from repro.experiments.applications import run_virtualization


@pytest.mark.benchmark(group="app2")
def test_app2_virtualization_bound(benchmark):
    result = benchmark(run_virtualization, seed=1, fast=True)
    assert result.summary["ideal_improvement"] >= result.summary["xen_improvement"] - 1e-6
