"""Ablation: the three Erlang-B evaluation strategies.

DESIGN.md calls out the numerical design choice: the paper's O(n)
recurrence versus the log-domain sum versus the continuous
incomplete-gamma extension (O(log n) inversion).  All three must agree;
the bench shows where each pays off.
"""

import pytest

from repro.queueing.erlang import (
    erlang_b,
    erlang_b_continuous,
    erlang_b_log,
    min_servers,
    min_servers_continuous,
)

CASES = [(8, 4.0), (100, 85.0), (2000, 1900.0)]


@pytest.mark.benchmark(group="ablation-erlang")
@pytest.mark.parametrize("n,rho", CASES, ids=["small", "medium", "large"])
def test_recurrence(benchmark, n, rho):
    value = benchmark(erlang_b, n, rho)
    assert 0.0 < value < 1.0


@pytest.mark.benchmark(group="ablation-erlang")
@pytest.mark.parametrize("n,rho", CASES, ids=["small", "medium", "large"])
def test_log_domain(benchmark, n, rho):
    value = benchmark(erlang_b_log, n, rho)
    assert value == pytest.approx(erlang_b(n, rho), rel=1e-8)


@pytest.mark.benchmark(group="ablation-erlang")
@pytest.mark.parametrize("n,rho", CASES, ids=["small", "medium", "large"])
def test_continuous(benchmark, n, rho):
    value = benchmark(erlang_b_continuous, n, rho)
    assert value == pytest.approx(erlang_b(n, rho), rel=1e-6)


@pytest.mark.benchmark(group="ablation-erlang-inversion")
def test_linear_inversion_mega_load(benchmark):
    n = benchmark(min_servers, 20_000.0, 0.01)
    # Economy of scale: at 20k erlangs, 1% blocking needs slightly FEWER
    # servers than erlangs (blocking trims the carried load).
    assert 19_000 < n < 20_100


@pytest.mark.benchmark(group="ablation-erlang-inversion")
def test_bisection_inversion_mega_load(benchmark):
    n = benchmark(min_servers_continuous, 20_000.0, 0.01)
    assert n == min_servers(20_000.0, 0.01)
