"""Performance benchmarks for the simulation substrate itself.

Not a paper artifact — these guard the reproducibility harness: the DES
engine and the fast loss-system simulator must stay fast enough that the
publication-grade (``--full``) experiment runs remain practical.
"""

import numpy as np
import pytest

from repro.queueing.poisson import poisson_arrivals
from repro.simulation.engine import Simulator
from repro.simulation.loss_network import (
    LossNetwork,
    ServiceTraffic,
    simulate_loss_system,
)
from repro.core.inputs import ResourceKind

CPU = ResourceKind.CPU


@pytest.mark.benchmark(group="engine")
def test_event_loop_throughput(benchmark):
    def run_chain():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule_in(0.001, tick)

        sim.schedule_at(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_chain) == 20_000


@pytest.mark.benchmark(group="engine")
def test_fast_loss_simulation_100k_arrivals(benchmark):
    rng = np.random.default_rng(3)
    arrivals = poisson_arrivals(10.0, 10_000.0, rng)

    def run():
        return simulate_loss_system(arrivals, 1.0, 8, np.random.default_rng(4))

    result = benchmark(run)
    assert result.arrived == arrivals.size


@pytest.mark.benchmark(group="engine")
def test_loss_network_event_rate(benchmark):
    def run():
        net = LossNetwork(
            4,
            [
                ServiceTraffic.exponential("a", 20.0, {CPU: 10.0}),
                ServiceTraffic.exponential("b", 5.0, {CPU: 2.0}),
            ],
        )
        return net.run(400.0, np.random.default_rng(5))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_arrived > 5000
