"""Benchmark: model application 1 — on-demand allocation algorithm bound."""

import pytest

from repro.experiments.applications import run_allocation


@pytest.mark.benchmark(group="app1")
def test_app1_allocation_bound(benchmark):
    result = benchmark.pedantic(
        run_allocation, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    by_name = {r["controller"]: r["goodput_fraction"] for r in result.rows}
    assert by_name["ideal_flow"] > by_name["static_partition"]
    assert result.summary["optimal_improvement"] > 1.0
