"""Benchmark: Fig. 2 — consolidation motivation traces."""

import pytest

from repro.experiments.fig02_motivation import run as run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_motivation(benchmark):
    result = benchmark(run_fig2, seed=1, fast=True)
    assert result.summary["peak_of_sum"] < result.summary["sum_of_peaks"]
    assert (
        result.summary["consolidated_servers_N"]
        < result.summary["dedicated_servers_M"]
    )
