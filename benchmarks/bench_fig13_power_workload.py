"""Benchmark: Fig. 13 — workload-attributed power."""

import pytest

from repro.experiments.fig13_power_workload import run as run_fig13


@pytest.mark.benchmark(group="fig13")
def test_fig13_power_workload(benchmark):
    result = benchmark.pedantic(
        run_fig13, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["workload_power_saving"] > 0.05
    assert result.summary["total_power_saving"] > 0.4
