"""Benchmark: Table I — the utility analytic model's sizing computation.

Regenerates the model's input/output table (M, lambda_w, lambda_d, B -> N)
and times the full Fig. 4 algorithm.  Asserts the paper's two verification
rows before timing.
"""

import pytest

from repro.core import UtilityAnalyticModel
from repro.experiments.casestudy import GROUP1, GROUP2
from repro.experiments.table1 import run as run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_rows(benchmark):
    result = benchmark(run_table1, seed=1, fast=True)
    assert result.summary["group1_matches_paper"]
    assert result.summary["group2_matches_paper"]


@pytest.mark.benchmark(group="table1")
def test_fig4_algorithm_group2(benchmark):
    """The bare solve() — what a capacity planner calls in a loop."""

    def solve():
        return UtilityAnalyticModel(GROUP2.inputs()).solve()

    solution = benchmark(solve)
    assert solution.dedicated_servers == 8
    assert solution.consolidated_servers == 4


@pytest.mark.benchmark(group="table1")
def test_fig4_algorithm_group1(benchmark):
    def solve():
        return UtilityAnalyticModel(GROUP1.inputs()).solve()

    solution = benchmark(solve)
    assert solution.dedicated_servers == 6
    assert solution.consolidated_servers == 3
