"""Benchmark: the five-service consolidation extension."""

import pytest

from repro.experiments.ext_multiservice import run as run_multiservice


@pytest.mark.benchmark(group="ext-multiservice")
def test_ext_multiservice(benchmark):
    result = benchmark.pedantic(
        run_multiservice, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["offered_sizing_meets_target"]
    assert result.summary["infrastructure_saving_offered"] > 0.5
