"""Benchmark: Fig. 10 — Group 1 verification (6 dedicated vs 2/3/4 shared).

Simulation-backed: run once (pedantic) and assert the paper's reading that
three shared servers match six dedicated ones.
"""

import pytest

from repro.experiments.fig10_group1 import run as run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_group1(benchmark):
    result = benchmark.pedantic(
        run_fig10, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["matches_model"]
    assert result.summary["smallest_similar_N_measured"] == 3
