"""Overhead guard for the observability layer.

The contract of :mod:`repro.obs` is that instrumentation hooks are
zero-cost when disabled: with the default null registry, the DES engine's
hot loop pays one cached boolean check per event.  This bench measures the
engine's event-chain throughput (same shape as
``bench_simulation_engine.test_event_loop_throughput``) in three
configurations:

- **bare** — a local replica of the engine loop with no instrumentation at
  all (the pre-observability baseline);
- **off** — the real :class:`~repro.simulation.engine.Simulator` under the
  default null registry;
- **on** — the real engine under an enabled registry;
- **telemetry** — the real engine under an enabled telemetry bus (the
  virtual-time series recorder added with the observability PR).

and asserts the *off* configuration stays within 5% of *bare* and the
*telemetry* configuration within 15% of *off*.  Timing uses min-of-repeats
(the standard low-noise estimator); the assertions retry a few times to
ride out scheduler jitter on shared CI machines.
"""

from __future__ import annotations

import heapq
import itertools
import timeit
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import TelemetryBus, scoped_bus, scoped_registry
from repro.simulation.engine import Simulator

CHAIN_LENGTH = 20_000
REPEATS = 7
MAX_OVERHEAD = 0.05
MAX_TELEMETRY_OVERHEAD = 0.15
ATTEMPTS = 5


@dataclass(order=True)
class _BareEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class BareSimulator:
    """The seed engine, verbatim: heap loop with no observability hooks."""

    def __init__(self) -> None:
        self._heap: list[_BareEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _BareEvent:
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = _BareEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> _BareEvent:
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


def _chain(sim_factory: Callable[[], object]) -> int:
    sim = sim_factory()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < CHAIN_LENGTH:
            sim.schedule_in(0.001, tick)

    sim.schedule_at(0.0, tick)
    sim.run()
    return count[0]


def _best_time(sim_factory: Callable[[], object]) -> float:
    timer = timeit.Timer(lambda: _chain(sim_factory))
    return min(timer.repeat(repeat=REPEATS, number=1))


def measure() -> dict[str, float]:
    """Best-of-N seconds per 20k-event chain for each configuration."""
    bare = _best_time(BareSimulator)
    off = _best_time(Simulator)
    with scoped_registry():
        on = _best_time(Simulator)
    with scoped_bus(TelemetryBus(bucket_width=1.0, max_buckets=256)):
        telemetry = _best_time(Simulator)
    return {"bare": bare, "off": off, "on": on, "telemetry": telemetry}


def test_disabled_observability_overhead_under_5pct():
    worst = None
    for _ in range(ATTEMPTS):
        times = measure()
        overhead = times["off"] / times["bare"] - 1.0
        worst = overhead if worst is None else min(worst, overhead)
        if worst <= MAX_OVERHEAD:
            break
    assert worst <= MAX_OVERHEAD, (
        f"disabled-observability engine is {100 * worst:.1f}% slower than the "
        f"bare loop (limit {100 * MAX_OVERHEAD:.0f}%)"
    )


def test_telemetry_overhead_under_15pct():
    worst = None
    for _ in range(ATTEMPTS):
        times = measure()
        overhead = times["telemetry"] / times["off"] - 1.0
        worst = overhead if worst is None else min(worst, overhead)
        if worst <= MAX_TELEMETRY_OVERHEAD:
            break
    assert worst <= MAX_TELEMETRY_OVERHEAD, (
        f"telemetry-enabled engine is {100 * worst:.1f}% slower than the "
        f"disabled configuration (limit {100 * MAX_TELEMETRY_OVERHEAD:.0f}%)"
    )


def test_chains_complete_in_every_configuration():
    assert _chain(BareSimulator) == CHAIN_LENGTH
    assert _chain(Simulator) == CHAIN_LENGTH
    with scoped_registry() as registry:
        assert _chain(Simulator) == CHAIN_LENGTH
        executed = registry.counter("sim_events_executed_total")
        assert executed.value == CHAIN_LENGTH
    with scoped_bus(TelemetryBus(bucket_width=1.0)) as bus:
        assert _chain(Simulator) == CHAIN_LENGTH
        recorded = sum(
            s.total for s in bus.series() if s.name == "engine.events"
        )
        assert recorded == CHAIN_LENGTH


if __name__ == "__main__":  # pragma: no cover - manual reporting entry point
    times = measure()
    bare, off, on = times["bare"], times["off"], times["on"]
    telemetry = times["telemetry"]
    print(f"bare engine        : {1e3 * bare:8.2f} ms / {CHAIN_LENGTH} events")
    print(
        f"instrumented (off) : {1e3 * off:8.2f} ms  "
        f"({100 * (off / bare - 1):+.1f}% vs bare)"
    )
    print(
        f"instrumented (on)  : {1e3 * on:8.2f} ms  "
        f"({100 * (on / bare - 1):+.1f}% vs bare)"
    )
    print(
        f"telemetry bus (on) : {1e3 * telemetry:8.2f} ms  "
        f"({100 * (telemetry / off - 1):+.1f}% vs off)"
    )
