"""Ablation: stressing the model's Poisson-arrival assumption.

The model assumes Poisson request arrivals (assumption 2, citing the WAN
session literature).  Real request streams are session-bursty.  This bench
drives the Erlang-sized loss system with increasingly bursty
session-structured arrivals at the same long-run rate and reports how far
the measured loss drifts above the Erlang target — quantifying when the
paper's sizing must be padded.
"""

import numpy as np
import pytest

from repro.queueing.erlang import erlang_b, min_servers
from repro.simulation.loss_network import simulate_loss_system
from repro.workloads.sessions import (
    SessionProfile,
    generate_session_arrivals,
    index_of_dispersion,
)

SERVICE_RATE = 1.0
TARGET_B = 0.02
REQUEST_RATE = 4.0
HORIZON = 20_000.0


def measured_loss(requests_per_session: float, seed: int = 31) -> tuple[float, float]:
    """(index of dispersion, measured loss) at fixed long-run rate."""
    rng = np.random.default_rng(seed)
    profile = SessionProfile(
        session_rate=REQUEST_RATE / requests_per_session,
        requests_per_session=requests_per_session,
        think_time=3.0,
    )
    arrivals = generate_session_arrivals(profile, HORIZON, rng)
    servers = min_servers(REQUEST_RATE / SERVICE_RATE, TARGET_B)
    result = simulate_loss_system(arrivals, 1.0 / SERVICE_RATE, servers, rng)
    iod = index_of_dispersion(arrivals, HORIZON, 10.0)
    return iod, result.loss_probability


@pytest.mark.benchmark(group="ablation-burstiness")
@pytest.mark.parametrize("burst", [1.0 + 1e-9, 5.0, 20.0],
                         ids=["poisson", "short-sessions", "long-sessions"])
def test_burstiness_vs_erlang(benchmark, burst):
    iod, loss = benchmark.pedantic(
        measured_loss, args=(burst,), rounds=1, iterations=1
    )
    servers = min_servers(REQUEST_RATE / SERVICE_RATE, TARGET_B)
    erlang = erlang_b(servers, REQUEST_RATE / SERVICE_RATE)
    if burst < 1.5:
        # Poisson limit: Erlang sizing holds.
        assert loss == pytest.approx(erlang, abs=0.015)
        assert iod == pytest.approx(1.0, abs=0.3)
    else:
        # Bursty: dispersion > 1 and loss above the Erlang promise.
        assert iod > 1.3
        assert loss > erlang


def test_burstiness_monotone():
    """More requests per session -> higher dispersion -> higher loss."""
    results = [measured_loss(b)[1] for b in (1.0 + 1e-9, 5.0, 20.0)]
    assert results[0] < results[-1]
