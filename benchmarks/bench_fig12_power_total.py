"""Benchmark: Fig. 12 — total fleet power, busy and idle."""

import pytest

from repro.experiments.fig12_power_total import run as run_fig12


@pytest.mark.benchmark(group="fig12")
def test_fig12_power_total(benchmark):
    result = benchmark.pedantic(
        run_fig12, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["power_saving_fraction"] == pytest.approx(0.53, abs=0.06)
    assert result.summary["busy_increase_below_17pct"]
