"""Benchmark: Fig. 9 — operating-point selection curves."""

import pytest

from repro.experiments.fig09_operating_point import run as run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_operating_point(benchmark):
    result = benchmark(run_fig9, seed=1, fast=True)
    assert result.summary["db_selection_within_limit"]
    assert result.summary["web_selection_within_limit"]
