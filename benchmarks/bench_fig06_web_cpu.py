"""Benchmark: Fig. 6 — CPU-bound Web sweep + impact regression."""

import pytest

from repro.experiments.fig06_web_cpu import run as run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_web_cpu(benchmark):
    result = benchmark(run_fig6, seed=1, fast=True)
    assert result.summary["fit_slope"] == pytest.approx(-0.039, abs=0.01)
    assert result.summary["fit_intercept"] == pytest.approx(0.658, abs=0.05)
    assert result.summary["native_over_1vm_peak"] > 1.3
