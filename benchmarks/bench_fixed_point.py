"""Benchmark: the Erlang fixed-point refinement of the Fig. 4 sizing.

Three blocking estimates for the consolidated Group-2 pool at N=4:

1. the paper's per-resource independent Erlang (optimistic Eq. 4 load);
2. the reduced-load fixed point over the offered loads (this repo's
   refinement);
3. the discrete-event loss network (ground truth).

The bench times (1) and (2) and asserts the accuracy ordering.
"""

import numpy as np
import pytest

from repro.core import ResourceKind, UtilityAnalyticModel
from repro.experiments.casestudy import GROUP2
from repro.queueing.erlang import erlang_b
from repro.queueing.fixed_point import fixed_point_for_inputs
from repro.simulation.datacenter import DataCenterSimulation

CPU = ResourceKind.CPU
N = 4


@pytest.mark.benchmark(group="fixed-point")
def test_paper_independent_erlang(benchmark):
    def estimate():
        inputs = GROUP2.inputs()
        return max(
            erlang_b(N, inputs.consolidated_load(r, "paper"))
            for r in inputs.resources
        )

    value = benchmark(estimate)
    assert value < 0.01  # the optimistic estimate meets the target on paper


@pytest.mark.benchmark(group="fixed-point")
def test_reduced_load_fixed_point(benchmark):
    result = benchmark(fixed_point_for_inputs, GROUP2.inputs(), N)
    assert result.converged
    assert result.worst_service_loss > 0.01  # refinement exposes the gap


@pytest.mark.benchmark(group="fixed-point")
def test_fixed_point_tracks_simulation(benchmark):
    def simulate():
        sim = DataCenterSimulation(GROUP2.inputs())
        return sim.run_consolidated(N, 400.0, np.random.default_rng(17))

    measured = benchmark.pedantic(simulate, rounds=1, iterations=1)
    fp = fixed_point_for_inputs(GROUP2.inputs(), N)
    sim_loss = max(measured.per_service_loss.values())
    # The fixed point is within ~1.5 loss points of the DES; the paper's
    # independent-Erlang estimate is ~4 points optimistic.
    assert sim_loss == pytest.approx(fp.worst_service_loss, abs=0.015)
    inputs = GROUP2.inputs()
    paper_est = max(
        erlang_b(N, inputs.consolidated_load(r, "paper")) for r in inputs.resources
    )
    assert abs(sim_loss - fp.worst_service_loss) < abs(sim_loss - paper_est)
