"""Ablation: infinite-source (Erlang) vs finite-source (Engset) sizing.

The paper sizes the DB tier with Erlang B, implicitly assuming infinitely
many emulated browsers.  TPC-W populations are finite and self-throttle,
so Erlang over-provisions when the EB count is comparable to the server
count; this bench sweeps the population and reports both sizings.
"""

import pytest

from repro.queueing.engset import engset_call_congestion, engset_min_servers
from repro.queueing.erlang import min_servers

RHO = 4.0   # nominal offered erlangs
TARGET = 0.01


def sizings(sources: int) -> tuple[int, int]:
    a = RHO / (sources - RHO)
    return min_servers(RHO, TARGET), engset_min_servers(sources, a, TARGET)


@pytest.mark.benchmark(group="ablation-engset")
@pytest.mark.parametrize("sources", [8, 16, 64, 1024], ids=lambda s: f"S{s}")
def test_engset_vs_erlang_sizing(benchmark, sources):
    erlang_n, engset_n = benchmark(sizings, sources)
    assert engset_n <= erlang_n
    if sources <= 16:
        # Small populations: the finite-source correction saves machines.
        assert engset_n < erlang_n
    a = RHO / (sources - RHO)
    assert engset_call_congestion(engset_n, sources, a) <= TARGET
