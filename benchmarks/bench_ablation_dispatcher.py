"""Ablation: front-end dispatching vs capability flowing.

The paper's consolidated platform lets capability flow to any request
(one pooled loss system); a weaker design keeps each server a separate
island behind an LVS front end.  This bench simulates N independent
single-server loss stations fed through each dispatcher policy and
compares their loss against the pooled Erlang system — quantifying how
much of the consolidation win comes from *flowing* rather than merely
*sharing a front end*.
"""

import heapq

import numpy as np
import pytest

from repro.cluster.dispatcher import make_dispatcher
from repro.queueing.erlang import erlang_b
from repro.queueing.poisson import poisson_arrivals

SERVERS = 4
LAMBDA = 3.2
MU = 1.0  # per-server service rate; pooled rho = 3.2 over 4 servers


def dispatched_loss(policy: str, rng: np.random.Generator, horizon=30_000.0) -> float:
    """Loss fraction when each backend is its own 1-server loss station."""
    arrivals = poisson_arrivals(LAMBDA, horizon, rng)
    holds = rng.exponential(1.0 / MU, arrivals.size)
    dispatcher = make_dispatcher(policy, SERVERS, weights=[1] * SERVERS, rng=rng)
    busy_until = np.zeros(SERVERS)
    in_flight_heap: list[tuple[float, int]] = []
    in_flight = [0] * SERVERS
    blocked = 0
    for t, h in zip(arrivals, holds):
        while in_flight_heap and in_flight_heap[0][0] <= t:
            _, backend = heapq.heappop(in_flight_heap)
            in_flight[backend] -= 1
        choice = dispatcher.pick(in_flight=in_flight)
        if in_flight[choice] == 0:
            in_flight[choice] = 1
            heapq.heappush(in_flight_heap, (t + h, choice))
        else:
            blocked += 1
    return blocked / arrivals.size


def pooled_loss(rng: np.random.Generator, horizon=30_000.0) -> float:
    """Loss when capability flows: one 4-server Erlang system."""
    from repro.simulation.loss_network import simulate_loss_system

    arrivals = poisson_arrivals(LAMBDA, horizon, rng)
    result = simulate_loss_system(arrivals, 1.0 / MU, SERVERS, rng)
    return result.loss_probability


@pytest.mark.benchmark(group="ablation-dispatcher")
@pytest.mark.parametrize("policy", ["rr", "random", "lc"])
def test_dispatched_islands(benchmark, policy):
    rng = np.random.default_rng(99)
    loss = benchmark.pedantic(
        dispatched_loss, args=(policy, rng), rounds=1, iterations=1
    )
    # Islands behind a dispatcher always lose more than the pooled system.
    assert loss > erlang_b(SERVERS, LAMBDA / MU)


@pytest.mark.benchmark(group="ablation-dispatcher")
def test_pooled_flowing(benchmark):
    rng = np.random.default_rng(99)
    loss = benchmark.pedantic(pooled_loss, args=(rng,), rounds=1, iterations=1)
    assert loss == pytest.approx(erlang_b(SERVERS, LAMBDA / MU), abs=0.02)


def test_policy_ordering():
    """Least-connections < round-robin < random in loss (no timing)."""
    rng = np.random.default_rng(7)
    lc = dispatched_loss("lc", rng)
    rr = dispatched_loss("rr", rng)
    rand = dispatched_loss("random", rng)
    assert lc <= rr + 0.01
    assert rr <= rand + 0.01
