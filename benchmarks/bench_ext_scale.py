"""Benchmark: the extension scale-analysis experiment."""

import pytest

from repro.experiments.ext_scale import run as run_ext_scale


@pytest.mark.benchmark(group="ext-scale")
def test_ext_scale(benchmark):
    result = benchmark(run_ext_scale, seed=1, fast=True)
    assert result.summary["multiplexing_strengthens"]
    assert result.summary["paper_estimate_optimistic_everywhere"]
