"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact (table/figure) or one
ablation and asserts its headline shape before timing it.  Expensive
simulation-backed artifacts use ``benchmark.pedantic`` with a single round
so the suite stays runnable in CI; the analytic ones benchmark normally.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(20090101)


def pytest_configure(config):
    # The benchmarks directory is not in testpaths; when invoked as
    # `pytest benchmarks/ --benchmark-only` this keeps output grouped.
    config.option.benchmark_group_by = "group"
