"""Ablation: capability pooling (the paper) vs VM bin packing (related work).

ReCon/Entropy-style consolidation reserves each VM's peak demand and packs
the reservations onto hosts; the paper pools capability and sizes with
Erlang.  This bench builds the Group-2 services as fleets of VM
reservations, packs them with FFD/BFD, and compares the host count with
the analytic model's N — measuring what static reservations forfeit.
"""

import pytest

from repro.core import ResourceKind, UtilityAnalyticModel
from repro.experiments.casestudy import GROUP2, MU_DB_CPU, MU_WEB_DISK_IO
from repro.virtualization.placement import (
    VmDemand,
    best_fit_decreasing,
    first_fit_decreasing,
    migration_plan,
)

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def reservation_fleet(peak_factor: float = 2.0) -> list[VmDemand]:
    """VM reservations covering Group 2's workload with peak headroom.

    Each service is split into per-VM slices sized so that the *reserved*
    capacity covers ``peak_factor`` x the mean offered load — the static
    provisioning rule reservation-based consolidation uses.
    """
    vms: list[VmDemand] = []
    web_load = GROUP2.web_rate / (MU_WEB_DISK_IO * 0.8)  # disk erlangs
    db_load = GROUP2.db_rate / (MU_DB_CPU * 0.9)         # cpu erlangs
    for name, load, kind in (
        ("web", web_load, DISK),
        ("db", db_load, CPU),
    ):
        reserved = load * peak_factor
        slices = max(1, int(reserved / 0.5 + 0.999))
        per_slice = reserved / slices
        for i in range(slices):
            vms.append(VmDemand(f"{name}-{i}", {kind: per_slice, CPU: per_slice * 0.4}
                                if kind is DISK else {kind: per_slice}))
    return vms


@pytest.mark.benchmark(group="ablation-placement")
@pytest.mark.parametrize("pack", [first_fit_decreasing, best_fit_decreasing],
                         ids=["ffd", "bfd"])
def test_packing_vs_pooling(benchmark, pack):
    vms = reservation_fleet()
    plan = benchmark(pack, vms)
    pooled_n = UtilityAnalyticModel(GROUP2.inputs()).solve().consolidated_servers
    # Reservation packing with 2x peak headroom needs at least as many
    # hosts as the Erlang pooling that shares the headroom statistically.
    assert plan.hosts_used >= pooled_n
    plan.validate()


@pytest.mark.benchmark(group="ablation-placement")
def test_reconfiguration_cost(benchmark):
    """Entropy-style migration count between day and night packings."""
    day = reservation_fleet(peak_factor=2.0)
    night = reservation_fleet(peak_factor=2.0)
    # Night workload drops: reuse names but shrink by dropping slices.
    night = night[: max(2, len(night) // 2)]

    def replan():
        day_plan = first_fit_decreasing([v for v in day if any(
            v.name == n.name for n in night)])
        night_plan = first_fit_decreasing(night)
        return migration_plan(day_plan, night_plan)

    moves = benchmark(replan)
    assert isinstance(moves, list)
