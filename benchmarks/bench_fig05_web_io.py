"""Benchmark: Fig. 5 — Web throughput sweep + disk-I/O impact regression."""

import pytest

from repro.experiments.fig05_web_io import run as run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_web_io(benchmark):
    result = benchmark(run_fig5, seed=1, fast=True)
    assert result.summary["fit_slope"] == pytest.approx(-0.012, abs=0.01)
    assert result.summary["fit_intercept"] == pytest.approx(1.082, abs=0.05)
    assert result.summary["bottleneck"] == "disk_io"
