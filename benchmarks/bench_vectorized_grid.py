"""Benchmark: batched Erlang-B inversion vs the scalar per-point loop.

The same deterministic (rho, B) grid as the registered
``vectorized_grid::*`` benchmarks (:mod:`repro.parallel.benchreg`),
wrapped pytest-benchmark style for the discovered suite.  The vectorized
test doubles as an exactness check: the lockstep kernel must reproduce
the scalar loop's fleet sizes element for element — the compatibility
contract that lets the golden pins survive the API redesign.

The pytest variants run a 10k-point grid so a discovered-suite pass stays
quick; the registered specs cover the gated 100k and headline 1M sizes.
"""

import pytest

from repro.parallel.benchreg import solve_grid_scalar, solve_grid_vectorized

POINTS = 10_000


@pytest.mark.benchmark(group="vectorized-grid")
def test_vectorized_grid_scalar(benchmark):
    sizes = benchmark(solve_grid_scalar, POINTS)
    assert len(sizes) == POINTS
    # Fleet sizes grow with offered load across the grid.
    assert sizes[-1] > sizes[0]


@pytest.mark.benchmark(group="vectorized-grid")
def test_vectorized_grid_vectorized_matches_scalar(benchmark):
    sizes = benchmark(solve_grid_vectorized, POINTS)
    assert (sizes == solve_grid_scalar(POINTS)).all()
