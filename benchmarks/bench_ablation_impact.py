"""Ablation: sensitivity of the consolidated sizing to the impact factors.

The impact factors are measured quantities with error bars; this bench
sweeps them around the paper's operating point and reports how N responds
— telling an operator how precisely a(v) must be measured before trusting
the plan.  Also compares the two readings of the garbled DB curve.
"""

import pytest

from repro.core import ModelInputs, ResourceKind, ServiceSpec, UtilityAnalyticModel
from repro.virtualization.impact import DB_CPU_IMPACT, DB_CPU_IMPACT_LITERAL

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def consolidated_n(a_wc: float, a_dc: float, a_wi: float = 0.8) -> int:
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: a_wc, DISK: a_wi}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: a_dc})
    return UtilityAnalyticModel(ModelInputs((web, db), 0.01)).solve().consolidated_servers


@pytest.mark.benchmark(group="ablation-impact")
@pytest.mark.parametrize("delta", [-0.2, -0.1, 0.0, 0.1, 0.2], ids=lambda d: f"{d:+.1f}")
def test_impact_sensitivity(benchmark, delta):
    n = benchmark(consolidated_n, 0.65 + delta, 0.9 + delta * 0.5)
    assert 3 <= n <= 6  # stays in a plannable band across +-0.2 error


def test_worse_impacts_never_shrink_n():
    baseline = consolidated_n(0.65, 0.9)
    degraded = consolidated_n(0.45, 0.7)
    assert degraded >= baseline


def test_db_curve_reading_does_not_change_case_study():
    # Both readings of the garbled Fig. 8 formula give a(2 VMs) > 1.3, far
    # from the binding constraint; the case-study N is insensitive.
    for model in (DB_CPU_IMPACT, DB_CPU_IMPACT_LITERAL):
        a2 = model.impact(2)
        assert consolidated_n(0.65, min(a2, 1.85)) <= 4
