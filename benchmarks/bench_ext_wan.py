"""Benchmark: the Poisson-assumption stress extension."""

import pytest

from repro.experiments.ext_wan import run as run_ext_wan


@pytest.mark.benchmark(group="ext-wan")
def test_ext_wan(benchmark):
    result = benchmark.pedantic(
        run_ext_wan, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["poisson_matches_erlang"]
    assert result.summary["burstier_traffic_blocks_more"]
