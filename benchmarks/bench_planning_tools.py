"""Benchmarks: the planning-layer extensions (dynamic, sensitivity, N+k).

Times the tools an operator would run interactively, guarding against
regressions that would make the planning loop sluggish.
"""

import numpy as np
import pytest

from repro.cluster.availability import ServerReliability, servers_with_redundancy
from repro.core.dynamic import DynamicCapacityPlanner
from repro.core.sensitivity import sensitivity_report
from repro.experiments.casestudy import GROUP2, db_service, web_service


@pytest.mark.benchmark(group="planning-tools")
def test_dynamic_plan_24h(benchmark):
    planner = DynamicCapacityPlanner(
        [web_service(1.0), db_service(1.0)], loss_probability=0.01
    )
    hours = np.arange(24.0)
    profile = [
        {
            "web": 300.0 + 900.0 * max(0.0, np.sin((h - 6.0) * np.pi / 12.0)),
            "db": 20.0 + 60.0 * max(0.0, np.sin((h - 12.0) * np.pi / 12.0)),
        }
        for h in hours
    ]
    plan = benchmark(planner.plan, profile)
    assert plan.energy_saving >= 0.0
    assert plan.peak_servers >= 1


@pytest.mark.benchmark(group="planning-tools")
def test_sensitivity_tornado(benchmark):
    report = benchmark(sensitivity_report, GROUP2.inputs(), 0.2)
    assert report.baseline_n == 4
    assert len(report.entries) == 9  # 2 lambdas + 3 mus + 3 impacts + B


@pytest.mark.benchmark(group="planning-tools")
def test_redundancy_sizing(benchmark):
    rel = ServerReliability(mtbf=400.0, mttr=48.0)
    fleet = benchmark(servers_with_redundancy, 8, rel, 0.999)
    assert fleet > 8
