"""Ablation: the paper's Eq. 4 arithmetic mixture vs the offered load.

DESIGN.md documents that the paper's consolidated serving rate is an
arithmetic mean of per-service rates (optimistic; it also lets an
infinite-rate service erase a resource constraint), while the
queueing-exact offered load is the harmonic mixture.  This bench sweeps
workload scale and loss targets and reports how far apart the two sizings
land — the quantitative price of the paper's simplification.
"""

import pytest

from repro.core import UtilityAnalyticModel
from repro.experiments.casestudy import case_study_inputs


def sizing_gap(scale: float, b: float = 0.01) -> tuple[int, int]:
    inputs = case_study_inputs(1200.0 * scale, 80.0 * scale, b)
    paper = UtilityAnalyticModel(inputs, load_model="paper").solve()
    offered = UtilityAnalyticModel(inputs, load_model="offered").solve()
    return paper.consolidated_servers, offered.consolidated_servers


@pytest.mark.benchmark(group="ablation-load-model")
@pytest.mark.parametrize("scale", [0.5, 1.0, 2.0, 8.0], ids=lambda s: f"x{s}")
def test_load_model_gap(benchmark, scale):
    n_paper, n_offered = benchmark(sizing_gap, scale)
    # The paper's model is never more conservative.
    assert n_paper <= n_offered
    # And the gap is material at the case-study operating point.
    if scale == 1.0:
        assert n_offered - n_paper >= 1


@pytest.mark.benchmark(group="ablation-load-model")
def test_gap_converges_to_load_ratio_at_scale(benchmark):
    def compute():
        return sizing_gap(64.0)

    n_paper, n_offered = benchmark(compute)
    # The two loads differ by a fixed factor (AM/HM of the rate mixture),
    # so at scale the sizing ratio converges to the load ratio — the
    # paper's optimism does NOT wash out with size.
    from repro.core import ResourceKind
    from repro.experiments.casestudy import case_study_inputs

    inputs = case_study_inputs(1200.0 * 64.0, 80.0 * 64.0, 0.01)
    load_ratio = inputs.consolidated_load(
        ResourceKind.CPU, "paper"
    ) / inputs.consolidated_load(ResourceKind.CPU, "offered")
    assert n_paper / n_offered == pytest.approx(load_ratio, abs=0.1)
