"""Benchmark: sweep-engine throughput, serial vs process pool.

The same Erlang-inversion grid as the registered ``parallel_sweep::*``
benchmarks (:mod:`repro.parallel.benchreg`), wrapped pytest-benchmark
style for the discovered suite.  The jobs=4 test doubles as a determinism
check: the pooled results must equal the serial ones element for element,
which is the engine's core guarantee.
"""

import pytest

from repro.parallel.benchreg import GRID, run_sweep


@pytest.mark.benchmark(group="parallel-sweep")
def test_parallel_sweep_serial(benchmark):
    rows = benchmark(run_sweep, 1)
    assert len(rows) == len(GRID)
    # Fleet sizes grow with offered load across the grid.
    assert rows[-1][0] > rows[0][0]


@pytest.mark.benchmark(group="parallel-sweep")
def test_parallel_sweep_jobs4_matches_serial(benchmark):
    rows = benchmark(run_sweep, 4)
    assert rows == run_sweep(1)
