"""Benchmark: Fig. 11 — Group 2 verification (8 dedicated vs 4 shared)."""

import pytest

from repro.experiments.fig11_group2 import run as run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11_group2(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs={"seed": 1, "fast": True}, rounds=1, iterations=1
    )
    assert result.summary["qos_preserved"]
    assert result.summary["cpu_util_improvement_measured"] > 1.5
