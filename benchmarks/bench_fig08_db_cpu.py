"""Benchmark: Fig. 8 — DB WIPS curves and the saturating impact factor."""

import pytest

from repro.experiments.fig08_db_cpu import run as run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_db_cpu(benchmark):
    result = benchmark(run_fig8, seed=1, fast=True)
    assert result.summary["software_bottleneck_confirmed"]
    assert result.summary["fit_ceiling"] == pytest.approx(1.85, abs=0.15)
