"""Ablation: heterogeneous-server normalization (paper Section IV.D).

The paper normalizes mixed hardware to reference-equivalent units and
defers full heterogeneity to future work.  This bench exercises our
implementation of that normalization: plan on the normalized fleet, pack
onto real machines, and check the packing always covers the plan (the
conservative min-ratio rule never over-promises).
"""

import pytest

from repro.core import (
    ConsolidationPlanner,
    HeterogeneousPool,
    ResourceKind,
    ServerClass,
)
from repro.experiments.casestudy import GROUP2

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO

AMD = ServerClass("amd-2350", {CPU: 16.0, DISK: 100.0}, count=8)
# The paper's observation: the Intel box's nameplate clock ratio (2.33/2.0)
# overstated its measured DB throughput by ~20% -> measured_scale 0.83.
INTEL = ServerClass(
    "intel-5140", {CPU: 18.6, DISK: 100.0}, count=8, measured_scale=0.83
)


def plan_with_inventory():
    planner = ConsolidationPlanner(
        inventory=HeterogeneousPool([AMD, INTEL], reference=AMD)
    )
    return planner.plan(list(GROUP2.inputs().services), 0.01)


@pytest.mark.benchmark(group="ablation-heterogeneous")
def test_heterogeneous_packing(benchmark):
    report = benchmark(plan_with_inventory)
    pool = HeterogeneousPool([AMD, INTEL], reference=AMD)
    # Packing must cover the normalized demand for both deployments.
    for packing, demand in (
        (report.consolidated_packing, report.consolidated_servers),
        (report.dedicated_packing, report.dedicated_servers),
    ):
        supplied = sum(
            next(c for c in pool.classes if c.name == name).normalized_bottleneck(AMD)
            * count
            for name, count in packing.items()
        )
        assert supplied + 1e-9 >= demand


def test_measured_scale_changes_packing():
    nameplate = ServerClass("intel-nameplate", {CPU: 18.6, DISK: 100.0}, count=8)
    pool_measured = HeterogeneousPool([INTEL], reference=AMD)
    pool_nameplate = HeterogeneousPool([nameplate], reference=AMD)
    # Nameplate ratio (1.16) flatters the Intel boxes; measured (0.83) needs
    # more machines for the same normalized demand.
    assert sum(pool_measured.pack(5.0).values()) > sum(
        pool_nameplate.pack(5.0).values()
    )
