"""Benchmark: Fig. 7 — vCPU allocation and pinning effect on the DB VM."""

import pytest

from repro.experiments.fig07_vcpu_pinning import run as run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_vcpu_pinning(benchmark):
    result = benchmark(run_fig7, seed=1, fast=True)
    assert result.summary["pinned_peak_wips"] > result.summary["floating_peak_wips"]
