"""Benchmark: the CPU-utilization-improvement claim (Section IV.C.2).

Paper: measured 1.7x vs model 1.5x for Group 2.  Our busy-time accounting
predicts ~2.5x and the simulation confirms it (see EXPERIMENTS.md); the
bench asserts model/simulation agreement and times both paths.
"""

import numpy as np
import pytest

from repro.core import ResourceKind, UtilityAnalyticModel, utilization_report
from repro.experiments.casestudy import GROUP2
from repro.simulation.datacenter import DataCenterSimulation


@pytest.mark.benchmark(group="utilization")
def test_model_utilization_ratio(benchmark):
    def compute():
        solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
        return utilization_report(solution)

    report = benchmark(compute)
    assert report.resource(ResourceKind.CPU).improvement > 1.5


@pytest.mark.benchmark(group="utilization")
def test_simulated_utilization_ratio(benchmark):
    def simulate():
        sim = DataCenterSimulation(GROUP2.inputs())
        rng = np.random.default_rng(5)
        return sim.run_case_study(GROUP2.island_sizes, 4, 120.0, rng)

    case = benchmark.pedantic(simulate, rounds=1, iterations=1)
    measured = case.utilization_improvement(ResourceKind.CPU)
    solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
    predicted = utilization_report(solution).resource(ResourceKind.CPU).improvement
    assert measured == pytest.approx(predicted, rel=0.2)
