"""Command-line consolidation planner (``repro-plan`` / ``python -m repro``).

Feeds a JSON deployment description through the utility analytic model and
prints the consolidation report — the tool an operator would actually run.

JSON schema (see ``examples/deployment.json``)::

    {
      "loss_probability": 0.01,
      "services": [
        {
          "name": "web",
          "arrival_rate": 1200.0,
          "service_rates": {"cpu": 3360.0, "disk_io": 1420.0},
          "impact_factors": {"cpu": 0.65, "disk_io": 0.8},
          "loss_probability": 0.001          # optional per-service SLA
        },
        ...
      ],
      "power": {"base_watts": 250.0, "max_watts": 295.0},   # optional
      "xen_idle_factor": 0.91,                               # optional
      "xen_workload_factor": 0.70                            # optional
    }

Flags: ``--load-model {paper,offered}`` selects the Eq. 4 reading,
``--json`` emits machine-readable output instead of the text report, and
``--metrics-out`` / ``--trace-out`` enable the observability layer
(:mod:`repro.obs`) and export a Prometheus metric snapshot / JSONL trace
of the planning run; ``--profile-out`` additionally profiles the run
(cProfile + tracemalloc) and dumps a top-N hotspot report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from .core import (
    ConsolidationPlanner,
    ConsolidationReport,
    ModelInputs,
    ResourceKind,
    ServerPowerModel,
    ServiceSpec,
    UtilityAnalyticModel,
)
from .core.multiqos import solve_with_targets
from .core.power import power_comparison
from .core.utilization import utilization_report
from .obs import (
    MetricsRegistry,
    SpanProfiler,
    TraceLog,
    scoped_registry,
    scoped_trace,
    write_prometheus,
    write_trace_jsonl,
)

__all__ = ["main", "parse_deployment"]


class DeploymentError(ValueError):
    """Raised for malformed deployment descriptions (exit code 2)."""


def _resource(name: str) -> ResourceKind:
    try:
        return ResourceKind(name)
    except ValueError:
        valid = ", ".join(r.value for r in ResourceKind)
        raise DeploymentError(
            f"unknown resource {name!r}; valid kinds: {valid}"
        ) from None


def _service(entry: Mapping[str, Any]) -> tuple[ServiceSpec, float | None]:
    for field in ("name", "arrival_rate", "service_rates"):
        if field not in entry:
            raise DeploymentError(f"service entry missing {field!r}: {entry}")
    rates = {_resource(k): float(v) for k, v in entry["service_rates"].items()}
    impacts = {
        _resource(k): float(v)
        for k, v in entry.get("impact_factors", {}).items()
    }
    try:
        spec = ServiceSpec(
            name=str(entry["name"]),
            arrival_rate=float(entry["arrival_rate"]),
            service_rates=rates,
            impact_factors=impacts,
        )
    except (TypeError, ValueError) as exc:
        raise DeploymentError(f"invalid service {entry.get('name')!r}: {exc}") from exc
    target = entry.get("loss_probability")
    return spec, (float(target) if target is not None else None)


def parse_deployment(doc: Mapping[str, Any]):
    """Validate a deployment document.

    Returns ``(inputs, per_service_targets, planner)``.
    """
    if "services" not in doc or not doc["services"]:
        raise DeploymentError("deployment must list at least one service")
    if "loss_probability" not in doc:
        raise DeploymentError("deployment must set loss_probability")
    services = []
    targets: dict[str, float] = {}
    for entry in doc["services"]:
        spec, target = _service(entry)
        services.append(spec)
        if target is not None:
            targets[spec.name] = target
    try:
        inputs = ModelInputs(tuple(services), float(doc["loss_probability"]))
    except ValueError as exc:
        raise DeploymentError(str(exc)) from exc

    power_doc = doc.get("power", {})
    try:
        power = ServerPowerModel(
            base_watts=float(power_doc.get("base_watts", 250.0)),
            max_watts=float(power_doc.get("max_watts", 295.0)),
        )
        planner = ConsolidationPlanner(
            power_model=power,
            xen_idle_factor=float(doc.get("xen_idle_factor", 1.0)),
            xen_workload_factor=float(doc.get("xen_workload_factor", 1.0)),
        )
    except ValueError as exc:
        raise DeploymentError(str(exc)) from exc
    return inputs, targets, planner


def _build_report(
    inputs: ModelInputs, planner: ConsolidationPlanner, load_model: str
) -> ConsolidationReport:
    """Solve once under ``load_model`` and assemble the full report.

    Used for both Eq. 4 readings — for ``"paper"`` this produces exactly
    what :meth:`ConsolidationPlanner.plan` would, without a second solve.
    """
    solution = UtilityAnalyticModel(inputs, load_model=load_model).solve()
    util = utilization_report(solution)
    power = power_comparison(
        solution,
        power_model=planner.power_model,
        xen_idle_factor=planner.xen_idle_factor,
        xen_workload_factor=planner.xen_workload_factor,
        utilization=util,
    )
    dedicated_packing = consolidated_packing = None
    if planner.inventory is not None:
        dedicated_packing = planner.inventory.pack(solution.dedicated_servers)
        consolidated_packing = planner.inventory.pack(solution.consolidated_servers)
    return ConsolidationReport(
        solution=solution,
        utilization=util,
        power=power,
        dedicated_packing=dedicated_packing,
        consolidated_packing=consolidated_packing,
    )


def _report_json(report, inputs, targets, load_model) -> dict:
    out = {
        "load_model": load_model,
        "loss_probability": inputs.loss_probability,
        "dedicated_servers": report.dedicated_servers,
        "consolidated_servers": report.consolidated_servers,
        "infrastructure_saving": report.infrastructure_saving,
        "power_saving": report.power_saving,
        "utilization_improvement": report.utilization_improvement,
        "dedicated_breakdown": {
            d.service.name: d.servers for d in report.solution.dedicated
        },
        "consolidated_bottleneck": (
            str(report.solution.consolidated_bottleneck)
            if report.solution.consolidated_bottleneck
            else None
        ),
    }
    if targets:
        multi = solve_with_targets(inputs, targets, load_model)
        out["per_service_targets"] = dict(multi.targets)
        out["consolidated_servers_with_targets"] = multi.consolidated_servers
        out["dedicated_servers_with_targets"] = multi.dedicated_servers
    return out


def _control_preview(inputs: ModelInputs, power_model) -> dict:
    """One-day reactive-consolidation preview for ``--control``.

    Treats each service's planned arrival rate as its daily peak with a
    40% off-peak trough (the classic Internet diurnal swing), then runs
    the reactive :class:`~repro.control.ConsolidationController` over the
    deterministic day and reports what it would save against keeping the
    peak fleet on — the planning-time view of the ext-dynamic experiment.
    """
    from .control import ConsolidationController, ControllerConfig, FleetState
    from .core.dynamic import DynamicCapacityPlanner
    from .virtualization.placement import VmDemand
    from .workloads.traces import DiurnalProfile, TraceBundle

    import numpy as np

    profiles = [
        DiurnalProfile(
            s.name, base=0.4 * s.arrival_rate, peak=s.arrival_rate, noise=0.0
        )
        for s in inputs.services
    ]
    bundle = TraceBundle.sample(
        profiles, days=1, samples_per_hour=2, rng=np.random.default_rng(0)
    )
    dyn = DynamicCapacityPlanner(
        list(inputs.services),
        inputs.loss_probability,
        power_model=power_model,
        period_length=1800.0,
        hold_periods=1,
    )
    ticks = [
        {name: float(tr[i]) for name, tr in bundle.traces.items()}
        for i in range(bundle.hours.size)
    ]
    needed = [dyn.servers_needed(rates) for rates in ticks]
    peak_needed = max(needed)
    base_needed = min(needed)
    vms = [
        VmDemand(f"vm-{i}", {ResourceKind.CPU: 0.25})
        for i in range(2 * base_needed)
    ]
    fleet = FleetState(
        int(np.ceil(1.5 * peak_needed)) + 2,
        vms,
        initial_on=int(np.ceil(1.15 * base_needed)),
    )
    controller = ConsolidationController(
        dyn, fleet, ControllerConfig(interval=0.5, pool="plan-preview")
    )
    for i, rates in enumerate(ticks):
        controller.tick(float(bundle.hours[i]), rates, dyn.offered_load(rates))
    summary = controller.summary()
    static_hours = peak_needed * 24.0
    out = {
        "static_peak_servers": peak_needed,
        "static_server_hours_per_day": round(static_hours, 1),
        "reactive_server_hours_per_day": summary["server_hours"],
        "saving_pct": round(
            100.0 * (1.0 - summary["server_hours"] / static_hours), 1
        )
        if static_hours
        else 0.0,
        "boots": summary["boots"],
        "shutdowns": summary["shutdowns"],
        "migrations": summary["migrations"],
    }
    if out["saving_pct"] <= 0.0:
        out["note"] = (
            "safety headroom dominates at this fleet size; dynamic "
            "control pays off at larger scale (see the ext-dynamic "
            "experiment)"
        )
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Plan VM-based server consolidation with the utility analytic model.",
    )
    parser.add_argument("deployment", help="path to the deployment JSON file")
    parser.add_argument(
        "--load-model",
        choices=("paper", "offered"),
        default="paper",
        help="Eq. 4 reading: the paper's arithmetic mixture, or the "
        "conservative offered load (recommended for hard SLAs)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--control",
        action="store_true",
        help="append a one-day reactive-consolidation preview (each "
        "service's rate as its diurnal peak, 40%% trough): projected "
        "server-hour saving, boots, shutdowns, migrations",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="enable observability and write a Prometheus-format metric "
        "snapshot to FILE",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="enable observability and write the JSONL event trace to FILE",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="profile the planning run (cProfile + tracemalloc) and write "
        "the top-N hotspot report to FILE",
    )
    args = parser.parse_args(argv)

    path = Path(args.deployment)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: invalid JSON in {path}: {exc}", file=sys.stderr)
        return 2

    try:
        inputs, targets, planner = parse_deployment(doc)
    except DeploymentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    observed = bool(args.metrics_out or args.trace_out or args.profile_out)
    registry = MetricsRegistry("repro-plan") if observed else None
    trace = TraceLog() if observed else None
    profiler = SpanProfiler() if args.profile_out else None

    # One solve, under the requested Eq. 4 reading, for the whole report.
    if observed:
        with scoped_registry(registry), scoped_trace(trace):
            span = (
                profiler.span(trace, "plan", deployment=str(path), load_model=args.load_model)
                if profiler is not None
                else trace.span("plan", deployment=str(path), load_model=args.load_model)
            )
            with span:
                report = _build_report(inputs, planner, args.load_model)
    else:
        report = _build_report(inputs, planner, args.load_model)

    if observed:
        try:
            if args.metrics_out:
                write_prometheus(registry, args.metrics_out)
            if args.trace_out:
                write_trace_jsonl(trace, args.trace_out)
            if profiler is not None:
                profiler.write(args.profile_out)
        except OSError as exc:
            print(f"error: cannot write observability output: {exc}", file=sys.stderr)
            return 1

    preview = (
        _control_preview(inputs, planner.power_model) if args.control else None
    )
    if args.json:
        doc_out = _report_json(report, inputs, targets, args.load_model)
        if preview is not None:
            doc_out["control_preview"] = preview
        print(json.dumps(doc_out, indent=2))
    else:
        print(report.to_text())
        if preview is not None:
            print()
            print("  Dynamic consolidation preview (1-day diurnal swing):")
            print(
                f"    static peak fleet : {preview['static_peak_servers']} "
                f"servers ({preview['static_server_hours_per_day']} server-hours/day)"
            )
            print(
                f"    reactive control  : "
                f"{preview['reactive_server_hours_per_day']} server-hours/day "
                f"({preview['saving_pct']}% saving)"
            )
            print(
                f"    actions           : {preview['boots']} boots, "
                f"{preview['shutdowns']} shutdowns, "
                f"{preview['migrations']} migrations"
            )
            if "note" in preview:
                print(f"    note              : {preview['note']}")
        if targets:
            multi = solve_with_targets(inputs, targets, args.load_model)
            print()
            print("  Per-service QoS targets:")
            for name, b in multi.targets.items():
                print(f"    {name:<12s} B = {b:g}")
            print(
                f"  Consolidated servers under targets: {multi.consolidated_servers}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
