"""Simulated Xen-like hypervisor.

Replaces the paper's Xen testbed for the experiments that need a host-level
capacity model rather than the pure queueing abstraction:

- **credit-scheduler share computation** — each domain's CPU entitlement is
  proportional to its weight, capped by its vCPU count, with unused
  entitlement redistributed work-conservingly (Xen's credit scheduler is
  work-conserving in its default non-capped mode);
- **Domain-0 reservation** — the paper pins Dom0 onto two cores; we reserve
  its cores (or an equivalent share when floating);
- **vCPU pinning effect** — pinned vCPUs run at full per-core efficiency;
  floating vCPUs pay a scheduling-efficiency penalty that grows with host
  contention, reproducing the Fig. 7 observation that pinning the DB VM's
  six vCPUs beats leaving placement to Xen;
- **per-domain I/O overhead** — every active domain adds fixed I/O-path
  overhead (all disk I/O is proxied through Dom0), which is why the Fig. 5
  I/O-bound throughput keeps sliding as VM count grows.

The constants are calibrated so the emergent impact factors match the
published regressions (see :mod:`repro.virtualization.impact`); the tests
assert that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .vm import VirtualMachine

__all__ = ["HostSpec", "CpuAllocation", "Hypervisor", "FLOATING_EFFICIENCY"]

#: Relative efficiency of a floating (unpinned) vCPU at full contention.
#: Calibrated against Fig. 7: the floating DB VM peaks ~15-20% below the
#: pinned configuration.
FLOATING_EFFICIENCY = 0.82

#: Per-extra-domain multiplicative I/O efficiency loss (Dom0 proxying).
IO_OVERHEAD_PER_DOMAIN = 0.012

#: CPU-path virtualization tax on guest work (hypercalls, shadow paging...).
CPU_VIRT_TAX = 0.05


@dataclass(frozen=True)
class HostSpec:
    """Physical host description (paper testbed: 2x quad-core, 8 GB)."""

    cores: int = 8
    memory_gb: float = 8.0
    dom0_cores: int = 2
    dom0_memory_gb: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.memory_gb <= 0.0:
            raise ValueError(f"memory must be positive, got {self.memory_gb}")
        if not 0 <= self.dom0_cores < self.cores:
            raise ValueError(
                f"dom0 cores must lie in [0, cores), got {self.dom0_cores}"
            )
        if not 0.0 <= self.dom0_memory_gb < self.memory_gb:
            raise ValueError("dom0 memory must lie in [0, memory)")

    @property
    def guest_cores(self) -> int:
        return self.cores - self.dom0_cores

    @property
    def guest_memory_gb(self) -> float:
        return self.memory_gb - self.dom0_memory_gb


@dataclass(frozen=True)
class CpuAllocation:
    """Outcome of one scheduling round for one VM."""

    vm: VirtualMachine
    cores_granted: float  # physical-core equivalents
    efficiency: float     # fraction of a native core each granted core delivers

    @property
    def effective_cores(self) -> float:
        """Native-core equivalents of useful work per unit time."""
        return self.cores_granted * self.efficiency


class Hypervisor:
    """Credit-scheduler capacity model for one host.

    The object is immutable apart from domain membership; `allocate` is a
    pure function of the current domain set so the discrete-event simulator
    can call it whenever demand changes.
    """

    def __init__(self, spec: HostSpec | None = None) -> None:
        self.spec = spec or HostSpec()
        self._domains: dict[str, VirtualMachine] = {}

    # -- domain lifecycle ----------------------------------------------------

    @property
    def domains(self) -> tuple[VirtualMachine, ...]:
        return tuple(self._domains.values())

    def create_domain(self, vm: VirtualMachine) -> None:
        """Boot a guest; validates memory and pinning against the host."""
        if vm.name in self._domains:
            raise ValueError(f"domain {vm.name!r} already exists")
        used_memory = sum(d.memory_gb for d in self._domains.values())
        if used_memory + vm.memory_gb > self.spec.guest_memory_gb + 1e-9:
            raise ValueError(
                f"insufficient guest memory for {vm.name!r}: "
                f"{used_memory + vm.memory_gb:.1f} > {self.spec.guest_memory_gb:.1f} GB"
            )
        if vm.placement.pinned:
            if max(vm.placement.pinned_cores) >= self.spec.cores:
                raise ValueError(
                    f"{vm.name!r} pins core "
                    f"{max(vm.placement.pinned_cores)} beyond host core count"
                )
            dom0 = set(range(self.spec.cores - self.spec.dom0_cores, self.spec.cores))
            overlap = dom0 & set(vm.placement.pinned_cores)
            if overlap:
                raise ValueError(
                    f"{vm.name!r} pins Dom0-reserved cores {sorted(overlap)}"
                )
            taken: set[int] = set()
            for d in self._domains.values():
                taken.update(d.placement.pinned_cores)
            clash = taken & set(vm.placement.pinned_cores)
            if clash:
                raise ValueError(f"{vm.name!r} pins already-pinned cores {sorted(clash)}")
        self._domains[vm.name] = vm

    def destroy_domain(self, name: str) -> VirtualMachine:
        if name not in self._domains:
            raise KeyError(f"no domain named {name!r}")
        return self._domains.pop(name)

    # -- scheduling ------------------------------------------------------------

    def allocate(self, demands: dict[str, float] | None = None) -> dict[str, CpuAllocation]:
        """One credit-scheduler round.

        ``demands`` maps VM name to desired physical-core equivalents
        (defaults to each VM's full vCPU count).  All domains share the
        guest cores weight-proportionally and work-conservingly — capacity
        a VM does not want is re-offered to the still-hungry ones, the
        "capability flowing" behaviour assumption 4 of the model idealises.
        Pinning in Xen restricts where a VM's *own* vCPUs run; it does not
        reserve cores from other domains, so it affects *efficiency* (cache
        affinity, no migrations), not the entitlement arithmetic.  Each
        VM's grant is capped by its vCPU count and, if pinned, by the size
        of its pinned core set.
        """
        vms = list(self._domains.values())
        if demands is None:
            demands = {vm.name: float(vm.vcpus) for vm in vms}
        unknown = set(demands) - set(self._domains)
        if unknown:
            raise KeyError(f"demands for unknown domains: {sorted(unknown)}")
        for name, d in demands.items():
            if d < 0.0:
                raise ValueError(f"demand for {name!r} must be non-negative, got {d}")

        def cap(vm: VirtualMachine) -> float:
            limit = float(vm.vcpus)
            if vm.pinned:
                limit = min(limit, float(len(vm.placement.pinned_cores)))
            if vm.cap is not None:
                # Xen credit-scheduler cap: a hard, non-work-conserving
                # ceiling — enforced even when the host has idle cores.
                limit = min(limit, vm.cap)
            return min(demands.get(vm.name, float(vm.vcpus)), limit)

        remaining = {vm.name: cap(vm) for vm in vms}
        granted = {vm.name: 0.0 for vm in vms}
        # Progressive filling: redistribute leftover entitlement until the
        # pool is exhausted or everyone is satisfied (work conservation).
        active = [vm for vm in vms if remaining[vm.name] > 1e-12]
        pool = float(self.spec.guest_cores)
        while active and pool > 1e-12:
            total_weight = sum(vm.weight for vm in active)
            next_active = []
            distributed = 0.0
            for vm in active:
                share = pool * vm.weight / total_weight
                take = min(share, remaining[vm.name])
                granted[vm.name] += take
                remaining[vm.name] -= take
                distributed += take
                if remaining[vm.name] > 1e-12:
                    next_active.append(vm)
            pool -= distributed
            if distributed <= 1e-12:
                break
            active = next_active

        contention = self._contention(vms)
        base_eff = (1.0 - CPU_VIRT_TAX) * self._io_efficiency()
        float_eff = base_eff * (1.0 - (1.0 - FLOATING_EFFICIENCY) * contention)
        return {
            vm.name: CpuAllocation(
                vm=vm,
                cores_granted=granted[vm.name],
                efficiency=base_eff if vm.pinned else float_eff,
            )
            for vm in vms
        }

    def _contention(self, vms: list[VirtualMachine]) -> float:
        """Scheduling contention in [0, 1]: 0 = undercommitted, 1 = heavy.

        Floating vCPUs suffer migrations and cache dilution in proportion
        to how oversubscribed the guest cores are.
        """
        if not vms or self.spec.guest_cores <= 0:
            return 0.0
        demanded = sum(vm.vcpus for vm in vms)
        return min(1.0, demanded / self.spec.guest_cores)

    def _io_efficiency(self) -> float:
        """I/O-path efficiency decays with the number of active domains.

        Every guest's device traffic funnels through Dom0, so adding
        domains taxes everyone — the mechanism behind Fig. 5's slide.
        """
        n = len(self._domains)
        return max(0.1, 1.0 - IO_OVERHEAD_PER_DOMAIN * n)

    # -- throughput-oriented convenience --------------------------------------

    def cpu_capacity_fraction(self, name: str) -> float:
        """Fraction of *native host CPU* the named VM can turn into work."""
        alloc = self.allocate()
        if name not in alloc:
            raise KeyError(f"no domain named {name!r}")
        return alloc[name].effective_cores / self.spec.cores
