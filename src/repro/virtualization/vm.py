"""Virtual machine abstraction for the simulated Xen-like platform.

Mirrors the paper's testbed configuration vocabulary: each VM carries a
vCPU count, an optional pinning of those vCPUs onto physical cores, a
memory allocation, and the name of the service it encapsulates (the paper
creates one "Web VM" and one "DB VM" per consolidated server, allocating
six pinned vCPUs to each DB VM and one to each Web VM, 1 GB memory each).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VcpuPlacement", "VirtualMachine"]


@dataclass(frozen=True)
class VcpuPlacement:
    """How a VM's vCPUs map onto physical cores.

    ``pinned_cores`` empty means scheduling is left to the hypervisor
    ("floating"), which the paper found noticeably worse for the DB VM
    (Fig. 7, "reflecting the latent room for vCPU scheduling in Xen").
    """

    vcpus: int
    pinned_cores: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError(f"vcpus must be >= 1, got {self.vcpus}")
        cores = tuple(self.pinned_cores)
        if cores:
            if len(cores) != self.vcpus:
                raise ValueError(
                    f"pinning must cover every vCPU: {self.vcpus} vcpus but "
                    f"{len(cores)} pinned cores"
                )
            if len(set(cores)) != len(cores):
                raise ValueError(f"pinned cores must be distinct, got {cores}")
            if any(c < 0 for c in cores):
                raise ValueError(f"core indices must be non-negative, got {cores}")
        object.__setattr__(self, "pinned_cores", cores)

    @property
    def pinned(self) -> bool:
        return bool(self.pinned_cores)


@dataclass(frozen=True)
class VirtualMachine:
    """One guest domain hosting (a replica of) one service.

    ``cap`` mirrors Xen's credit-scheduler cap: a hard ceiling on the
    physical-core equivalents the domain may consume even when the host is
    otherwise idle (non-work-conserving).  ``None`` (default) = uncapped,
    the work-conserving mode whose capability flowing the paper's model
    assumes.
    """

    name: str
    service: str
    placement: VcpuPlacement
    memory_gb: float = 1.0
    weight: float = 1.0  # credit-scheduler share weight
    cap: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VM name must be non-empty")
        if not self.service:
            raise ValueError(f"{self.name}: service name must be non-empty")
        if self.memory_gb <= 0.0:
            raise ValueError(f"{self.name}: memory must be positive, got {self.memory_gb}")
        if self.weight <= 0.0:
            raise ValueError(f"{self.name}: weight must be positive, got {self.weight}")
        if self.cap is not None and self.cap <= 0.0:
            raise ValueError(f"{self.name}: cap must be positive, got {self.cap}")

    @property
    def vcpus(self) -> int:
        return self.placement.vcpus

    @property
    def pinned(self) -> bool:
        return self.placement.pinned
