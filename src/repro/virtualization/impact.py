"""Virtualization impact-factor models (paper Section IV.C.1).

The impact factor ``a(v)`` is the ratio of QoS delivered by ``v`` VMs
sharing a physical server to the QoS of native Linux on the same hardware.
The paper measures three curves and fits them:

- Web service, disk-I/O-bound (Fig. 5b):  ``a(v) = -0.012 v + 1.082``
  (linear; throughput degrades slowly until the I/O overhead of many
  domains bites — beyond ~6 VMs degradation exceeds 50%, the paper's
  Section IV.D observation);
- Web service, CPU-bound (Fig. 6b):       ``a(v) = -0.039 v + 0.658``
  (the hypervisor costs ~1/3 of CPU QoS even for one VM);
- DB service, CPU+software (Fig. 8b):     saturating in ``v`` with
  asymptote ~1.85 — multiple VMs *beat* native Linux because a single OS
  image is itself the bottleneck for this workload.  The source text's
  formula is partially garbled; we default to ``a(v) = 1.85 v^2/(v^2+0.85)``
  (pinned so ``a(1) = 1.0``, matching Fig. 8's "native and one VM is about
  half of multiple VMs") and also provide the alternative literal reading
  ``1.85 v^2/(v^2 + 0.46)``.

Besides the published curves, :func:`fit_linear_impact` and
:func:`fit_saturating_impact` re-derive the coefficients from (synthetic or
measured) throughput observations, reproducing the paper's own regression
step — the Fig. 5/6/8 benches generate noisy measurements from the
simulated testbed and confirm the refit recovers the published lines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from scipy import optimize

__all__ = [
    "ImpactModel",
    "LinearImpactModel",
    "SaturatingImpactModel",
    "ConstantImpactModel",
    "WEB_DISK_IO_IMPACT",
    "WEB_CPU_IMPACT",
    "DB_CPU_IMPACT",
    "DB_CPU_IMPACT_LITERAL",
    "fit_linear_impact",
    "fit_saturating_impact",
]

#: Impact factors below this are treated as "service effectively dead";
#: models clip here rather than return non-physical values <= 0.
_MIN_IMPACT = 1e-6


class ImpactModel(abc.ABC):
    """Impact factor as a function of the number of co-hosted VMs."""

    @abc.abstractmethod
    def impact(self, vms: int | float) -> float:
        """``a(v)`` for ``v`` VMs on one physical server."""

    def impacts(self, vms) -> np.ndarray:
        """Vectorised evaluation."""
        arr = np.asarray(vms, dtype=float)
        return np.array([self.impact(v) for v in arr.ravel()]).reshape(arr.shape)

    def _check_vms(self, vms: int | float) -> float:
        v = float(vms)
        if v < 0.0:
            raise ValueError(f"number of VMs must be non-negative, got {vms}")
        return v


@dataclass(frozen=True)
class LinearImpactModel(ImpactModel):
    """``a(v) = intercept + slope * v``, clipped to ``(0, cap]``.

    ``cap`` defaults to 1.0: a *linear* fit above 1 would claim VMs beat
    native, which the linear-degradation regime never exhibits; the cap also
    keeps the v=0 extrapolation sane (native Linux, a=1).
    """

    slope: float
    intercept: float
    cap: float = 1.0

    def __post_init__(self) -> None:
        if self.cap <= 0.0:
            raise ValueError(f"cap must be positive, got {self.cap}")

    def impact(self, vms: int | float) -> float:
        v = self._check_vms(vms)
        return float(np.clip(self.intercept + self.slope * v, _MIN_IMPACT, self.cap))

    def vms_at_impact(self, a: float) -> float:
        """Inverse: VM count at which the (unclipped) line crosses ``a``."""
        if self.slope == 0.0:
            raise ZeroDivisionError("flat impact line has no unique inverse")
        return (a - self.intercept) / self.slope


@dataclass(frozen=True)
class SaturatingImpactModel(ImpactModel):
    """``a(v) = ceiling * v^2 / (v^2 + half_v2)``.

    Rises from 0 at ``v = 0`` (no VM, no virtualized service) towards
    ``ceiling``; reaches half the ceiling at ``v = sqrt(half_v2)``.  Models
    the DB-service regime where adding VM instances lifts the single-OS
    software bottleneck.
    """

    ceiling: float
    half_v2: float

    def __post_init__(self) -> None:
        if self.ceiling <= 0.0:
            raise ValueError(f"ceiling must be positive, got {self.ceiling}")
        if self.half_v2 <= 0.0:
            raise ValueError(f"half_v2 must be positive, got {self.half_v2}")

    def impact(self, vms: int | float) -> float:
        v = self._check_vms(vms)
        if v == 0.0:
            return _MIN_IMPACT
        v2 = v * v
        return self.ceiling * v2 / (v2 + self.half_v2)


@dataclass(frozen=True)
class ConstantImpactModel(ImpactModel):
    """VM-count-independent impact factor (useful for ablations / a=1)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0.0:
            raise ValueError(f"impact must be positive, got {self.value}")

    def impact(self, vms: int | float) -> float:
        self._check_vms(vms)
        return self.value


#: Published fits (see module docstring for provenance / reconstruction).
#: The disk-I/O line literally exceeds 1 for few VMs (a(1) = 1.07 — the
#: measured stable VM throughput edged past native), so its cap is left
#: above the fitted range instead of clamping to 1.
WEB_DISK_IO_IMPACT = LinearImpactModel(slope=-0.012, intercept=1.082, cap=1.2)
WEB_CPU_IMPACT = LinearImpactModel(slope=-0.039, intercept=0.658)
DB_CPU_IMPACT = SaturatingImpactModel(ceiling=1.85, half_v2=0.85)
DB_CPU_IMPACT_LITERAL = SaturatingImpactModel(ceiling=1.85, half_v2=0.46)


def fit_linear_impact(
    vms: np.ndarray, impacts: np.ndarray, cap: float = 1.0
) -> LinearImpactModel:
    """Least-squares line through measured (v, a) points — the paper's
    own regression step for Figs. 5b/6b."""
    v = np.asarray(vms, dtype=float)
    a = np.asarray(impacts, dtype=float)
    if v.ndim != 1 or v.shape != a.shape or v.size < 2:
        raise ValueError("need matching 1-D arrays with at least 2 points")
    design = np.column_stack([v, np.ones_like(v)])
    (slope, intercept), *_ = np.linalg.lstsq(design, a, rcond=None)
    return LinearImpactModel(slope=float(slope), intercept=float(intercept), cap=cap)


def fit_saturating_impact(
    vms: np.ndarray, impacts: np.ndarray
) -> SaturatingImpactModel:
    """Nonlinear least squares for the saturating DB curve (Fig. 8b)."""
    v = np.asarray(vms, dtype=float)
    a = np.asarray(impacts, dtype=float)
    if v.ndim != 1 or v.shape != a.shape or v.size < 2:
        raise ValueError("need matching 1-D arrays with at least 2 points")
    if (v <= 0).any():
        raise ValueError("saturating fit requires v > 0 observations")

    def curve(v_, ceiling, half_v2):
        return ceiling * v_**2 / (v_**2 + half_v2)

    p0 = (max(float(a.max()), 1e-3), 1.0)
    (ceiling, half_v2), _ = optimize.curve_fit(
        curve, v, a, p0=p0, bounds=([1e-6, 1e-6], [np.inf, np.inf]), maxfev=10_000
    )
    return SaturatingImpactModel(ceiling=float(ceiling), half_v2=float(half_v2))
