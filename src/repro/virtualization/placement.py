"""VM-to-host placement: the bin-packing view of consolidation.

The paper's related work consolidates by *packing VMs onto hosts* (ReCon,
Entropy); the paper itself consolidates by *pooling capability*.  This
module implements the packing view so the two can be compared:

- :func:`first_fit_decreasing` / :func:`best_fit_decreasing` — classic
  vector bin packing of VM demand vectors onto identical hosts;
- :class:`PlacementPlan` — the resulting assignment with per-host load;
- :func:`migration_plan` — the minimal move set turning one placement into
  another (what an Entropy-style reconfigurator would execute), with the
  migration count as its cost.

The ablation bench uses these to show that packing *static per-VM
reservations* needs more hosts than the model's pooled sizing — the
difference is exactly the statistical-multiplexing gain the Erlang
analysis captures and reservations forfeit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.inputs import ResourceKind

__all__ = [
    "VmDemand",
    "PlacementPlan",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "migration_plan",
]


@dataclass(frozen=True)
class VmDemand:
    """One VM's (reserved) demand vector in normalized host units."""

    name: str
    demands: Mapping[ResourceKind, float]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VM name must be non-empty")
        demands = dict(self.demands)
        if not demands:
            raise ValueError(f"{self.name}: at least one resource demand required")
        for kind, d in demands.items():
            if not isinstance(kind, ResourceKind):
                raise TypeError(f"{self.name}: demand keys must be ResourceKind")
            if d < 0.0:
                raise ValueError(f"{self.name}: demand[{kind}] must be >= 0, got {d}")
            if d > 1.0:
                raise ValueError(
                    f"{self.name}: demand[{kind}] = {d} exceeds one host; "
                    "split the VM or scale the host"
                )
        object.__setattr__(self, "demands", demands)

    @property
    def size(self) -> float:
        """Scalar used for the decreasing sort: the dominant dimension."""
        return max(self.demands.values())


@dataclass
class PlacementPlan:
    """An assignment of VMs to hosts (host index -> VM names)."""

    assignments: dict[str, int] = field(default_factory=dict)
    host_loads: list[dict[ResourceKind, float]] = field(default_factory=list)

    @property
    def hosts_used(self) -> int:
        return len(self.host_loads)

    def vms_on(self, host: int) -> list[str]:
        return [name for name, h in self.assignments.items() if h == host]

    def host_of(self, name: str) -> int:
        return self.assignments[name]

    def max_load(self, resource: ResourceKind) -> float:
        return max((load.get(resource, 0.0) for load in self.host_loads), default=0.0)

    def validate(self) -> None:
        """Assert no host is overcommitted on any dimension."""
        for i, load in enumerate(self.host_loads):
            for kind, value in load.items():
                if value > 1.0 + 1e-9:
                    raise AssertionError(
                        f"host {i} overcommitted on {kind}: {value:.3f}"
                    )

    def copy(self) -> "PlacementPlan":
        """Independent mutable copy (assignments and per-host loads)."""
        return PlacementPlan(
            assignments=dict(self.assignments),
            host_loads=[dict(load) for load in self.host_loads],
        )

    def remove(self, vm: "VmDemand") -> int:
        """Unassign ``vm``, releasing its demand; returns the host it left."""
        host = self.assignments.pop(vm.name)
        load = self.host_loads[host]
        for kind, d in vm.demands.items():
            # Clamp accumulated float error so repeated place/remove cycles
            # cannot drift a nominally-empty host below zero.
            load[kind] = max(load.get(kind, 0.0) - d, 0.0)
        return host


def _fits(load: Mapping[ResourceKind, float], vm: VmDemand) -> bool:
    return all(
        load.get(kind, 0.0) + d <= 1.0 + 1e-12 for kind, d in vm.demands.items()
    )


def _place(plan: PlacementPlan, host: int, vm: VmDemand) -> None:
    plan.assignments[vm.name] = host
    load = plan.host_loads[host]
    for kind, d in vm.demands.items():
        load[kind] = load.get(kind, 0.0) + d


def _sorted_vms(vms: Sequence[VmDemand]) -> list[VmDemand]:
    names = [vm.name for vm in vms]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate VM names: {names}")
    # Stable sort: ties keep input order, keeping plans deterministic.
    return sorted(vms, key=lambda vm: vm.size, reverse=True)


def first_fit_decreasing(vms: Sequence[VmDemand]) -> PlacementPlan:
    """FFD vector packing: biggest VM first, first host it fits on.

    11/9·OPT+1 on one dimension; the standard consolidation baseline.
    """
    plan = PlacementPlan()
    for vm in _sorted_vms(vms):
        for host in range(plan.hosts_used):
            if _fits(plan.host_loads[host], vm):
                _place(plan, host, vm)
                break
        else:
            plan.host_loads.append({})
            _place(plan, plan.hosts_used - 1, vm)
    plan.validate()
    return plan


def best_fit_decreasing(
    vms: Sequence[VmDemand],
    *,
    into: PlacementPlan | None = None,
    allowed_hosts: Sequence[int] | None = None,
) -> PlacementPlan:
    """BFD: place each VM on the feasible host with least remaining room.

    Tighter packings on heterogeneous demand mixes; same worst case.

    Two keyword extensions serve incremental re-consolidation (the dynamic
    control loop): ``into`` starts from a *copy* of an existing plan
    instead of an empty one, and ``allowed_hosts`` restricts candidate
    hosts to the given indices — in that mode no new hosts are opened and
    a VM that fits nowhere raises ``ValueError`` (the caller decides
    whether to abort the shrink or boot capacity).  With both omitted the
    behaviour is the classic from-scratch packing.
    """
    plan = PlacementPlan() if into is None else into.copy()
    taken = set(plan.assignments)
    for vm in _sorted_vms(vms):
        if vm.name in taken:
            raise ValueError(f"VM {vm.name!r} is already placed in the base plan")
    for vm in _sorted_vms(vms):
        candidates = (
            range(plan.hosts_used) if allowed_hosts is None else allowed_hosts
        )
        best_host = -1
        best_room = float("inf")
        for host in candidates:
            if host >= plan.hosts_used:
                raise ValueError(
                    f"allowed host {host} does not exist in the base plan"
                )
            load = plan.host_loads[host]
            if not _fits(load, vm):
                continue
            room = sum(1.0 - load.get(kind, 0.0) for kind in vm.demands)
            if room < best_room:
                best_room = room
                best_host = host
        if best_host < 0:
            if allowed_hosts is not None:
                raise ValueError(
                    f"no allowed host has room for VM {vm.name!r}"
                )
            plan.host_loads.append({})
            best_host = plan.hosts_used - 1
        _place(plan, best_host, vm)
    plan.validate()
    return plan


@dataclass(frozen=True)
class Migration:
    """One live-migration step."""

    vm: str
    source: int
    target: int


def migration_plan(
    current: PlacementPlan, target: PlacementPlan
) -> list[Migration]:
    """Moves converting ``current`` into ``target`` (Entropy's cost metric).

    Both plans must place the same VM set.  Hosts are matched by index;
    a VM whose host index differs migrates once (live migration moves the
    VM directly; no intermediate hops needed when capacities allow — we
    report the move set, not its schedule).
    """
    if set(current.assignments) != set(target.assignments):
        raise ValueError("plans place different VM sets")
    moves = []
    for name, src in current.assignments.items():
        dst = target.assignments[name]
        if src != dst:
            moves.append(Migration(vm=name, source=src, target=dst))
    return moves


def plan_migration_sequence(
    current: PlacementPlan,
    target: PlacementPlan,
    demands: Mapping[str, "VmDemand"],
    hosts: int | None = None,
) -> list[Migration]:
    """Order the migrations so no host overflows *during* the transition.

    The hard part of reconfiguration (and what Entropy's solver handles):
    a move is only executable when its destination currently has room, so
    moves must be sequenced — and cyclic exchanges deadlock unless broken
    through a host with spare room.  Greedy strategy: repeatedly execute
    any feasible move; on deadlock, bounce one blocked VM to any host with
    room (adding one extra migration), which breaks the cycle.

    Returns the executable sequence (including bounce moves).  Raises if
    the transition is infeasible even with bouncing (no host ever has room).
    """
    pending = migration_plan(current, target)
    if not pending:
        return []
    unknown = {m.vm for m in pending} - set(demands)
    if unknown:
        raise ValueError(f"missing demand vectors for: {sorted(unknown)}")
    host_count = hosts if hosts is not None else max(
        current.hosts_used, target.hosts_used
    )

    # Mutable view of current loads.
    loads: list[dict[ResourceKind, float]] = [
        dict(current.host_loads[i]) if i < current.hosts_used else {}
        for i in range(host_count)
    ]
    location = dict(current.assignments)

    def fits_on(host: int, vm: VmDemand) -> bool:
        return _fits(loads[host], vm)

    def apply(vm_name: str, dst: int) -> None:
        vm = demands[vm_name]
        src = location[vm_name]
        for kind, d in vm.demands.items():
            loads[src][kind] = loads[src].get(kind, 0.0) - d
        for kind, d in vm.demands.items():
            loads[dst][kind] = loads[dst].get(kind, 0.0) + d
        location[vm_name] = dst

    sequence: list[Migration] = []
    todo = {m.vm: m.target for m in pending}
    safety = 0
    while todo:
        safety += 1
        if safety > 10 * len(pending) + 100:  # pragma: no cover - defensive
            raise RuntimeError("migration sequencing failed to converge")
        progressed = False
        for vm_name in list(todo):
            dst = todo[vm_name]
            if location[vm_name] == dst:
                del todo[vm_name]
                progressed = True
                continue
            if fits_on(dst, demands[vm_name]):
                sequence.append(
                    Migration(vm=vm_name, source=location[vm_name], target=dst)
                )
                apply(vm_name, dst)
                del todo[vm_name]
                progressed = True
        if progressed:
            continue
        # Deadlock: bounce the first blocked VM to any host with room.
        bounced = False
        for vm_name in todo:
            vm = demands[vm_name]
            for host in range(host_count):
                if host != location[vm_name] and host != todo[vm_name] and fits_on(host, vm):
                    sequence.append(
                        Migration(vm=vm_name, source=location[vm_name], target=host)
                    )
                    apply(vm_name, host)
                    bounced = True
                    break
            if bounced:
                break
        if not bounced:
            raise ValueError(
                "transition infeasible: no host has room to break the cycle"
            )
    return sequence
