"""Simulated virtualization substrate (Xen + Rainbow stand-in).

- :mod:`repro.virtualization.impact` — impact-factor curves ``a(v)`` with
  the paper's published fits and re-fitting from measurements;
- :mod:`repro.virtualization.vm` — guest-domain description (vCPUs,
  pinning, memory, weight);
- :mod:`repro.virtualization.hypervisor` — credit-scheduler capacity model
  with Dom0 reservation, pinning effects and per-domain I/O overhead;
- :mod:`repro.virtualization.rainbow` — on-demand resource flowing
  controllers, from static partitioning to the model's ideal flow.
"""

from .hypervisor import (
    FLOATING_EFFICIENCY,
    CpuAllocation,
    HostSpec,
    Hypervisor,
)
from .impact import (
    DB_CPU_IMPACT,
    DB_CPU_IMPACT_LITERAL,
    WEB_CPU_IMPACT,
    WEB_DISK_IO_IMPACT,
    ConstantImpactModel,
    ImpactModel,
    LinearImpactModel,
    SaturatingImpactModel,
    fit_linear_impact,
    fit_saturating_impact,
)
from .rainbow import (
    FlowController,
    IdealFlow,
    PredictiveFlow,
    PriorityFlow,
    ProportionalFlow,
    StaticPartition,
)
from .placement import (
    PlacementPlan,
    VmDemand,
    best_fit_decreasing,
    first_fit_decreasing,
    migration_plan,
    plan_migration_sequence,
)
from .vm import VcpuPlacement, VirtualMachine

__all__ = [
    "ImpactModel",
    "LinearImpactModel",
    "SaturatingImpactModel",
    "ConstantImpactModel",
    "WEB_DISK_IO_IMPACT",
    "WEB_CPU_IMPACT",
    "DB_CPU_IMPACT",
    "DB_CPU_IMPACT_LITERAL",
    "fit_linear_impact",
    "fit_saturating_impact",
    "VcpuPlacement",
    "VirtualMachine",
    "HostSpec",
    "Hypervisor",
    "CpuAllocation",
    "FLOATING_EFFICIENCY",
    "FlowController",
    "StaticPartition",
    "ProportionalFlow",
    "PriorityFlow",
    "IdealFlow",
    "PredictiveFlow",
    "VmDemand",
    "PlacementPlan",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "migration_plan",
    "plan_migration_sequence",
]
