"""Rainbow-like on-demand resource flowing controllers.

The paper's testbed runs *Rainbow*, the authors' Xen-based prototype that
"dynamically controls resources allocation among concurrent services via
on-demand resource flowing algorithms".  The utility analytic model's
fourth assumption idealises this: whenever a request is waiting, no
capacity is idle.  Real controllers only approximate that, and the model's
first application scores them by how close they come to the analytic bound.

This module provides the controller family used by the data-center
simulation's consolidated scenario:

- :class:`StaticPartition` — capacity split by fixed shares, never moved
  (the *no flowing* baseline: a consolidated box degenerates into rigid
  slices, wasting exactly the capacity consolidation was meant to pool);
- :class:`ProportionalFlow` — each control period, capacity is re-divided
  in proportion to current demand (queue pressure), work-conservingly;
- :class:`PriorityFlow` — Rainbow's service-priority scheme [22]: higher
  priority services are satisfied first, leftovers flow downward;
- :class:`IdealFlow` — the model's assumption 4 itself: capacity follows
  demand instantly and exactly (upper bound, used to validate the model);
- :class:`PredictiveFlow` — EWMA-forecast reactive control, quantifying
  the lag penalty real controllers pay on bursts.

Controllers are pure policies: ``shares(demands, capacity)`` returns the
capacity each service may use this period.  Overhead of re-allocation is
modelled as a capacity tax per *change*, letting the ablation bench show
why the model (which ignores the tax) is an upper bound.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "FlowController",
    "StaticPartition",
    "ProportionalFlow",
    "PriorityFlow",
    "IdealFlow",
    "PredictiveFlow",
]


def _validate(demands: Mapping[str, float], capacity: float) -> None:
    if capacity < 0.0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    for name, d in demands.items():
        if d < 0.0:
            raise ValueError(f"demand for {name!r} must be non-negative, got {d}")


class FlowController(abc.ABC):
    """Policy deciding how host capacity is divided among services."""

    #: Fraction of capacity lost per reallocation event (VM reconfiguration,
    #: ballooning, vCPU hot-plug...).  Zero for the ideal controller.
    reallocation_tax: float = 0.0

    @abc.abstractmethod
    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        """Capacity granted to each service for the next control period.

        Grants must be non-negative and sum to at most ``capacity``.
        """

    def effective_capacity(self, capacity: float, changed: bool) -> float:
        """Capacity net of the reallocation tax when shares changed."""
        if changed and self.reallocation_tax > 0.0:
            return capacity * (1.0 - self.reallocation_tax)
        return capacity


@dataclass
class StaticPartition(FlowController):
    """Fixed shares, set once — no capability flowing at all."""

    fractions: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if not self.fractions:
            raise ValueError("at least one partition fraction required")
        if any(f < 0.0 for f in self.fractions.values()):
            raise ValueError(f"fractions must be non-negative, got {self.fractions}")
        if total > 1.0 + 1e-9:
            raise ValueError(f"fractions sum to {total} > 1")

    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        _validate(demands, capacity)
        return {name: capacity * frac for name, frac in self.fractions.items()}


@dataclass
class ProportionalFlow(FlowController):
    """Demand-proportional, work-conserving reallocation each period.

    When capacity binds, every service is rationed to the same fraction of
    its demand (proportional fairness: equal loss fractions); grants capped
    by a service's demand are redistributed to the still-hungry, so no
    capacity is parked while any service wants more.  ``reallocation_tax``
    models the control overhead of moving capacity between VMs.
    """

    reallocation_tax: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reallocation_tax < 1.0:
            raise ValueError(
                f"reallocation tax must lie in [0, 1), got {self.reallocation_tax}"
            )

    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        _validate(demands, capacity)
        grants = {name: 0.0 for name in demands}
        remaining = dict(demands)
        pool = capacity
        hungry = [n for n, d in remaining.items() if d > 1e-12]
        while hungry and pool > 1e-12:
            total_want = sum(remaining[n] for n in hungry)
            distributed = 0.0
            next_hungry = []
            for name in hungry:
                share = pool * remaining[name] / total_want
                take = min(share, remaining[name])
                grants[name] += take
                remaining[name] -= take
                distributed += take
                if remaining[name] > 1e-12:
                    next_hungry.append(name)
            pool -= distributed
            if distributed <= 1e-12:
                break
            hungry = next_hungry
        return grants


@dataclass
class PriorityFlow(FlowController):
    """Strict-priority capability flowing (Rainbow's scheme [22]).

    ``priority_order`` lists services highest-priority first; each is
    satisfied in full (up to its demand) before the next sees any capacity.
    Services absent from the order are served last, demand-proportionally.
    """

    priority_order: Sequence[str] = ()
    reallocation_tax: float = 0.0

    def __post_init__(self) -> None:
        order = tuple(self.priority_order)
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate names in priority order: {order}")
        if not 0.0 <= self.reallocation_tax < 1.0:
            raise ValueError(
                f"reallocation tax must lie in [0, 1), got {self.reallocation_tax}"
            )
        self.priority_order = order

    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        _validate(demands, capacity)
        grants = {name: 0.0 for name in demands}
        pool = capacity
        for name in self.priority_order:
            if name not in demands or pool <= 0.0:
                continue
            take = min(demands[name], pool)
            grants[name] = take
            pool -= take
        rest = {n: d for n, d in demands.items() if n not in self.priority_order}
        if rest and pool > 0.0:
            sub = ProportionalFlow().shares(rest, pool)
            for name, g in sub.items():
                grants[name] += g
        return grants


@dataclass
class IdealFlow(FlowController):
    """Assumption 4 of the model: capacity follows demand instantly.

    Identical maths to :class:`ProportionalFlow` with zero tax, but kept as
    a distinct type so experiment configs read as intent ("compare the real
    controller against the model's ideal").
    """

    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        _validate(demands, capacity)
        return ProportionalFlow().shares(demands, capacity)


@dataclass
class PredictiveFlow(FlowController):
    """EWMA-forecast flowing: allocate on *predicted*, not observed, demand.

    Real controllers (including Rainbow) cannot reallocate instantaneously;
    they act on the demand they expect next period.  This controller keeps
    an exponentially weighted moving average per service and divides
    capacity proportionally to the forecast, capping each grant at the
    forecast (not the true demand, which it cannot see).

    Behaviour relative to the others:

    - on smooth demand it converges to :class:`ProportionalFlow`;
    - on sudden bursts it lags by ~``1/alpha`` periods, losing the work
      the forecast missed — quantifying the reactive-control penalty the
      paper's model (assumption 4) idealises away.

    The controller is stateful; create a fresh instance per run.
    """

    alpha: float = 0.3
    reallocation_tax: float = 0.0
    _forecast: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {self.alpha}")
        if not 0.0 <= self.reallocation_tax < 1.0:
            raise ValueError(
                f"reallocation tax must lie in [0, 1), got {self.reallocation_tax}"
            )

    def shares(self, demands: Mapping[str, float], capacity: float) -> dict[str, float]:
        _validate(demands, capacity)
        # Forecast for THIS period uses only past observations; bootstrap
        # with the first observation (cold start grants nothing sensible
        # otherwise).
        forecast: dict[str, float] = {}
        for name, observed in demands.items():
            if name not in self._forecast:
                self._forecast[name] = observed
            forecast[name] = self._forecast[name]
        grants = ProportionalFlow().shares(forecast, capacity)
        # Update the EWMA with what actually arrived (for next period).
        for name, observed in demands.items():
            self._forecast[name] = (
                self.alpha * observed + (1.0 - self.alpha) * self._forecast[name]
            )
        return grants
