"""Observability layer: metrics, traces, and run manifests.

Dependency-free instrumentation for the whole stack — the discrete-event
engine, the Erlang solvers, the dispatchers, and the experiment runner all
carry hooks into this package.  The default state is **off**: the global
registry and trace log are no-op singletons, and instrumented hot loops
pay at most a cached boolean check per event (guarded by
``benchmarks/bench_obs_overhead.py``).

Typical usage::

    from repro import obs

    with obs.scoped_registry() as registry, obs.scoped_trace() as trace:
        with trace.span("solve", service="web"):
            ...  # instrumented code records into `registry` / `trace`
        print(obs.prometheus_text(registry))

The experiment runner (``repro-experiments --metrics-out --trace-out``)
and the planner CLI (``repro-plan``) wire this up from the command line.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchResult,
    BenchSpec,
    bench,
    build_artifact,
    discover_suite,
    merge_artifacts,
    registered_benchmarks,
    run_specs,
    select_specs,
    validate_artifact,
    write_artifact,
)
from .compare import (
    BenchDelta,
    Comparison,
    compare_artifacts,
    load_artifact,
    verdict_table,
)
from .envinfo import (
    FINGERPRINT_KEYS,
    append_only_artifact_path,
    detect_git_sha,
    environment_fingerprint,
)
from .export import (
    MANIFEST_SCHEMA,
    PROMETHEUS_CONTENT_TYPE,
    build_manifest,
    inputs_hash,
    parse_prometheus_text,
    prometheus_text,
    write_manifest,
    write_prometheus,
    write_trace_jsonl,
)
from .fidelity import (
    FIDELITY_SCHEMA,
    Expectation,
    MetricVerdict,
    Scoreboard,
    build_fidelity_artifact,
    check_expectations,
    declare_expectations,
    declared_experiments,
    evaluate_summaries,
    expectations_for,
    load_fidelity_artifact,
    load_results_summaries,
    scoreboard_table,
    validate_fidelity_artifact,
    write_fidelity_artifact,
)
from .report import collect_bench_docs, render_report, write_report
from .ledger import (
    LEDGER_KINDS,
    LedgerEntry,
    RunLedger,
    SkippedFile,
    build_ledger,
    fingerprint_key,
)
from .fleet import (
    FLEET_SCHEMA,
    AuditAssumptions,
    ScenarioCost,
    build_fleet_artifact,
    build_fleet_summary,
    load_fleet_artifact,
    scenario_costs,
    scenario_deltas,
    validate_fleet_artifact,
    write_fleet_artifact,
)
from .execsummary import build_and_render, render_fleet_dashboard
from .profileutil import PROFILE_SCHEMA, SpanProfiler
from .progress import ProgressReporter
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    get_registry,
    scoped_registry,
    set_registry,
)
from .timeseries import (
    TIMESERIES_SCHEMA,
    CounterSeries,
    GaugeSeries,
    NullTelemetryBus,
    TelemetryBus,
    get_bus,
    load_timeseries_jsonl,
    scoped_bus,
    set_bus,
    validate_timeseries_doc,
    write_timeseries_jsonl,
)
from .alarms import AlarmEvent, AlarmManager, AlarmRule
from .trace import (
    NullTraceLog,
    TraceEvent,
    TraceLog,
    get_trace,
    scoped_trace,
    set_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "TraceEvent",
    "TraceLog",
    "NullTraceLog",
    "get_trace",
    "set_trace",
    "scoped_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "PROMETHEUS_CONTENT_TYPE",
    "write_prometheus",
    "write_trace_jsonl",
    "inputs_hash",
    "environment_fingerprint",
    "build_manifest",
    "write_manifest",
    "MANIFEST_SCHEMA",
    # bench harness
    "BENCH_SCHEMA",
    "BenchSpec",
    "BenchResult",
    "bench",
    "registered_benchmarks",
    "discover_suite",
    "select_specs",
    "run_specs",
    "build_artifact",
    "merge_artifacts",
    "validate_artifact",
    "write_artifact",
    # comparison
    "BenchDelta",
    "Comparison",
    "compare_artifacts",
    "load_artifact",
    "verdict_table",
    # profiling & progress
    "PROFILE_SCHEMA",
    "SpanProfiler",
    "ProgressReporter",
    # provenance
    "FINGERPRINT_KEYS",
    "append_only_artifact_path",
    "detect_git_sha",
    # fidelity scoreboard
    "FIDELITY_SCHEMA",
    "Expectation",
    "MetricVerdict",
    "Scoreboard",
    "declare_expectations",
    "declared_experiments",
    "expectations_for",
    "check_expectations",
    "evaluate_summaries",
    "load_results_summaries",
    "build_fidelity_artifact",
    "validate_fidelity_artifact",
    "write_fidelity_artifact",
    "load_fidelity_artifact",
    "scoreboard_table",
    # html report
    "render_report",
    "collect_bench_docs",
    "write_report",
    # fleet run ledger
    "LEDGER_KINDS",
    "LedgerEntry",
    "SkippedFile",
    "RunLedger",
    "build_ledger",
    "fingerprint_key",
    # fleet cost/energy/carbon aggregation
    "FLEET_SCHEMA",
    "AuditAssumptions",
    "ScenarioCost",
    "scenario_costs",
    "scenario_deltas",
    "build_fleet_summary",
    "build_fleet_artifact",
    "validate_fleet_artifact",
    "write_fleet_artifact",
    "load_fleet_artifact",
    # executive dashboard
    "render_fleet_dashboard",
    "build_and_render",
    # virtual-time telemetry bus
    "TIMESERIES_SCHEMA",
    "CounterSeries",
    "GaugeSeries",
    "TelemetryBus",
    "NullTelemetryBus",
    "get_bus",
    "set_bus",
    "scoped_bus",
    "validate_timeseries_doc",
    "write_timeseries_jsonl",
    "load_timeseries_jsonl",
    # threshold alarms
    "AlarmRule",
    "AlarmEvent",
    "AlarmManager",
]
