"""Exporters: Prometheus text format, JSONL traces, and run manifests.

The run manifest is the provenance record written next to experiment
results: what was run (canonically hashed inputs), with which seed, by
which model version, how long it took, and a full metric snapshot.  Two
runs with the same inputs produce the same ``inputs_hash``, so result
directories can be audited for staleness.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from pathlib import Path
from typing import Any, Mapping

from .envinfo import environment_fingerprint
from .registry import MetricsRegistry, NullRegistry
from .trace import NullTraceLog, TraceLog

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "prometheus_text",
    "parse_prometheus_text",
    "write_prometheus",
    "write_trace_jsonl",
    "inputs_hash",
    "environment_fingerprint",
    "build_manifest",
    "write_manifest",
    "MANIFEST_SCHEMA",
]

MANIFEST_SCHEMA = "repro.run-manifest/v1"

#: Content type of the text exposition format, as Prometheus scrapers send
#: it in ``Accept`` and expect it back — served by ``GET /metrics``
#: (:mod:`repro.service.app`) and recorded next to file exports.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    # Text exposition format: label values escape backslash, double-quote,
    # and line feed (in this order — backslash first).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and line feed only (quotes are legal).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Timers render as histograms of seconds.  Counters keep whatever name
    they were registered under (instrumentation sites use ``_total``
    suffixes by convention).  Every family gets both a ``# HELP`` and a
    ``# TYPE`` line (families registered without help text self-describe
    with their own name), so the output round-trips through
    :func:`parse_prometheus_text` — the exposition-conformance contract
    ``GET /metrics`` and the file exporter share.
    """
    lines: list[str] = []
    for name, kind, help, instruments in registry.families():
        prom_kind = "histogram" if kind == "timer" else kind
        lines.append(f"# HELP {name} {_escape_help(help or name)}")
        lines.append(f"# TYPE {name} {prom_kind}")
        for inst in instruments:
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_labels_text(inst.labels)} {_fmt(inst.value)}")
                continue
            histogram = inst.histogram if kind == "timer" else inst
            for bound, cumulative in histogram.bucket_counts():
                le = _labels_text(inst.labels, (("le", _fmt(bound)),))
                lines.append(f"{name}_bucket{le} {cumulative}")
            suffix = _labels_text(inst.labels)
            lines.append(f"{name}_sum{suffix} {_fmt(histogram.sum)}")
            lines.append(f"{name}_count{suffix} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


#: ``name{labels} value`` sample line; labels optional, value any float token.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"[ \t]+(?P<value>\S+)[ \t]*$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

_PROM_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_float(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def _parse_labels(body: str | None) -> dict[str, str]:
    if not body:
        return {}
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(f"malformed label pair at {body[pos:]!r}")
        labels[match.group("key")] = _unescape_label_value(match.group("value"))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"expected ',' between labels at {body[pos:]!r}")
            pos += 1
    return labels


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and conformance-check) the text exposition format.

    Returns ``{family: {"kind", "help", "samples": [(name, labels, value)]}}``.
    Raises ``ValueError`` on any format violation: a sample without a
    preceding ``# TYPE``, a family missing its ``# HELP`` line, duplicate
    declarations, unknown metric kinds, or malformed sample/label syntax.
    This is the round-trip validator for :func:`prometheus_text` — the
    ``/metrics`` endpoint and the file exporter are both tested through it.
    """
    families: dict[str, dict[str, Any]] = {}
    helps: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if name in helps:
                raise ValueError(f"line {lineno}: duplicate HELP for {name!r}")
            helps[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            name, kind = parts
            if kind not in _PROM_KINDS:
                raise ValueError(f"line {lineno}: unknown metric kind {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = {"kind": kind, "help": None, "samples": []}
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        if family_name not in families:
            # Histogram series lines carry _bucket/_sum/_count suffixes.
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    family_name = sample_name[: -len(suffix)]
                    break
        family = families.get(family_name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                f"# TYPE declaration"
            )
        if family_name != sample_name and family["kind"] not in (
            "histogram",
            "summary",
        ):
            raise ValueError(
                f"line {lineno}: suffixed sample {sample_name!r} on "
                f"non-histogram family {family_name!r}"
            )
        labels = _parse_labels(match.group("labels"))
        try:
            value = _parse_float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value "
                f"{match.group('value')!r}"
            ) from None
        family["samples"].append((sample_name, labels, value))
    for name, family in families.items():
        if name not in helps:
            raise ValueError(f"family {name!r} has no # HELP line")
        family["help"] = helps[name]
        if not family["samples"]:
            raise ValueError(f"family {name!r} declares a TYPE but no samples")
    for name in helps:
        if name not in families:
            raise ValueError(f"HELP for {name!r} without a TYPE declaration")
    return families


def write_prometheus(registry: MetricsRegistry | NullRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


def write_trace_jsonl(trace: TraceLog | NullTraceLog, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = trace.to_jsonl()
    path.write_text(text + "\n" if text else "")
    return path


def inputs_hash(inputs: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``inputs``.

    Key order, whitespace, and non-JSON scalars are normalised, so the hash
    is stable across runs and Python versions for the same logical inputs.
    """
    canonical = json.dumps(
        inputs, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _model_version() -> str:
    # Imported lazily: repro/__init__ imports repro.obs, so a module-level
    # import here would be circular.
    from .. import __version__

    return __version__


def build_manifest(
    inputs: Mapping[str, Any],
    *,
    seed: int | None = None,
    wall_time_s: float | None = None,
    registry: MetricsRegistry | NullRegistry | None = None,
    trace: TraceLog | NullTraceLog | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run manifest document.

    ``inputs`` is whatever identifies the run (experiment names, flags,
    deployment doc); it is stored verbatim and hashed canonically.
    """
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "model_version": _model_version(),
        "environment": environment_fingerprint(),
        "seed": seed,
        "inputs": dict(inputs),
        "inputs_hash": inputs_hash(inputs),
        "wall_time_s": wall_time_s,
        "metrics": registry.snapshot() if registry is not None else {},
    }
    if trace is not None:
        # capacity/dropped make ring-buffer truncation detectable post-hoc:
        # dropped > 0 means the JSONL export is missing the oldest events.
        manifest["trace"] = {
            "events": len(trace),
            "emitted": trace.emitted,
            "dropped": trace.dropped,
            "dropped_by_kind": trace.dropped_by_kind,
            "capacity": trace.capacity,
        }
    if extra:
        manifest.update(dict(extra))
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return path
