"""Exporters: Prometheus text format, JSONL traces, and run manifests.

The run manifest is the provenance record written next to experiment
results: what was run (canonically hashed inputs), with which seed, by
which model version, how long it took, and a full metric snapshot.  Two
runs with the same inputs produce the same ``inputs_hash``, so result
directories can be audited for staleness.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Mapping

from .envinfo import environment_fingerprint
from .registry import MetricsRegistry, NullRegistry
from .trace import NullTraceLog, TraceLog

__all__ = [
    "prometheus_text",
    "write_prometheus",
    "write_trace_jsonl",
    "inputs_hash",
    "environment_fingerprint",
    "build_manifest",
    "write_manifest",
    "MANIFEST_SCHEMA",
]

MANIFEST_SCHEMA = "repro.run-manifest/v1"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    # Text exposition format: label values escape backslash, double-quote,
    # and line feed (in this order — backslash first).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and line feed only (quotes are legal).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Timers render as histograms of seconds.  Counters keep whatever name
    they were registered under (instrumentation sites use ``_total``
    suffixes by convention).
    """
    lines: list[str] = []
    for name, kind, help, instruments in registry.families():
        prom_kind = "histogram" if kind == "timer" else kind
        if help:
            lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {prom_kind}")
        for inst in instruments:
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_labels_text(inst.labels)} {_fmt(inst.value)}")
                continue
            histogram = inst.histogram if kind == "timer" else inst
            for bound, cumulative in histogram.bucket_counts():
                le = _labels_text(inst.labels, (("le", _fmt(bound)),))
                lines.append(f"{name}_bucket{le} {cumulative}")
            suffix = _labels_text(inst.labels)
            lines.append(f"{name}_sum{suffix} {_fmt(histogram.sum)}")
            lines.append(f"{name}_count{suffix} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry | NullRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


def write_trace_jsonl(trace: TraceLog | NullTraceLog, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = trace.to_jsonl()
    path.write_text(text + "\n" if text else "")
    return path


def inputs_hash(inputs: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``inputs``.

    Key order, whitespace, and non-JSON scalars are normalised, so the hash
    is stable across runs and Python versions for the same logical inputs.
    """
    canonical = json.dumps(
        inputs, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _model_version() -> str:
    # Imported lazily: repro/__init__ imports repro.obs, so a module-level
    # import here would be circular.
    from .. import __version__

    return __version__


def build_manifest(
    inputs: Mapping[str, Any],
    *,
    seed: int | None = None,
    wall_time_s: float | None = None,
    registry: MetricsRegistry | NullRegistry | None = None,
    trace: TraceLog | NullTraceLog | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run manifest document.

    ``inputs`` is whatever identifies the run (experiment names, flags,
    deployment doc); it is stored verbatim and hashed canonically.
    """
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "model_version": _model_version(),
        "environment": environment_fingerprint(),
        "seed": seed,
        "inputs": dict(inputs),
        "inputs_hash": inputs_hash(inputs),
        "wall_time_s": wall_time_s,
        "metrics": registry.snapshot() if registry is not None else {},
    }
    if trace is not None:
        # capacity/dropped make ring-buffer truncation detectable post-hoc:
        # dropped > 0 means the JSONL export is missing the oldest events.
        manifest["trace"] = {
            "events": len(trace),
            "emitted": trace.emitted,
            "dropped": trace.dropped,
            "dropped_by_kind": trace.dropped_by_kind,
            "capacity": trace.capacity,
        }
    if extra:
        manifest.update(dict(extra))
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return path
