"""Heartbeat progress reporting for long experiment sweeps.

A publication-grade (``--full``) sweep can run for many minutes with no
output between experiments.  :class:`ProgressReporter` emits a periodic
heartbeat line to stderr with completed/total counts, elapsed time, a
naive ETA, and the trace-event delta since the last beat — and flags a
**stall** when neither an ``advance()`` nor a new trace event has been
seen within the stall window (an experiment stuck in a simulation loop
still emits trace events, so a genuinely wedged process is distinguishable
from a slow one).

Heartbeats also take a metrics-registry snapshot each beat; the most
recent snapshots are kept on ``reporter.snapshots`` for post-hoc
inspection (how fast were counters moving when it stalled?).

The reporter runs a daemon thread between :meth:`start` and
:meth:`finish`; tests drive :meth:`tick` directly with an injected clock.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Any, Callable, TextIO

from .registry import MetricsRegistry, NullRegistry
from .trace import NullTraceLog, TraceLog

__all__ = ["ProgressReporter"]

#: Heartbeat snapshots retained for inspection.
SNAPSHOT_KEEP = 32


class ProgressReporter:
    """Periodic progress/stall reporter for multi-unit runs."""

    def __init__(
        self,
        total: int | None = None,
        *,
        label: str = "experiments",
        interval_s: float = 5.0,
        stall_after_s: float | None = None,
        stream: TextIO | None = None,
        registry: MetricsRegistry | NullRegistry | None = None,
        trace: TraceLog | NullTraceLog | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if total is not None and total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = total
        self.label = label
        self.interval_s = interval_s
        # Default stall window: several missed beats, floored so sub-second
        # test intervals don't flag every gap between experiments.
        self.stall_after_s = (
            stall_after_s if stall_after_s is not None else max(6.0 * interval_s, 30.0)
        )
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry
        self.trace = trace
        self.heartbeats: list[str] = []
        self.snapshots: deque[dict[str, Any]] = deque(maxlen=SNAPSHOT_KEEP)
        self.stalls = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._done = 0
        self._last_item: str | None = None
        self._t0 = self._clock()
        self._last_activity = self._t0
        self._last_emitted = trace.emitted if trace is not None else 0
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ProgressReporter":
        """Reset the clock and launch the heartbeat thread."""
        self._t0 = self._clock()
        self._last_activity = self._t0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-progress", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        assert self._stop is not None
        while not self._stop.wait(self.interval_s):
            self.tick()

    def advance(self, item: str | None = None, n: int = 1) -> None:
        """Record ``n`` completed units (thread-safe)."""
        with self._lock:
            self._done += n
            self._last_item = item
            self._last_activity = self._clock()

    def finish(self) -> None:
        """Stop the heartbeat thread and emit the final summary line."""
        if self._thread is not None:
            assert self._stop is not None
            self._stop.set()
            self._thread.join(timeout=2.0 * self.interval_s)
            self._thread = None
        elapsed = self._clock() - self._t0
        done, total = self._done, self.total
        of = f"/{total}" if total is not None else ""
        self._emit(f"[progress] done: {done}{of} {self.label} in {elapsed:.1f}s")

    # -- heartbeat -------------------------------------------------------------

    def tick(self, now: float | None = None) -> str:
        """Emit one heartbeat line; returns it (tests call this directly)."""
        now = self._clock() if now is None else now
        with self._lock:
            done = self._done
            last_item = self._last_item
            last_activity = self._last_activity
        elapsed = now - self._t0
        parts = [f"[progress] {done}"]
        if self.total is not None:
            parts[0] += f"/{self.total}"
        parts[0] += f" {self.label}"
        parts.append(f"elapsed {elapsed:.1f}s")
        if self.total and 0 < done < self.total:
            eta = (self.total - done) * elapsed / done
            parts.append(f"eta {eta:.1f}s")
        if last_item:
            parts.append(f"last {last_item}")

        new_events = 0
        if self.trace is not None:
            emitted = self.trace.emitted
            new_events = emitted - self._last_emitted
            self._last_emitted = emitted
            parts.append(f"trace {emitted} (+{new_events})")
            if new_events > 0:
                with self._lock:
                    self._last_activity = max(self._last_activity, now)
                    last_activity = self._last_activity

        if self.registry is not None:
            snapshot = self.registry.snapshot()
            self.snapshots.append({"elapsed_s": elapsed, "metrics": snapshot})
            parts.append(f"metrics {len(snapshot)} families")

        idle = now - last_activity
        if idle > self.stall_after_s and new_events == 0:
            self.stalls += 1
            parts.append(f"STALL no activity for {idle:.1f}s")
            # Make the stall durable: a trace warning lands in the JSONL
            # export / span tree, and a counter lands in the manifest's
            # metric snapshot — stderr alone evaporates with the terminal.
            if self.trace is not None:
                self.trace.emit(
                    "stall",
                    kind="warning",
                    idle_s=round(idle, 1),
                    done=done,
                    total=self.total,
                    last_item=last_item,
                )
                # The stall event itself must not read as fresh activity on
                # the next beat (that would suppress every second warning).
                self._last_emitted = self.trace.emitted
            if self.registry is not None:
                self.registry.counter(
                    "progress_stalls_total",
                    help="heartbeats that found no activity in the stall window",
                ).inc()
        line = " · ".join(parts)
        self._emit(line)
        return line

    def _emit(self, line: str) -> None:
        self.heartbeats.append(line)
        print(line, file=self.stream)
        try:
            self.stream.flush()
        except (AttributeError, OSError):  # pragma: no cover - stream quirk
            pass
