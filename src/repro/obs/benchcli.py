"""``repro-bench`` — record and compare performance-trajectory artifacts.

Subcommands:

- ``run``      discover + run benchmarks, write a ``BENCH_*.json`` artifact;
- ``compare``  verdict table between a baseline artifact and a new one;
- ``merge``    pool repeats of several same-suite runs into one artifact
  (how committed baselines are refreshed — see ``merge_artifacts``);
- ``report``   pretty-print a single artifact;
- ``ratio``    throughput ratio between two benchmarks of one artifact,
  with an optional ``--min-ratio`` floor (exit 1 below it) — the CI gate
  keeping the vectorized Erlang kernel >= 10x the scalar loop;
- ``loadtest`` drive the planner service (an external ``--url`` or a
  self-spawned in-process server) with the deterministic closed-loop
  client in :mod:`repro.service.loadtest` and record a ``BENCH_*.json``
  artifact with throughput, p50/p95/p99 latency, and error rate.

``run`` executes the on-disk pytest-benchmark suites (``benchmarks/``) via
the fixture adapter in :mod:`repro.obs.bench` plus anything registered with
``@bench``; ``--select`` filters by fnmatch against benchmark name or
group (e.g. ``--select 'bench_table1_model*'``).  ``compare`` exits 1 on a
"regression" verdict only under ``--fail-on-regression``, so CI can run
report-only on pull requests and gate pushes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .bench import (
    BenchResult,
    build_artifact,
    discover_suite,
    merge_artifacts,
    registered_benchmarks,
    run_specs,
    select_specs,
    write_artifact,
)
from .compare import compare_artifacts, load_artifact, verdict_table

__all__ = ["main"]


def _fmt_s(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}s" if value >= 1.0 else f"{1e3 * value:.2f}ms"


def _fmt_bytes(value: int | None) -> str:
    if value is None:
        return "-"
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f}KiB"
    return f"{value}B"


def _collect(args) -> list:
    # In-process `@bench` registrations live next to the code they measure;
    # import the registration modules before snapshotting the registry
    # (discover_suite imports happen too late for that snapshot).
    from ..control import benchreg  # noqa: F401
    from ..parallel import benchreg as _parallel_benchreg  # noqa: F401

    specs = registered_benchmarks() + discover_suite(args.bench_dir)
    return select_specs(specs, args.select)


def _cmd_run(args) -> int:
    try:
        specs = _collect(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("error: no benchmarks match the selection", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            print(f"{spec.name}  [{spec.group}]")
        return 0

    def show(result: BenchResult) -> None:
        status = _fmt_s(result.wall_median) if result.ok else f"FAILED ({result.error})"
        print(f"  {result.name:<52} {status}", file=sys.stderr)

    print(
        f"running {len(specs)} benchmarks "
        f"(warmup={args.warmup}, repeats={args.repeats})",
        file=sys.stderr,
    )
    results = run_specs(
        specs,
        warmup=args.warmup,
        repeats=args.repeats,
        min_sample_s=args.min_sample,
        track_allocations=not args.no_alloc,
        on_result=show,
    )
    artifact = build_artifact(
        results,
        warmup=args.warmup,
        repeats=args.repeats,
        selection=args.select or [],
    )
    try:
        path = write_artifact(artifact, args.out)
    except OSError as exc:
        print(f"error: cannot write bench artifact under {args.out}: {exc}", file=sys.stderr)
        return 1
    failed = [r for r in results if not r.ok]
    print(f"bench artifact: {path}")
    if failed:
        print(
            f"warning: {len(failed)} benchmark(s) failed: "
            + ", ".join(r.name for r in failed),
            file=sys.stderr,
        )
        return 1
    return 0


def _load(path: str):
    try:
        return load_artifact(path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_compare(args) -> int:
    base = _load(args.baseline)
    new = _load(args.new)
    if base is None or new is None:
        return 2
    try:
        comparison = compare_artifacts(
            base, new, threshold=args.threshold, metric=args.metric
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_doc(), indent=2))
    else:
        print(verdict_table(comparison))
    if args.fail_on_regression and comparison.verdict == "regression":
        return 1
    return 0


def _cmd_merge(args) -> int:
    docs = [_load(p) for p in args.artifacts]
    if any(doc is None for doc in docs):
        return 2
    try:
        merged = merge_artifacts(docs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out)
    try:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged, indent=2) + "\n")
    except OSError as exc:
        print(f"error: cannot write merged artifact to {out}: {exc}", file=sys.stderr)
        return 1
    print(f"merged {len(docs)} artifacts -> {out}")
    return 0


def _cmd_ratio(args) -> int:
    doc = _load(args.artifact)
    if doc is None:
        return 2
    by_name = {e["name"]: e for e in doc["benchmarks"]}
    entries = []
    for name in (args.slow, args.fast):
        entry = by_name.get(name)
        if entry is None:
            print(
                f"error: benchmark {name!r} not in artifact "
                f"(has: {sorted(by_name)})",
                file=sys.stderr,
            )
            return 2
        if not entry["ok"]:
            print(
                f"error: benchmark {name!r} failed: {entry.get('error')}",
                file=sys.stderr,
            )
            return 2
        entries.append(entry)
    slow_s = entries[0][args.metric]["median"]
    fast_s = entries[1][args.metric]["median"]
    if fast_s <= 0.0:
        print(f"error: {args.fast} recorded a non-positive median", file=sys.stderr)
        return 2
    ratio = slow_s / fast_s
    print(
        f"{args.slow}: {_fmt_s(slow_s)}  /  {args.fast}: {_fmt_s(fast_s)}"
        f"  ->  {ratio:.1f}x"
    )
    if args.min_ratio is not None and ratio < args.min_ratio:
        print(
            f"FAIL: ratio {ratio:.1f}x is below the required "
            f"{args.min_ratio:g}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadtest(args) -> int:
    # Imported lazily: repro.service pulls in the planner CLI stack, which
    # the other repro-bench subcommands never need.
    from ..service import PlannerApp, PlannerServer
    from ..service.loadtest import loadtest_artifact, run_loadtest
    from .bench import validate_artifact, write_artifact

    server = None
    if args.url:
        from urllib.parse import urlparse

        parsed = urlparse(args.url)
        if parsed.scheme != "http" or not parsed.hostname or not parsed.port:
            print(
                f"error: --url must look like http://host:port, got {args.url!r}",
                file=sys.stderr,
            )
            return 2
        host, port = parsed.hostname, parsed.port
    else:
        try:
            server = PlannerServer(PlannerApp(), port=0)
        except OSError as exc:
            print(f"error: cannot start in-process server: {exc}", file=sys.stderr)
            return 2
        server.start()
        host, port = server.host, server.port
        print(f"in-process server: {server.url}", file=sys.stderr)
    try:
        result = run_loadtest(
            host,
            port,
            seed=args.seed,
            workers=args.workers,
            duration_s=args.duration if args.requests is None else None,
            total_requests=args.requests,
            distinct=args.distinct,
            warmup=not args.no_warmup,
        )
    except OSError as exc:
        print(f"error: loadtest against {host}:{port} failed: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.drain()
            server.close()
    artifact = loadtest_artifact(result)
    validate_artifact(artifact)
    try:
        path = write_artifact(artifact, args.out)
    except OSError as exc:
        print(f"error: cannot write bench artifact under {args.out}: {exc}", file=sys.stderr)
        return 1
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"loadtest: {summary['requests']} requests in {summary['duration_s']}s "
            f"-> {summary['throughput_rps']} req/s  "
            f"p50={summary['p50_ms']}ms p95={summary['p95_ms']}ms "
            f"p99={summary['p99_ms']}ms  error_rate={summary['error_rate']}"
        )
    # With --json, stdout must stay machine-parseable.
    print(f"bench artifact: {path}", file=sys.stderr if args.json else sys.stdout)
    return 1 if result.errors else 0


def _cmd_report(args) -> int:
    doc = _load(args.artifact)
    if doc is None:
        return 2
    print(
        f"bench artifact {args.artifact}\n"
        f"  schema   : {doc['schema']}\n"
        f"  created  : {doc['created_utc']}\n"
        f"  git sha  : {doc['git_sha']}\n"
        f"  python   : {doc['environment'].get('python', '?')}"
        f" on {doc['environment'].get('platform', '?')}\n"
        f"  warmup/repeats : {doc.get('warmup')}/{doc.get('repeats')}\n"
    )
    entries = doc["benchmarks"]
    name_w = max([len(e["name"]) for e in entries] + [len("benchmark")])
    header = (
        f"{'benchmark':<{name_w}}  {'wall med':>10}  {'wall min':>10}  "
        f"{'cpu med':>10}  {'alloc peak':>10}"
    )
    print(header)
    print("-" * len(header))
    for e in entries:
        if not e["ok"]:
            print(f"{e['name']:<{name_w}}  FAILED: {e.get('error')}")
            continue
        print(
            f"{e['name']:<{name_w}}  {_fmt_s(e['wall_s']['median']):>10}  "
            f"{_fmt_s(e['wall_s']['min']):>10}  {_fmt_s(e['cpu_s']['median']):>10}  "
            f"{_fmt_bytes(e['alloc'].get('peak_bytes')):>10}"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run benchmarks, record BENCH_*.json artifacts, and "
        "compare them for regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run benchmarks and write an artifact")
    run_p.add_argument(
        "--bench-dir",
        default="benchmarks",
        help="directory holding bench_*.py suites (default: benchmarks)",
    )
    run_p.add_argument(
        "--select",
        action="append",
        metavar="PATTERN",
        help="fnmatch filter on benchmark name or group (repeatable)",
    )
    run_p.add_argument("--warmup", type=int, default=1, help="throwaway runs first")
    run_p.add_argument("--repeats", type=int, default=5, help="timed repeats")
    run_p.add_argument(
        "--min-sample",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="calibrate inner iterations so each timed sample lasts at "
        "least this long (0 = time single calls; default 0.1s)",
    )
    run_p.add_argument(
        "--out", default=".", metavar="DIR", help="artifact directory (default: .)"
    )
    run_p.add_argument(
        "--no-alloc", action="store_true", help="skip the tracemalloc pass"
    )
    run_p.add_argument(
        "--list", action="store_true", help="list selected benchmarks, run nothing"
    )
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare two artifacts")
    cmp_p.add_argument("baseline", help="baseline BENCH_*.json")
    cmp_p.add_argument("new", help="new BENCH_*.json")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative band on the median (default 0.25 = ±25%%)",
    )
    cmp_p.add_argument(
        "--metric", choices=("wall_s", "cpu_s"), default="wall_s"
    )
    cmp_p.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when the verdict is 'regression'",
    )
    cmp_p.add_argument("--json", action="store_true", help="emit the comparison JSON")
    cmp_p.set_defaults(fn=_cmd_compare)

    merge_p = sub.add_parser(
        "merge",
        help="pool repeats of several same-suite artifacts (baseline refresh)",
    )
    merge_p.add_argument("artifacts", nargs="+", help="BENCH_*.json files to pool")
    merge_p.add_argument(
        "--out", required=True, metavar="FILE", help="path for the merged artifact"
    )
    merge_p.set_defaults(fn=_cmd_merge)

    rep_p = sub.add_parser("report", help="pretty-print one artifact")
    rep_p.add_argument("artifact", help="BENCH_*.json to show")
    rep_p.set_defaults(fn=_cmd_report)

    ratio_p = sub.add_parser(
        "ratio",
        help="throughput ratio slow/fast between two benchmarks of one "
        "artifact, with an optional floor",
    )
    ratio_p.add_argument("artifact", help="BENCH_*.json holding both benchmarks")
    ratio_p.add_argument("slow", help="name of the slow (numerator) benchmark")
    ratio_p.add_argument("fast", help="name of the fast (denominator) benchmark")
    ratio_p.add_argument(
        "--metric", choices=("wall_s", "cpu_s"), default="wall_s"
    )
    ratio_p.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when slow/fast falls below this speedup factor",
    )
    ratio_p.set_defaults(fn=_cmd_ratio)

    load_p = sub.add_parser(
        "loadtest",
        help="closed-loop load test against the planner service; writes a "
        "BENCH_*.json artifact with throughput and tail latency",
    )
    load_p.add_argument(
        "--url",
        metavar="URL",
        help="target http://host:port (default: spawn an in-process server "
        "on an ephemeral port)",
    )
    load_p.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="closed-loop run length (default %(default)ss; ignored with --requests)",
    )
    load_p.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="stop after N total requests instead of a fixed duration",
    )
    load_p.add_argument(
        "--workers", type=int, default=4, help="client threads (default %(default)s)"
    )
    load_p.add_argument(
        "--seed", type=int, default=2009,
        help="mix-generator seed (default %(default)s)",
    )
    load_p.add_argument(
        "--distinct", type=int, default=64,
        help="distinct request bodies in the mix (default %(default)s)",
    )
    load_p.add_argument(
        "--no-warmup", action="store_true",
        help="skip the one-pass cache warmup (records cold-cache numbers)",
    )
    load_p.add_argument(
        "--out", default=".", metavar="DIR", help="artifact directory (default: .)"
    )
    load_p.add_argument("--json", action="store_true", help="emit the summary JSON")
    load_p.set_defaults(fn=_cmd_loadtest)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
