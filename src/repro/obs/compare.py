"""Noise-aware comparison of two ``repro.bench/v1`` artifacts.

Benchmark timings on shared machines are noisy; a single fast or slow
repeat must not flip a verdict.  Comparison therefore uses the
median-of-repeats from each artifact and a configurable relative
threshold: a benchmark is a *regression* only when its new median exceeds
the baseline median by more than ``threshold`` (and an *improvement* in
the symmetric case).  Everything inside the band is *unchanged*.  The
default band is ±25%: measured same-commit rerun noise on shared
machines reaches ~15% on multi-millisecond benches and worse below a
millisecond, so a tighter default would flag phantom regressions.

The overall verdict string is exactly ``"regression"`` or
``"no regression"`` so gates (CI, scripts) can match on it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from .bench import validate_artifact

__all__ = [
    "BenchDelta",
    "Comparison",
    "compare_artifacts",
    "load_artifact",
    "verdict_table",
]

#: Verdicts a single benchmark can receive.
VERDICTS = ("regression", "improvement", "unchanged", "added", "removed", "error")


@dataclass(frozen=True)
class BenchDelta:
    """Per-benchmark comparison outcome."""

    name: str
    base_median: float | None
    new_median: float | None
    rel_change: float | None  # new/base - 1; None when undefined
    verdict: str


@dataclass(frozen=True)
class Comparison:
    """Full comparison: one :class:`BenchDelta` per benchmark name."""

    threshold: float
    metric: str
    deltas: tuple[BenchDelta, ...]

    @property
    def regressions(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "regression")

    @property
    def improvements(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "improvement")

    @property
    def errors(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "error")

    @property
    def verdict(self) -> str:
        return "regression" if self.regressions else "no regression"

    def to_doc(self) -> dict[str, Any]:
        """JSON-serialisable comparison document (``repro-bench compare --json``)."""
        counts = {v: 0 for v in VERDICTS}
        for d in self.deltas:
            counts[d.verdict] += 1
        return {
            "schema": "repro.bench-compare/v1",
            "metric": self.metric,
            "threshold": self.threshold,
            "verdict": self.verdict,
            "counts": counts,
            "deltas": [
                {
                    "name": d.name,
                    "base_median_s": d.base_median,
                    "new_median_s": d.new_median,
                    "rel_change": d.rel_change,
                    "verdict": d.verdict,
                }
                for d in self.deltas
            ],
        }


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` artifact."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"no such bench artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON in {path}: {exc}") from exc
    try:
        validate_artifact(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc


def _median(entry: Mapping[str, Any], metric: str) -> float | None:
    timing = entry.get(metric) or {}
    value = timing.get("median")
    return float(value) if value is not None else None


def _delta(
    name: str,
    base_entry: Mapping[str, Any] | None,
    new_entry: Mapping[str, Any] | None,
    metric: str,
    threshold: float,
) -> BenchDelta:
    if base_entry is None:
        return BenchDelta(name, None, _median(new_entry, metric), None, "added")
    if new_entry is None:
        return BenchDelta(name, _median(base_entry, metric), None, None, "removed")
    base = _median(base_entry, metric) if base_entry.get("ok", False) else None
    new = _median(new_entry, metric) if new_entry.get("ok", False) else None
    if base is None or new is None:
        return BenchDelta(name, base, new, None, "error")
    if base == 0.0:
        rel = math.inf if new > 0.0 else 0.0
    else:
        rel = new / base - 1.0
    if rel > threshold:
        verdict = "regression"
    elif rel < -threshold:
        verdict = "improvement"
    else:
        verdict = "unchanged"
    return BenchDelta(name, base, new, rel, verdict)


def compare_artifacts(
    base: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    threshold: float = 0.25,
    metric: str = "wall_s",
) -> Comparison:
    """Compare two artifact documents benchmark-by-benchmark.

    ``threshold`` is the relative band (0.25 = ±25% of the baseline
    median); ``metric`` selects ``wall_s`` or ``cpu_s`` medians.
    """
    if threshold < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if metric not in ("wall_s", "cpu_s"):
        raise ValueError(f"metric must be wall_s or cpu_s, got {metric!r}")
    base_by = {e["name"]: e for e in base["benchmarks"]}
    new_by = {e["name"]: e for e in new["benchmarks"]}
    deltas = tuple(
        _delta(name, base_by.get(name), new_by.get(name), metric, threshold)
        for name in sorted(set(base_by) | set(new_by))
    )
    return Comparison(threshold=threshold, metric=metric, deltas=deltas)


def _fmt_s(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{1e3 * value:.2f}ms"


def _fmt_rel(value: float | None) -> str:
    if value is None:
        return "-"
    if value == math.inf:
        return "+inf"
    return f"{100.0 * value:+.1f}%"


def verdict_table(comparison: Comparison) -> str:
    """Human-readable verdict table plus a one-line summary."""
    name_w = max([len(d.name) for d in comparison.deltas] + [len("benchmark")])
    header = (
        f"{'benchmark':<{name_w}}  {'base':>10}  {'new':>10}  {'delta':>8}  verdict"
    )
    lines = [header, "-" * len(header)]
    for d in comparison.deltas:
        lines.append(
            f"{d.name:<{name_w}}  {_fmt_s(d.base_median):>10}  "
            f"{_fmt_s(d.new_median):>10}  {_fmt_rel(d.rel_change):>8}  {d.verdict}"
        )
    lines.append("")
    lines.append(
        f"verdict: {comparison.verdict} "
        f"({len(comparison.regressions)} regressions, "
        f"{len(comparison.improvements)} improvements, "
        f"threshold ±{100.0 * comparison.threshold:.0f}% on median {comparison.metric})"
    )
    return "\n".join(lines)
