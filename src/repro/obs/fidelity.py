"""Paper-fidelity scoreboard: declared expectations, verdicts, artifacts.

PR 2's bench harness detects when the reproduction gets *slower*; this
module detects when it stops reproducing the *paper*.  Each experiment
module declares, next to its outputs, the values the paper (or the pinned
reproduction protocol — seed 2009, fast/full horizons) expects its summary
to contain, with explicit tolerances:

    from ..obs import fidelity
    fidelity.declare_expectations(
        "fig12",
        fidelity.Expectation("power_saving_fraction", 0.53, rel_tol=0.05,
                             source="Fig. 12: up to 53% total power saved"),
    )

A checker (:func:`evaluate_summaries`) consumes experiment summaries —
from a fresh run or from the ``<id>.json`` artifacts in a results
directory (:func:`load_results_summaries`) — and grades every declared
metric:

- ``match``  — within the declared tolerance;
- ``drift``  — outside the tolerance but within ``drift_factor`` times it
  (the model moved; a human should look, CI should not page);
- ``fail``   — beyond the drift band, missing, or of the wrong type.

The scoreboard serialises as an append-only ``FIDELITY_<date>_<sha>.json``
artifact (schema ``repro.fidelity/v1``) in the same spirit as
``BENCH_*.json``, so accuracy drift is tracked across commits exactly like
performance.  Everything here is stdlib-only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .envinfo import append_only_artifact_path, detect_git_sha, environment_fingerprint
from .export import inputs_hash

__all__ = [
    "FIDELITY_SCHEMA",
    "VERDICTS",
    "Expectation",
    "MetricVerdict",
    "Scoreboard",
    "declare_expectations",
    "expectations_for",
    "declared_experiments",
    "check_expectations",
    "evaluate_summaries",
    "load_results_summaries",
    "build_fidelity_artifact",
    "validate_fidelity_artifact",
    "write_fidelity_artifact",
    "load_fidelity_artifact",
    "scoreboard_table",
]

FIDELITY_SCHEMA = "repro.fidelity/v1"

#: Per-metric verdicts, best to worst.
VERDICTS = ("match", "drift", "fail")

_OPS = ("approx", "ge", "le", "bool")


@dataclass(frozen=True)
class Expectation:
    """One declared paper-expected value with its tolerance.

    ``op`` semantics:

    - ``approx`` — ``|actual - expected| <= tolerance`` matches;
    - ``ge``     — at least ``expected`` matches (overshooting is fine;
      a shortfall is graded against the tolerance);
    - ``le``     — at most ``expected``, symmetric to ``ge``;
    - ``bool``   — truth values must agree exactly (never drifts).

    ``tolerance`` is ``max(abs_tol, rel_tol * |expected|)``.  Outside the
    tolerance but within ``drift_factor * tolerance`` grades ``drift``;
    beyond that, ``fail``.  With a zero tolerance the drift band is empty
    and any mismatch fails — the right setting for exact integers such as
    Table I server counts.
    """

    metric: str
    expected: float | int | bool
    op: str = "approx"
    abs_tol: float = 0.0
    rel_tol: float = 0.0
    drift_factor: float = 3.0
    source: str = ""
    note: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.abs_tol < 0.0 or self.rel_tol < 0.0:
            raise ValueError(
                f"tolerances must be non-negative, got abs_tol={self.abs_tol} "
                f"rel_tol={self.rel_tol}"
            )
        if self.drift_factor < 1.0:
            raise ValueError(
                f"drift_factor must be >= 1, got {self.drift_factor}"
            )
        if self.op == "bool" and (self.abs_tol or self.rel_tol):
            raise ValueError("bool expectations take no tolerance")

    @property
    def tolerance(self) -> float:
        if self.op == "bool":
            return 0.0
        return max(self.abs_tol, self.rel_tol * abs(float(self.expected)))

    def check(self, actual: Any) -> tuple[str, str]:
        """Grade ``actual``; returns ``(verdict, detail)``."""
        if actual is None:
            return "fail", "metric missing from summary"
        if self.op == "bool":
            if not isinstance(actual, bool):
                return "fail", f"expected a bool, got {type(actual).__name__}"
            if actual == bool(self.expected):
                return "match", "truth value agrees"
            return "fail", f"expected {bool(self.expected)}, got {actual}"
        if isinstance(actual, bool) or not isinstance(actual, (int, float)):
            return "fail", f"expected a number, got {type(actual).__name__}"
        actual = float(actual)
        expected = float(self.expected)
        if actual != actual:  # NaN never matches anything
            return "fail", "actual is NaN"
        if self.op == "ge":
            deviation = expected - actual  # only a shortfall counts
        elif self.op == "le":
            deviation = actual - expected  # only an excess counts
        else:
            deviation = abs(actual - expected)
        tol = self.tolerance
        if deviation <= tol:
            return "match", f"deviation {deviation:.6g} <= tol {tol:.6g}"
        if deviation <= self.drift_factor * tol:
            return (
                "drift",
                f"deviation {deviation:.6g} within {self.drift_factor:g}x "
                f"tol {tol:.6g}",
            )
        return "fail", f"deviation {deviation:.6g} > {self.drift_factor:g}x tol {tol:.6g}"


# -- declaration registry ------------------------------------------------------

_EXPECTATIONS: dict[str, tuple[Expectation, ...]] = {}


def declare_expectations(experiment: str, *expectations: Expectation) -> None:
    """Register ``experiment``'s expectations (once, at module import)."""
    if not expectations:
        raise ValueError(f"experiment {experiment!r} declared no expectations")
    if experiment in _EXPECTATIONS:
        raise ValueError(f"expectations for {experiment!r} already declared")
    metrics = [e.metric for e in expectations]
    if len(set(metrics)) != len(metrics):
        raise ValueError(f"duplicate metric expectations for {experiment!r}")
    _EXPECTATIONS[experiment] = tuple(expectations)


def expectations_for(experiment: str) -> tuple[Expectation, ...]:
    """Declared expectations for one experiment (empty if none)."""
    return _EXPECTATIONS.get(experiment, ())


def declared_experiments() -> list[str]:
    """Sorted names of every experiment with declared expectations."""
    return sorted(_EXPECTATIONS)


# -- evaluation ----------------------------------------------------------------


@dataclass(frozen=True)
class MetricVerdict:
    """One graded expectation."""

    experiment: str
    metric: str
    verdict: str
    expected: float | int | bool
    actual: Any
    op: str
    tolerance: float
    detail: str
    source: str = ""
    note: str = ""


@dataclass(frozen=True)
class Scoreboard:
    """All verdicts of one fidelity evaluation."""

    verdicts: tuple[MetricVerdict, ...]

    @property
    def counts(self) -> dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for v in self.verdicts:
            out[v.verdict] += 1
        return out

    @property
    def fails(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == "fail")

    @property
    def drifts(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == "drift")

    @property
    def overall(self) -> str:
        """Worst verdict present: ``fail`` > ``drift`` > ``match``."""
        counts = self.counts
        if counts["fail"]:
            return "fail"
        if counts["drift"]:
            return "drift"
        return "match"

    @property
    def experiments(self) -> list[str]:
        return sorted({v.experiment for v in self.verdicts})


def check_expectations(
    experiment: str,
    summary: Mapping[str, Any] | None,
    expectations: Iterable[Expectation],
) -> list[MetricVerdict]:
    """Grade one experiment's summary against explicit expectations."""
    verdicts = []
    for exp in expectations:
        actual = None if summary is None else summary.get(exp.metric)
        verdict, detail = exp.check(actual)
        if summary is None:
            detail = "experiment summary missing"
        verdicts.append(
            MetricVerdict(
                experiment=experiment,
                metric=exp.metric,
                verdict=verdict,
                expected=exp.expected,
                actual=actual,
                op=exp.op,
                tolerance=exp.tolerance,
                detail=detail,
                source=exp.source,
                note=exp.note,
            )
        )
    return verdicts


def evaluate_summaries(
    summaries: Mapping[str, Mapping[str, Any]],
    experiments: Sequence[str] | None = None,
) -> Scoreboard:
    """Grade every declared expectation against ``summaries``.

    ``summaries`` maps experiment name -> summary mapping.  By default only
    declared experiments *present* in ``summaries`` are graded (running a
    subset must not fail the absent rest); pass ``experiments`` explicitly
    to demand specific ones — a demanded-but-absent experiment fails all
    its expectations.
    """
    names = (
        [n for n in declared_experiments() if n in summaries]
        if experiments is None
        else list(experiments)
    )
    verdicts: list[MetricVerdict] = []
    for name in names:
        verdicts.extend(
            check_expectations(name, summaries.get(name), expectations_for(name))
        )
    return Scoreboard(verdicts=tuple(verdicts))


def load_results_summaries(results_dir: str | Path) -> dict[str, dict[str, Any]]:
    """Experiment summaries from the ``<id>.json`` artifacts in a directory.

    Only documents with both ``experiment`` and ``summary`` keys count;
    manifests, ``BENCH_*``/``FIDELITY_*`` artifacts, and foreign JSON are
    skipped.  Unreadable JSON raises — a corrupt results directory must not
    silently grade as "nothing to check".
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"results directory not found: {results_dir}")
    summaries: dict[str, dict[str, Any]] = {}
    for path in sorted(results_dir.glob("*.json")):
        if path.name.startswith(("BENCH_", "FIDELITY_")):
            continue
        doc = json.loads(path.read_text())
        if (
            isinstance(doc, dict)
            and isinstance(doc.get("experiment"), str)
            and isinstance(doc.get("summary"), dict)
        ):
            summaries[doc["experiment"]] = doc["summary"]
    return summaries


# -- artifact ------------------------------------------------------------------


def _verdict_doc(v: MetricVerdict) -> dict[str, Any]:
    return {
        "experiment": v.experiment,
        "metric": v.metric,
        "verdict": v.verdict,
        "expected": v.expected,
        "actual": v.actual,
        "op": v.op,
        "tolerance": v.tolerance,
        "detail": v.detail,
        "source": v.source,
        "note": v.note,
    }


def build_fidelity_artifact(
    scoreboard: Scoreboard,
    *,
    git_sha: str | None = None,
    created_utc: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``repro.fidelity/v1`` artifact document."""
    # Imported lazily for the same circularity reason as export._model_version.
    from .. import __version__

    inputs = {
        "experiments": scoreboard.experiments,
        "metrics": [f"{v.experiment}.{v.metric}" for v in scoreboard.verdicts],
    }
    doc: dict[str, Any] = {
        "schema": FIDELITY_SCHEMA,
        "created_utc": created_utc
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha if git_sha is not None else detect_git_sha(),
        "model_version": __version__,
        "environment": environment_fingerprint(),
        "inputs_hash": inputs_hash(inputs),
        "overall": scoreboard.overall,
        "counts": scoreboard.counts,
        "verdicts": [_verdict_doc(v) for v in scoreboard.verdicts],
    }
    if extra:
        doc.update(dict(extra))
    return doc


def validate_fidelity_artifact(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed fidelity artifact."""
    if not isinstance(doc, Mapping):
        raise ValueError("fidelity artifact must be a JSON object")
    schema = doc.get("schema")
    if schema != FIDELITY_SCHEMA:
        raise ValueError(f"unexpected schema {schema!r} (want {FIDELITY_SCHEMA!r})")
    for key in ("created_utc", "git_sha", "environment", "overall", "verdicts"):
        if key not in doc:
            raise ValueError(f"fidelity artifact missing {key!r}")
    if doc["overall"] not in VERDICTS:
        raise ValueError(f"unknown overall verdict {doc['overall']!r}")
    if not isinstance(doc["verdicts"], list):
        raise ValueError("fidelity artifact 'verdicts' must be a list")
    for entry in doc["verdicts"]:
        for key in ("experiment", "metric", "verdict", "expected"):
            if key not in entry:
                raise ValueError(f"verdict entry missing {key!r}: {entry}")
        if entry["verdict"] not in VERDICTS:
            raise ValueError(f"unknown verdict {entry['verdict']!r}")


def write_fidelity_artifact(
    doc: Mapping[str, Any], out_dir: str | Path = "."
) -> Path:
    """Write ``doc`` as ``FIDELITY_<YYYYMMDD>_<shortsha>.json`` (append-only)."""
    validate_fidelity_artifact(doc)
    day = str(doc["created_utc"])[:10].replace("-", "")
    path = append_only_artifact_path(out_dir, f"FIDELITY_{day}_{doc['git_sha']}")
    path.write_text(json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n")
    return path


def load_fidelity_artifact(path: str | Path) -> dict[str, Any]:
    """Load and validate a ``FIDELITY_*.json`` artifact."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"no such fidelity artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON in {path}: {exc}") from exc
    try:
        validate_fidelity_artifact(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc


# -- rendering -----------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def scoreboard_table(scoreboard: Scoreboard) -> str:
    """Human-readable scoreboard plus a one-line summary."""
    rows = [
        (
            v.experiment,
            v.metric,
            _fmt(v.expected),
            _fmt(v.actual),
            v.op,
            v.verdict.upper() if v.verdict == "fail" else v.verdict,
        )
        for v in scoreboard.verdicts
    ]
    headers = ("experiment", "metric", "expected", "actual", "op", "verdict")
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    counts = scoreboard.counts
    lines.append("")
    lines.append(
        f"fidelity: {scoreboard.overall} "
        f"({counts['match']} match, {counts['drift']} drift, "
        f"{counts['fail']} fail over {len(scoreboard.experiments)} experiments)"
    )
    return "\n".join(lines)
