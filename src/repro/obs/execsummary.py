"""Executive fleet dashboard: one HTML page that answers "which fleet?".

``repro-fleet`` (and ``repro-experiments --fleet-out``) aggregate every
discoverable run artifact — manifests, experiment summaries, BENCH
trajectory points, FIDELITY scoreboards — through the run ledger
(:mod:`repro.obs.ledger`) and the cost/energy/carbon aggregator
(:mod:`repro.obs.fleet`) into:

- a self-contained HTML dashboard (no JavaScript, no external assets)
  with the executive decision table, per-experiment fidelity verdict
  grid, and inline-SVG BENCH trend sparklines; and
- a machine-readable ``FLEET_*.json`` companion artifact (append-only,
  schema ``repro.fleet/v1``).

Like every report in this repo, the renderer is a pure function over
already-loaded documents; the CLI only does discovery and I/O.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Sequence

from .fleet import (
    AuditAssumptions,
    build_fleet_artifact,
    build_fleet_summary,
    write_fleet_artifact,
)
from .htmlutil import badge, esc, kv_table, page, sparkline, table
from .ledger import RunLedger, build_ledger

__all__ = ["render_fleet_dashboard", "build_and_render", "main"]

#: Human labels for the assumption keys, shown in the dashboard.
_ASSUMPTION_LABELS = {
    "price_usd_per_kwh": "electricity price ($/kWh)",
    "carbon_g_per_kwh": "grid carbon intensity (gCO2/kWh)",
    "server_capex_usd": "server capex, amortized ($)",
    "server_lifetime_years": "server lifetime (years)",
    "horizon_hours": "audit horizon (hours)",
}


def _money(value: Any) -> str:
    if isinstance(value, (int, float)):
        return f"${value:,.2f}"
    return "–"


def _num(value: Any, unit: str = "", digits: int = 1) -> str:
    if isinstance(value, (int, float)):
        return f"{value:,.{digits}f}{unit}"
    return "–"


def _section_decision(doc: Mapping[str, Any]) -> str:
    out = ["<h2>Executive summary</h2>"]
    decision = doc.get("decision") or {}
    recommendation = decision.get("recommendation")
    headline = decision.get("headline", "")
    if recommendation:
        out.append(
            f'<p class="headline">{badge(recommendation)} {esc(headline)}</p>'
        )
    else:
        out.append(f'<div class="warnbox">⚠ {esc(headline or "no decision")}</div>')
    scenarios = doc.get("scenarios") or {}
    if scenarios:
        rows = []
        for name in ("dedicated", "consolidated", "projected"):
            s = scenarios.get(name)
            if not s:
                continue
            rows.append(
                (
                    f"{badge(name) if name != 'projected' else esc(name)}",
                    f'<span class="mono">{esc(s.get("servers", "–"))}</span>',
                    f'<span class="mono">{esc(_num(s.get("mean_power_w"), " W"))}</span>',
                    f'<span class="mono">{esc(_num(s.get("energy_kwh"), " kWh"))}</span>',
                    f'<span class="mono">{esc(_money(s.get("energy_cost_usd")))}</span>',
                    f'<span class="mono">{esc(_money(s.get("capex_usd")))}</span>',
                    f'<span class="mono">{esc(_money(s.get("total_cost_usd")))}</span>',
                    f'<span class="mono">{esc(_num(s.get("carbon_kg"), " kg"))}</span>',
                    f'<span class="muted">{esc(s.get("source", ""))}</span>',
                )
            )
        out.append(
            table(
                ("fleet", "servers", "mean power", "energy", "energy $",
                 "capex $", "total $", "CO2", "source"),
                rows,
            )
        )
    deltas = doc.get("deltas") or {}
    if deltas:
        out.append("<h3>Savings (positive = alternative is leaner)</h3>")
        rows = []
        for label, d in deltas.items():
            frac = d.get("cost_saved_fraction")
            rows.append(
                (
                    f'<span class="mono">{esc(label.replace("_", " "))}</span>',
                    f'<span class="mono">{esc(d.get("servers_saved", "–"))}</span>',
                    f'<span class="mono">{esc(_num(d.get("power_saved_w"), " W"))}</span>',
                    f'<span class="mono">{esc(_num(d.get("energy_saved_kwh"), " kWh"))}</span>',
                    f'<span class="mono">{esc(_money(d.get("cost_saved_usd")))}</span>',
                    f'<span class="mono">{esc(_num(d.get("carbon_saved_kg"), " kg"))}</span>',
                    f'<span class="mono">'
                    f'{esc(f"{100.0 * frac:+.1f}%" if isinstance(frac, float) else "–")}'
                    f"</span>",
                )
            )
        out.append(
            table(
                ("comparison", "servers", "power", "energy", "cost",
                 "carbon", "cost %"),
                rows,
            )
        )
    for note in doc.get("notes") or []:
        out.append(f'<div class="warnbox">⚠ {esc(note)}</div>')
    return "".join(out)


def _section_assumptions(doc: Mapping[str, Any]) -> str:
    out = ["<h2>Audit assumptions</h2>"]
    assumptions = doc.get("assumptions") or {}
    if not assumptions:
        out.append('<p class="muted">No assumptions recorded.</p>')
        return "".join(out)
    out.append(
        '<p class="muted">Every dollar and kilogram above derives from '
        "these recorded inputs; rebuild with different flags to restate "
        "the audit.</p>"
    )
    out.append(
        kv_table(
            {
                _ASSUMPTION_LABELS.get(key, key): value
                for key, value in assumptions.items()
            }
        )
    )
    return "".join(out)


def _section_fidelity_grid(doc: Mapping[str, Any]) -> str:
    out = ["<h2>Fidelity verdict grid</h2>"]
    fidelity = doc.get("fidelity") or {}
    grid = fidelity.get("per_experiment") or {}
    if not grid:
        out.append('<p class="muted">No fidelity data in the ledger.</p>')
        return "".join(out)
    overall = fidelity.get("overall")
    counts = fidelity.get("counts") or {}
    out.append(
        f"<p>Overall: {badge(str(overall))} "
        f'<span class="muted">({counts.get("match", 0)} match, '
        f'{counts.get("drift", 0)} drift, {counts.get("fail", 0)} fail '
        f"across {len(grid)} experiment(s))</span></p>"
    )
    rows = [
        (
            f'<span class="mono">{esc(name)}</span>',
            badge(cell.get("overall", "?")),
            f'<span class="mono">{esc(cell.get("match", 0))}</span>',
            f'<span class="mono">{esc(cell.get("drift", 0))}</span>',
            f'<span class="mono">{esc(cell.get("fail", 0))}</span>',
        )
        for name, cell in grid.items()
    ]
    out.append(table(("experiment", "verdict", "match", "drift", "fail"), rows))
    return "".join(out)


def _section_bench_trend(doc: Mapping[str, Any]) -> str:
    out = ["<h2>Performance trajectory</h2>"]
    bench = doc.get("bench") or {}
    series = bench.get("median_wall_s") or {}
    points = bench.get("points", 0)
    if not series:
        out.append(
            '<p class="muted">No BENCH_*.json artifacts in the ledger — '
            'run <span class="mono">repro-bench run</span> to record one.</p>'
        )
        return "".join(out)
    axis = bench.get("created_utc") or []
    span = (
        f'{esc(axis[0])} → {esc(axis[-1])}' if len(axis) >= 2 else esc("".join(axis))
    )
    out.append(
        f'<p class="muted">{points} trajectory point(s) spanning {span}.</p>'
    )
    rows = []
    for name, values in series.items():
        latest = values[-1] if values else None
        first = values[0] if values else None
        rel = (
            f"{100.0 * (latest / first - 1.0):+.1f}%"
            if isinstance(latest, float) and isinstance(first, float) and first
            else "–"
        )
        rows.append(
            (
                f'<span class="mono">{esc(name)}</span>',
                f'<span class="mono">'
                f'{esc(_num(latest * 1e3 if latest is not None else None, " ms", 2))}'
                f"</span>",
                f'<span class="mono">{esc(rel)}</span>',
                sparkline(values),
            )
        )
    out.append(table(("benchmark", "latest median", "vs first", "trend"), rows))
    return "".join(out)


def _section_ledger(doc: Mapping[str, Any]) -> str:
    out = ["<h2>Run ledger</h2>"]
    ledger = doc.get("ledger") or {}
    counts = ledger.get("counts") or {}
    head = {
        "directories": ", ".join(ledger.get("directories", [])),
        "indexed runs": len(ledger.get("runs", [])),
        **{f"{k} artifacts": v for k, v in counts.items()},
        "seeds": ", ".join(str(s) for s in doc.get("seeds", [])) or "–",
        "environments": doc.get("environments", 0),
    }
    out.append(kv_table(head))
    excluded = doc.get("excluded") or []
    if excluded:
        out.append(
            f'<div class="warnbox">⚠ {len(excluded)} result(s) excluded '
            "from the aggregation:</div>"
        )
        out.append(
            table(
                ("experiment", "path", "reason"),
                [
                    (
                        f'<span class="mono">{esc(e.get("experiment", "?"))}</span>',
                        f'<span class="mono">{esc(e.get("path", "?"))}</span>',
                        esc(e.get("reason", "")),
                    )
                    for e in excluded
                ],
            )
        )
    skipped = ledger.get("skipped") or []
    if skipped:
        out.append(
            f"<details><summary>{len(skipped)} file(s) skipped during "
            "discovery</summary>"
        )
        out.append(
            table(
                ("path", "reason"),
                [
                    (
                        f'<span class="mono">{esc(s.get("path", "?"))}</span>',
                        esc(s.get("reason", "")),
                    )
                    for s in skipped
                ],
            )
        )
        out.append("</details>")
    return "".join(out)


def render_fleet_dashboard(
    doc: Mapping[str, Any],
    *,
    title: str = "repro fleet audit",
    generated_utc: str | None = None,
) -> str:
    """Render a fleet artifact document into the self-contained dashboard."""
    generated = generated_utc or doc.get("created_utc") or datetime.now(
        timezone.utc
    ).isoformat(timespec="seconds")
    subtitle = [f"generated {generated}"]
    if doc.get("git_sha"):
        subtitle.append(f"commit {doc['git_sha']}")
    if doc.get("inputs_hash"):
        subtitle.append(f"runs hash {str(doc['inputs_hash'])[:12]}")
    body = "".join(
        (
            f"<h1>{esc(title)}</h1>",
            f'<p class="muted">{esc(" · ".join(subtitle))}</p>',
            _section_decision(doc),
            _section_assumptions(doc),
            _section_fidelity_grid(doc),
            _section_bench_trend(doc),
            _section_ledger(doc),
        )
    )
    return page(title, body)


def build_and_render(
    ledger: RunLedger,
    assumptions: AuditAssumptions | None = None,
    *,
    title: str = "repro fleet audit",
    fidelity_doc: Mapping[str, Any] | None = None,
    git_sha: str | None = None,
    created_utc: str | None = None,
) -> tuple[dict[str, Any], str]:
    """Ledger -> (fleet artifact document, dashboard HTML)."""
    summary = build_fleet_summary(
        ledger, assumptions, fidelity_doc=fidelity_doc
    )
    artifact = build_fleet_artifact(
        summary, ledger, git_sha=git_sha, created_utc=created_utc
    )
    return artifact, render_fleet_dashboard(artifact, title=title)


def _fallback_fidelity(ledger: RunLedger) -> Mapping[str, Any] | None:
    """Grade the ledger's summaries when no FIDELITY artifact was indexed.

    Importing the experiment registry pulls in every declared expectation;
    done lazily because it is only needed on this path.
    """
    if ledger.fidelity_docs() or not ledger.results:
        return None
    from ..experiments import runner as _runner  # noqa: F401
    from .fidelity import build_fidelity_artifact, evaluate_summaries

    scoreboard = evaluate_summaries(ledger.summaries())
    if not scoreboard.verdicts:
        return None
    return build_fidelity_artifact(scoreboard)


def main(argv: Sequence[str] | None = None) -> int:
    """``repro-fleet`` — build the fleet dashboard from on-disk artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Aggregate run manifests, experiment summaries, BENCH "
        "and FIDELITY artifacts into one executive cost/energy/carbon "
        "dashboard (self-contained HTML + FLEET_*.json) — without "
        "re-running any experiment.",
    )
    parser.add_argument(
        "--scan",
        action="append",
        metavar="DIR",
        help="directories to index recursively (repeatable; default: "
        "results and benchmarks/baselines; first listed wins conflicts)",
    )
    parser.add_argument(
        "--price-usd-per-kwh",
        type=float,
        default=AuditAssumptions.price_usd_per_kwh,
        metavar="USD",
        help="electricity price assumption (default: %(default)s)",
    )
    parser.add_argument(
        "--carbon-g-per-kwh",
        type=float,
        default=AuditAssumptions.carbon_g_per_kwh,
        metavar="G",
        help="grid carbon intensity assumption (default: %(default)s)",
    )
    parser.add_argument(
        "--server-capex-usd",
        type=float,
        default=AuditAssumptions.server_capex_usd,
        metavar="USD",
        help="per-server capex, amortized over the server lifetime "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--server-lifetime-years",
        type=float,
        default=AuditAssumptions.server_lifetime_years,
        metavar="Y",
        help="amortization period for the capex (default: %(default)s)",
    )
    parser.add_argument(
        "--horizon-hours",
        type=float,
        default=AuditAssumptions.horizon_hours,
        metavar="H",
        help="audit horizon the steady-state draw is projected over "
        "(default: %(default)s = one year)",
    )
    parser.add_argument("--title", default="repro fleet audit")
    parser.add_argument(
        "--out", default="fleet.html", metavar="FILE", help="output HTML path"
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        help="where the FLEET_*.json companion lands (default: next to "
        "--out; pass an empty string to skip writing it)",
    )
    args = parser.parse_args(argv)

    try:
        assumptions = AuditAssumptions(
            price_usd_per_kwh=args.price_usd_per_kwh,
            carbon_g_per_kwh=args.carbon_g_per_kwh,
            server_capex_usd=args.server_capex_usd,
            server_lifetime_years=args.server_lifetime_years,
            horizon_hours=args.horizon_hours,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    directories = args.scan or ["results", "benchmarks/baselines"]
    ledger = build_ledger(directories)
    if not ledger.entries:
        scanned = ", ".join(str(d) for d in directories)
        print(
            f"error: no run artifacts under {scanned} — run "
            "'repro-experiments --output <dir>' and/or 'repro-bench run' "
            "first, then point --scan at the output",
            file=sys.stderr,
        )
        return 2

    artifact, html = build_and_render(
        ledger,
        assumptions,
        title=args.title,
        fidelity_doc=_fallback_fidelity(ledger),
    )
    out = Path(args.out)
    try:
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(html)
    except OSError as exc:
        print(f"error: cannot write dashboard to {out}: {exc}", file=sys.stderr)
        return 1
    print(f"fleet dashboard: {out}")
    if args.artifact_dir != "":
        artifact_dir = args.artifact_dir or (out.parent if str(out.parent) else ".")
        try:
            artifact_path = write_fleet_artifact(artifact, artifact_dir)
        except OSError as exc:
            print(
                f"error: cannot write fleet artifact under {artifact_dir}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"fleet artifact: {artifact_path}")
    decision = artifact.get("decision", {})
    if decision.get("headline"):
        print(decision["headline"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
