"""Fleet run ledger: discover and index every on-disk observability artifact.

PRs 1–3 made each run write provenance-bearing artifacts — run manifests
(``repro.run-manifest/v1``), bench trajectory points (``repro.bench/v1``),
fidelity scoreboards (``repro.fidelity/v1``), per-experiment ``<id>.json``
result summaries, and JSONL event traces.  This module turns a pile of
those files (``results/``, ``benchmarks/baselines/``, CI artifact dumps…)
into one typed index — the *run ledger* — keyed by experiment, seed, and
environment fingerprint (via :mod:`repro.obs.envinfo`), which the fleet
aggregator (:mod:`repro.obs.fleet`) and the executive dashboard
(:mod:`repro.obs.execsummary`) consume.

Robustness contract: indexing never raises on artifact content.  Truncated
JSON, schema-version mismatches, duplicate run ids, and foreign files are
*skipped with a warning* (a ``ledger_skip`` trace event plus an entry in
:attr:`RunLedger.skipped`), because a fleet audit over months of artifacts
must not abort on one corrupt file.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from .bench import BENCH_SCHEMA, validate_artifact
from .envinfo import FINGERPRINT_KEYS
from .export import MANIFEST_SCHEMA
from .fidelity import FIDELITY_SCHEMA, validate_fidelity_artifact
from .trace import get_trace

__all__ = [
    "LEDGER_KINDS",
    "LedgerEntry",
    "SkippedFile",
    "RunLedger",
    "build_ledger",
    "ledger_with_live_results",
    "fingerprint_key",
]

#: Artifact families the ledger indexes, in the order they are reported.
LEDGER_KINDS = ("manifest", "result", "bench", "fidelity", "trace")


def fingerprint_key(env: Mapping[str, Any] | None) -> str | None:
    """Stable short digest of an environment fingerprint.

    Restricted to :data:`~repro.obs.envinfo.FINGERPRINT_KEYS` so every
    artifact family (which all embed the same fingerprint schema) maps to
    the same key, making "same machine?" a string comparison.
    """
    if not isinstance(env, Mapping) or not env:
        return None
    canonical = json.dumps(
        {k: env.get(k) for k in FINGERPRINT_KEYS},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _digest(doc: Any, length: int = 12) -> str:
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class LedgerEntry:
    """One indexed artifact."""

    run_id: str
    kind: str
    path: str
    created_utc: str | None
    seed: int | None
    experiment: str | None
    env_key: str | None
    doc: Mapping[str, Any]


@dataclass(frozen=True)
class SkippedFile:
    """One file the ledger refused to index, and why."""

    path: str
    reason: str


@dataclass(frozen=True)
class RunLedger:
    """Typed index over every discovered artifact (plus the rejects)."""

    entries: tuple[LedgerEntry, ...]
    skipped: tuple[SkippedFile, ...] = ()
    directories: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.entries)

    def of_kind(self, kind: str) -> tuple[LedgerEntry, ...]:
        return tuple(e for e in self.entries if e.kind == kind)

    @property
    def manifests(self) -> tuple[LedgerEntry, ...]:
        return self.of_kind("manifest")

    @property
    def results(self) -> tuple[LedgerEntry, ...]:
        return self.of_kind("result")

    def bench_docs(self) -> list[dict[str, Any]]:
        """BENCH documents sorted by creation time (the trend axis)."""
        docs = [dict(e.doc) for e in self.of_kind("bench")]
        return sorted(docs, key=lambda d: str(d.get("created_utc", "")))

    def fidelity_docs(self) -> list[dict[str, Any]]:
        """FIDELITY documents sorted by creation time (newest last)."""
        docs = [dict(e.doc) for e in self.of_kind("fidelity")]
        return sorted(docs, key=lambda d: str(d.get("created_utc", "")))

    def latest_results(self) -> dict[str, LedgerEntry]:
        """One result entry per experiment (first in scan order wins).

        Scan order follows the ``directories`` argument of
        :func:`build_ledger`, so callers put the authoritative results
        directory first.
        """
        out: dict[str, LedgerEntry] = {}
        for entry in self.results:
            if entry.experiment and entry.experiment not in out:
                out[entry.experiment] = entry
        return out

    def summaries(self) -> dict[str, dict[str, Any]]:
        """Experiment name -> summary mapping, from :meth:`latest_results`."""
        return {
            name: dict(entry.doc.get("summary") or {})
            for name, entry in self.latest_results().items()
        }

    @property
    def experiments(self) -> list[str]:
        return sorted({e.experiment for e in self.results if e.experiment})

    @property
    def seeds(self) -> list[int]:
        return sorted({e.seed for e in self.entries if e.seed is not None})

    def env_counts(self) -> Counter:
        """How many entries carry each environment fingerprint key."""
        return Counter(e.env_key for e in self.entries if e.env_key)

    def dominant_env_key(self) -> str | None:
        """The fingerprint key most entries share (ties break lexically)."""
        counts = self.env_counts()
        if not counts:
            return None
        best = max(counts.values())
        return sorted(k for k, n in counts.items() if n == best)[0]

    def key(self, entry: LedgerEntry) -> tuple[str | None, int | None, str | None]:
        """The (experiment, seed, environment) coordinate of an entry."""
        return (entry.experiment, entry.seed, entry.env_key)

    def counts(self) -> dict[str, int]:
        """Entries per kind, in :data:`LEDGER_KINDS` order."""
        return {kind: len(self.of_kind(kind)) for kind in LEDGER_KINDS}


def _to_int(value: Any) -> int | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    return None


def _classify(path: Path) -> tuple[LedgerEntry | None, str | None]:
    """Parse + type one file; returns ``(entry, skip_reason)``.

    ``FLEET_*.json`` dashboards are the *output* of this subsystem and are
    deliberately not re-ingested (reason returned, never a warning).
    """
    name = path.name
    if name.startswith("FLEET_"):
        return None, "fleet artifact (dashboard output, not an input)"
    if path.suffix == ".jsonl":
        events = 0
        kinds: Counter = Counter()
        try:
            for line in path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(doc, dict):
                    events += 1
                    kinds[str(doc.get("kind", "?"))] += 1
        except OSError as exc:
            return None, f"unreadable file: {exc}"
        if not events:
            return None, "no JSON events in JSONL file"
        doc = {"events": events, "kinds": dict(sorted(kinds.items()))}
        entry = LedgerEntry(
            run_id=f"trace:{path.stem}:{_digest(doc, 8)}",
            kind="trace",
            path=str(path),
            created_utc=None,
            seed=None,
            experiment=None,
            env_key=None,
            doc=doc,
        )
        return entry, None

    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        return None, f"unreadable file: {exc}"
    except json.JSONDecodeError as exc:
        return None, f"truncated or invalid JSON: {exc}"
    if not isinstance(doc, dict):
        return None, "not a JSON object"

    schema = doc.get("schema")
    if name == "run_manifest.json" or schema == MANIFEST_SCHEMA:
        if schema != MANIFEST_SCHEMA:
            return None, (
                f"schema-version mismatch: {schema!r} (want {MANIFEST_SCHEMA!r})"
            )
        # inputs_hash alone is not unique across runs (seed and environment
        # sit outside it), so fold in a digest of the whole document: true
        # byte-for-byte copies still dedup, distinct runs never collide.
        entry = LedgerEntry(
            run_id=(
                f"manifest:{str(doc.get('inputs_hash', ''))[:16]}:"
                f"{_digest(doc, 8)}"
            ),
            kind="manifest",
            path=str(path),
            created_utc=None,
            seed=_to_int(doc.get("seed")),
            experiment=None,
            env_key=fingerprint_key(doc.get("environment")),
            doc=doc,
        )
        return entry, None
    if name.startswith("BENCH_") or schema == BENCH_SCHEMA:
        try:
            validate_artifact(doc)
        except ValueError as exc:
            return None, f"schema-version mismatch: {exc}"
        entry = LedgerEntry(
            run_id=(
                f"bench:{doc.get('created_utc')}:{doc.get('git_sha')}:"
                f"{str(doc.get('inputs_hash', ''))[:8]}:{_digest(doc, 8)}"
            ),
            kind="bench",
            path=str(path),
            created_utc=str(doc.get("created_utc")),
            seed=None,
            experiment=None,
            env_key=fingerprint_key(doc.get("environment")),
            doc=doc,
        )
        return entry, None
    if name.startswith("FIDELITY_") or schema == FIDELITY_SCHEMA:
        try:
            validate_fidelity_artifact(doc)
        except ValueError as exc:
            return None, f"schema-version mismatch: {exc}"
        seed = None
        inputs = doc.get("inputs")
        if isinstance(inputs, Mapping):
            seed = _to_int(inputs.get("seed"))
        entry = LedgerEntry(
            run_id=(
                f"fidelity:{doc.get('created_utc')}:{doc.get('git_sha')}:"
                f"{_digest(doc, 8)}"
            ),
            kind="fidelity",
            path=str(path),
            created_utc=str(doc.get("created_utc")),
            seed=seed,
            experiment=None,
            env_key=fingerprint_key(doc.get("environment")),
            doc=doc,
        )
        return entry, None
    if isinstance(schema, str):
        return None, f"schema-version mismatch: unknown schema {schema!r}"
    if isinstance(doc.get("experiment"), str) and isinstance(
        doc.get("summary"), Mapping
    ):
        entry = LedgerEntry(
            run_id=f"result:{doc['experiment']}:{_digest(doc.get('summary'))}",
            kind="result",
            path=str(path),
            created_utc=None,
            seed=None,
            experiment=doc["experiment"],
            env_key=None,
            doc=doc,
        )
        return entry, None
    return None, "unrecognised JSON document (no schema, not a result summary)"


def _inherit_run_context(
    entries: list[LedgerEntry],
) -> list[LedgerEntry]:
    """Give context-free result/trace entries their directory's manifest.

    ``<id>.json`` result exports carry no seed or fingerprint of their own;
    the run manifest written next to them does.  Inheriting it makes the
    (experiment, seed, environment) ledger key total for directories
    produced by ``repro-experiments --output``.
    """
    manifest_by_dir: dict[str, LedgerEntry] = {}
    for entry in entries:
        if entry.kind == "manifest":
            manifest_by_dir.setdefault(str(Path(entry.path).parent), entry)
    if not manifest_by_dir:
        return entries
    out: list[LedgerEntry] = []
    for entry in entries:
        manifest = manifest_by_dir.get(str(Path(entry.path).parent))
        if (
            manifest is not None
            and entry.kind in ("result", "trace")
            and entry.env_key is None
        ):
            entry = LedgerEntry(
                run_id=entry.run_id,
                kind=entry.kind,
                path=entry.path,
                created_utc=entry.created_utc,
                seed=entry.seed if entry.seed is not None else manifest.seed,
                experiment=entry.experiment,
                env_key=manifest.env_key,
                doc=entry.doc,
            )
        out.append(entry)
    return out


def build_ledger(
    directories: Sequence[str | Path],
    *,
    trace=None,
) -> RunLedger:
    """Index every artifact under ``directories`` (recursive, fail-soft).

    Directory order matters: when several directories hold a result for
    the same experiment, the first-listed directory is authoritative
    (:meth:`RunLedger.latest_results`).  Missing directories are recorded
    in :attr:`RunLedger.skipped` rather than raised — the caller decides
    whether an empty ledger is an error.
    """
    trace = trace if trace is not None else get_trace()
    entries: list[LedgerEntry] = []
    skipped: list[SkippedFile] = []
    seen_paths: set[Path] = set()
    seen_ids: set[str] = set()
    for directory in directories:
        directory = Path(directory)
        if not directory.is_dir():
            skipped.append(SkippedFile(str(directory), "not a directory"))
            trace.warning(
                "ledger_skip", path=str(directory), reason="not a directory"
            )
            continue
        paths = sorted(
            p for pattern in ("*.json", "*.jsonl") for p in directory.rglob(pattern)
        )
        for path in paths:
            resolved = path.resolve()
            if resolved in seen_paths:
                continue
            seen_paths.add(resolved)
            entry, reason = _classify(path)
            if entry is None:
                assert reason is not None
                skipped.append(SkippedFile(str(path), reason))
                # Foreign-but-expected files (our own dashboards) skip
                # quietly; anything else warrants a trace warning.
                if not reason.startswith("fleet artifact"):
                    trace.warning("ledger_skip", path=str(path), reason=reason)
                continue
            if entry.run_id in seen_ids:
                reason = f"duplicate run id {entry.run_id}"
                skipped.append(SkippedFile(str(path), reason))
                trace.warning("ledger_skip", path=str(path), reason=reason)
                continue
            seen_ids.add(entry.run_id)
            entries.append(entry)
    entries = _inherit_run_context(entries)
    return RunLedger(
        entries=tuple(entries),
        skipped=tuple(skipped),
        directories=tuple(str(d) for d in directories),
    )


def ledger_with_live_results(
    ledger: RunLedger,
    summaries: Mapping[str, Mapping[str, Any]],
    *,
    seed: int | None = None,
    env: Mapping[str, Any] | None = None,
) -> RunLedger:
    """Prepend a live run's in-memory summaries to an on-disk ledger.

    Used by ``repro-experiments --fleet-out``: the run that just finished
    is authoritative over anything on disk, so its entries come first (the
    first entry per experiment wins aggregation).  A disk copy of the same
    summary — e.g. the export this very run just wrote — carries the same
    content-derived run id and is dropped as a duplicate, quietly.
    """
    live: list[LedgerEntry] = []
    for name in sorted(summaries):
        summary = summaries[name]
        live.append(
            LedgerEntry(
                run_id=f"result:{name}:{_digest(dict(summary))}",
                kind="result",
                path="<live-run>",
                created_utc=None,
                seed=seed,
                experiment=name,
                env_key=fingerprint_key(env),
                doc={"experiment": name, "summary": dict(summary)},
            )
        )
    live_ids = {e.run_id for e in live}
    kept = tuple(e for e in ledger.entries if e.run_id not in live_ids)
    return RunLedger(
        entries=tuple(live) + kept,
        skipped=ledger.skipped,
        directories=("<live-run>",) + ledger.directories,
    )
