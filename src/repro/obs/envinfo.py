"""Shared provenance helpers: environment fingerprint, git SHA, artifact paths.

Every provenance-bearing artifact this repo writes — run manifests
(``repro.run-manifest/v1``), bench trajectory points (``repro.bench/v1``),
and fidelity scoreboards (``repro.fidelity/v1``) — must be attributable to
a concrete environment and commit.  Keeping the fingerprint in one module
guarantees all three artifact families carry the *identical* schema
(:data:`FINGERPRINT_KEYS`), so cross-artifact joins ("was this FIDELITY
point recorded on the same box as that BENCH point?") are a dict
comparison, not a field-mapping exercise.
"""

from __future__ import annotations

import os
import platform
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = [
    "FINGERPRINT_KEYS",
    "environment_fingerprint",
    "detect_git_sha",
    "append_only_artifact_path",
]

#: Exact key set of :func:`environment_fingerprint` — artifact schema tests
#: assert against this, so extending the fingerprint is a one-line change
#: that every artifact family picks up at once.
FINGERPRINT_KEYS = (
    "python",
    "implementation",
    "platform",
    "machine",
    "cpu_count",
    "git_sha",
    "numpy",
    "scipy",
)


@lru_cache(maxsize=None)
def _git_sha(short: int) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", f"--short={short}", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=True,
        )
        return out.stdout.strip() or "nogit"
    except (OSError, subprocess.SubprocessError):
        return "nogit"


def detect_git_sha(short: int = 10) -> str:
    """Short git SHA of HEAD, or ``"nogit"`` outside a repository.

    Cached per process — HEAD does not move under a running tool, and the
    fingerprint is taken once per artifact.
    """
    return _git_sha(short)


def environment_fingerprint() -> dict[str, Any]:
    """Where a run happened: interpreter, platform, commit, numeric stack.

    Shared by run manifests, bench artifacts, and fidelity scoreboards so
    performance *and* accuracy numbers are always attributable to a
    concrete environment.  Keys are exactly :data:`FINGERPRINT_KEYS`.
    """
    fingerprint: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": detect_git_sha(),
    }
    for module in ("numpy", "scipy"):
        try:
            fingerprint[module] = __import__(module).__version__
        except Exception:  # pragma: no cover - numpy/scipy are baked in
            fingerprint[module] = None
    return fingerprint


def append_only_artifact_path(
    out_dir: str | Path, stem: str, suffix: str = ".json"
) -> Path:
    """First free ``<out_dir>/<stem><suffix>`` path, creating ``out_dir``.

    A same-day same-commit rerun gets a ``_2``/``_3``… serial rather than
    overwriting the earlier file — trajectory points (BENCH, FIDELITY) are
    append-only by contract.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{stem}{suffix}"
    serial = 1
    while path.exists():
        serial += 1
        path = out_dir / f"{stem}_{serial}{suffix}"
    return path
