"""Sliding-window threshold alarms over telemetry series.

Modeled on the threshold/alarm managers of OpenStack Neat: a host is
declared *overloaded* or *underloaded* when the windowed mean of a
utilization signal crosses a threshold, with two guards against flapping —

- **hysteresis**: the alarm clears at a separate ``clear`` threshold on
  the safe side of the firing threshold, so a signal oscillating around
  one level does not fire/clear every bucket;
- **debounce**: the breach must persist for ``debounce`` consecutive
  windows before the alarm fires.

Rules evaluate *post hoc* over the bucket series recorded by a
:class:`~repro.obs.timeseries.TelemetryBus` — a deterministic walk over
already-deterministic data, so alarm event streams inherit the repo's
bit-identity-across-``--jobs`` contract for free.  Events are emitted as
structured trace records and metrics-registry counters, and serialise as
``kind="alarm"`` documents into the ``repro.timeseries/v1`` JSONL stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.registry import get_registry
from repro.obs.timeseries import TIMESERIES_SCHEMA, TelemetryBus
from repro.obs.trace import get_trace

__all__ = ["AlarmRule", "AlarmEvent", "AlarmManager"]

_KINDS = ("overload", "underload")


@dataclass(frozen=True)
class AlarmRule:
    """One threshold rule against one telemetry series family.

    ``kind="overload"`` breaches when the windowed mean rises to
    ``threshold`` or above and clears once it falls below ``clear``;
    ``kind="underload"`` mirrors this downward.  ``clear`` defaults to
    ``threshold`` (no hysteresis band).  ``labels`` is a subset match:
    the rule applies to every series named ``series`` whose label set
    contains all the given pairs.
    """

    name: str
    series: str
    kind: str
    threshold: float
    clear: float | None = None
    window: int = 1
    debounce: int = 1
    labels: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alarm rule name must be non-empty")
        if self.kind not in _KINDS:
            raise ValueError(f"alarm kind must be one of {_KINDS}, got {self.kind!r}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1 buckets, got {self.window}")
        if self.debounce < 1:
            raise ValueError(f"debounce must be >= 1 windows, got {self.debounce}")
        clear = self.threshold if self.clear is None else self.clear
        if self.kind == "overload" and clear > self.threshold:
            raise ValueError(
                f"overload clear threshold {clear} must not exceed "
                f"firing threshold {self.threshold}"
            )
        if self.kind == "underload" and clear < self.threshold:
            raise ValueError(
                f"underload clear threshold {clear} must not undercut "
                f"firing threshold {self.threshold}"
            )

    @property
    def clear_threshold(self) -> float:
        return self.threshold if self.clear is None else self.clear

    def matches(self, name: str, labels: Mapping[str, str]) -> bool:
        if name != self.series:
            return False
        return all(labels.get(k) == v for k, v in self.labels.items())

    def _breaches(self, value: float) -> bool:
        if self.kind == "overload":
            return value >= self.threshold
        return value <= self.threshold

    def _clears(self, value: float) -> bool:
        if self.kind == "overload":
            return value < self.clear_threshold
        return value > self.clear_threshold


@dataclass(frozen=True)
class AlarmEvent:
    """One fire/clear transition at a virtual-time bucket boundary.

    ``state="open_at_exit"`` marks an alarm that was still firing when the
    run (or server) shut down — without it, an alarm whose clear never
    arrives vanishes from the record entirely (see
    :meth:`AlarmManager.open_alarms`).
    """

    rule: str
    kind: str
    state: str  # "fire" | "clear" | "open_at_exit"
    t: float
    value: float
    threshold: float
    series: str
    labels: Mapping[str, str]

    def to_doc(self) -> dict[str, Any]:
        return {
            "schema": TIMESERIES_SCHEMA,
            "kind": "alarm",
            "rule": self.rule,
            "alarm_kind": self.kind,
            "state": self.state,
            "t": round(self.t, 9),
            "value": round(self.value, 9),
            "threshold": self.threshold,
            "series": self.series,
            "labels": dict(self.labels),
        }


class AlarmManager:
    """Evaluate a rule set against a bus and emit structured events."""

    def __init__(self, rules: Iterable[AlarmRule]) -> None:
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate alarm rule names: {sorted(dupes)}")

    def evaluate(self, bus: TelemetryBus) -> list[AlarmEvent]:
        """Walk every rule over every matching series; returns events
        sorted by ``(t, rule, series-labels)`` — a deterministic order."""
        events: list[AlarmEvent] = []
        for rule in self.rules:
            for series in bus.series():
                labels = dict(series.labels)
                if not rule.matches(series.name, labels):
                    continue
                events.extend(self._walk(rule, series, labels)[0])
        events.sort(key=lambda e: (e.t, e.rule, e.series, sorted(e.labels.items())))
        return events

    def open_alarms(self, bus: TelemetryBus) -> list[AlarmEvent]:
        """Alarms still firing at the end of the recorded series.

        Returns one ``state="open_at_exit"`` event per (rule, series) pair
        whose last transition was a fire without a matching clear, stamped
        at the final bucket boundary.  Call at shutdown, after the last
        :meth:`evaluate`, so runs that end mid-incident leave a record in
        the trace and the run manifest instead of vanishing silently.
        """
        events: list[AlarmEvent] = []
        for rule in self.rules:
            for series in bus.series():
                labels = dict(series.labels)
                if not rule.matches(series.name, labels):
                    continue
                open_event = self._walk(rule, series, labels)[1]
                if open_event is not None:
                    events.append(open_event)
        events.sort(key=lambda e: (e.t, e.rule, e.series, sorted(e.labels.items())))
        return events

    @staticmethod
    def _window_means(values: list[float], window: int) -> list[float]:
        """Trailing-window means; windows shorter than ``window`` at the
        start average what exists so early breaches are not masked."""
        means = []
        running = 0.0
        for i, v in enumerate(values):
            running += v
            if i >= window:
                running -= values[i - window]
            means.append(running / min(i + 1, window))
        return means

    def _walk(
        self, rule: AlarmRule, series, labels
    ) -> tuple[list[AlarmEvent], AlarmEvent | None]:
        """Transitions for one (rule, series) pair, plus the open-at-exit
        event (``None`` unless the walk ends with the alarm still firing)."""
        values = series.values()
        if not values:
            return [], None
        means = self._window_means(values, rule.window)
        width = series.bucket_width
        events: list[AlarmEvent] = []
        firing = False
        streak = 0
        for i, mean in enumerate(means):
            t = (i + 1) * width  # decision lands at the bucket's end
            if not firing:
                streak = streak + 1 if rule._breaches(mean) else 0
                if streak >= rule.debounce:
                    firing = True
                    streak = 0
                    events.append(AlarmEvent(
                        rule=rule.name, kind=rule.kind, state="fire", t=t,
                        value=mean, threshold=rule.threshold,
                        series=series.name, labels=labels,
                    ))
            elif rule._clears(mean):
                firing = False
                events.append(AlarmEvent(
                    rule=rule.name, kind=rule.kind, state="clear", t=t,
                    value=mean, threshold=rule.clear_threshold,
                    series=series.name, labels=labels,
                ))
        open_event = None
        if firing:
            open_event = AlarmEvent(
                rule=rule.name, kind=rule.kind, state="open_at_exit",
                t=len(means) * width, value=means[-1],
                threshold=rule.threshold, series=series.name, labels=labels,
            )
        return events, open_event

    def emit(self, events: Iterable[AlarmEvent]) -> list[AlarmEvent]:
        """Publish events to the active trace log and metrics registry.

        Uses the *current* process-global instruments (not construct-time
        bound: alarm evaluation is a post-run analysis step, not a DES
        hot path).  Returns the events for chaining.
        """
        events = list(events)
        trace = get_trace()
        registry = get_registry()
        for event in events:
            if event.state == "open_at_exit":
                # Open-at-exit is a shutdown diagnostic, not a transition:
                # it gets a warning-kind event under a fixed name so log
                # scrapes for unresolved incidents have one thing to grep.
                trace.emit(
                    "alarm_open_at_exit",
                    kind="warning",
                    rule=event.rule,
                    alarm_kind=event.kind,
                    t=event.t,
                    value=round(event.value, 6),
                    threshold=event.threshold,
                    series=event.series,
                    **{f"label_{k}": v for k, v in sorted(event.labels.items())},
                )
            else:
                trace.emit(
                    event.rule,
                    kind="alarm",
                    alarm_kind=event.kind,
                    state=event.state,
                    t=event.t,
                    value=round(event.value, 6),
                    threshold=event.threshold,
                    series=event.series,
                    **{f"label_{k}": v for k, v in sorted(event.labels.items())},
                )
            registry.counter(
                "alarms_total",
                help="threshold alarm transitions",
                labels={"rule": event.rule, "state": event.state},
            ).inc()
        return events

    def summarize(self, events: Iterable[AlarmEvent]) -> dict[str, int]:
        """Count fires per alarm kind (+ clears, open-at-exit) — golden-pinnable."""
        counts = {
            "overload_fires": 0,
            "underload_fires": 0,
            "clears": 0,
            "open_at_exit": 0,
        }
        for event in events:
            if event.state == "clear":
                counts["clears"] += 1
            elif event.state == "open_at_exit":
                counts["open_at_exit"] += 1
            elif event.kind == "overload":
                counts["overload_fires"] += 1
            else:
                counts["underload_fires"] += 1
        return counts
