"""Structured event tracing with span support.

A :class:`TraceLog` is a bounded ring buffer of :class:`TraceEvent` records
— plain events, warnings, and span begin/end pairs — exportable as JSONL.
Like the metrics registry, the process-global default is a no-op
:class:`NullTraceLog`; install a real log with :func:`set_trace` or
:func:`scoped_trace`.

Timestamps come from the log's *clock*.  By default that is wall time
(``time.time``), but :meth:`TraceLog.attach_simulator` switches it to a
:class:`~repro.simulation.engine.Simulator`'s virtual clock so trace
records line up with simulated time — span durations are always measured
on the wall clock (``perf_counter``) since virtual time may stand still
inside a span.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "TraceEvent",
    "TraceLog",
    "NullTraceLog",
    "get_trace",
    "set_trace",
    "scoped_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    ts: float
    kind: str  # "event" | "warning" | "span_begin" | "span_end"
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        doc = {"ts": self.ts, "kind": self.kind, "name": self.name, **self.fields}
        return json.dumps(doc, sort_keys=True, default=str)


class TraceLog:
    """Ring-buffered structured event log."""

    enabled = True

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._dropped_by_kind: dict[str, int] = {}
        self._span_seq = 0
        self._clock = time.time

    # -- clock ----------------------------------------------------------------

    def attach_simulator(self, simulator) -> None:
        """Timestamp subsequent events with ``simulator.now`` (virtual time)."""
        self._clock = lambda: simulator.now

    def detach_clock(self) -> None:
        """Return to wall-clock timestamps."""
        self._clock = time.time

    @property
    def now(self) -> float:
        return self._clock()

    # -- recording ------------------------------------------------------------

    def emit(self, name: str, *, kind: str = "event", **fields: Any) -> TraceEvent:
        event = TraceEvent(ts=self._clock(), kind=kind, name=name, fields=fields)
        if len(self._events) == self.capacity:
            evicted = self._events[0].kind
            self._dropped_by_kind[evicted] = self._dropped_by_kind.get(evicted, 0) + 1
        self._events.append(event)
        self._emitted += 1
        return event

    def warning(self, name: str, **fields: Any) -> TraceEvent:
        return self.emit(name, kind="warning", **fields)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[dict[str, Any]]:
        """Record a ``span_begin``/``span_end`` pair around the block.

        Yields a mutable dict; keys added inside the block land on the
        ``span_end`` record (handy for result summaries).  The pair shares a
        ``span`` id so exporters can re-join them, and ``span_end`` carries
        the wall-clock ``duration_s``.
        """
        self._span_seq += 1
        span_id = self._span_seq
        self.emit(name, kind="span_begin", span=span_id, **fields)
        extra: dict[str, Any] = {}
        t0 = perf_counter()
        try:
            yield extra
        finally:
            self.emit(
                name,
                kind="span_end",
                span=span_id,
                duration_s=perf_counter() - t0,
                **{**fields, **extra},
            )

    # -- inspection / export --------------------------------------------------

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever recorded (>= len() once the ring wraps)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self._emitted - len(self._events)

    @property
    def dropped_by_kind(self) -> dict[str, int]:
        """Evicted-event counts broken down by record kind — makes silent
        ring-wrap data loss attributable (e.g. all ``span_end`` gone)."""
        return dict(self._dropped_by_kind)

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON document per line; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "")
        return path


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> dict[str, Any]:
        return {}

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTraceLog:
    """Disabled trace log: recording is a no-op, exports are empty."""

    enabled = False
    capacity = 0

    def attach_simulator(self, simulator) -> None:
        pass

    def detach_clock(self) -> None:
        pass

    def emit(self, name: str, *, kind: str = "event", **fields: Any) -> None:
        return None

    def warning(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> list[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    emitted = 0
    dropped = 0

    @property
    def dropped_by_kind(self) -> dict[str, int]:
        return {}

    def to_jsonl(self) -> str:
        return ""


_NULL_TRACE = NullTraceLog()
_default: TraceLog | NullTraceLog = _NULL_TRACE


def get_trace() -> TraceLog | NullTraceLog:
    """The process-global trace log (no-op unless observability is on)."""
    return _default


def set_trace(trace: TraceLog | NullTraceLog | None) -> TraceLog | NullTraceLog:
    """Install ``trace`` globally (``None`` -> the null log); returns previous."""
    global _default
    previous = _default
    _default = trace if trace is not None else _NULL_TRACE
    return previous


@contextmanager
def scoped_trace(trace: TraceLog | None = None) -> Iterator[TraceLog]:
    """Install a fresh (or given) trace log for the duration of the block."""
    log = trace if trace is not None else TraceLog()
    previous = set_trace(log)
    try:
        yield log
    finally:
        set_trace(previous)
