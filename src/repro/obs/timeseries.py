"""Virtual-time telemetry bus: bounded per-pool time-series recording.

Every other observability surface in this repo (metrics registry, trace
ring, BENCH/FIDELITY artifacts) reports *end-of-run* aggregates.  The
telemetry bus records how quantities evolve over **virtual time** inside a
DES run — occupancy, arrivals, admits, losses, busy servers, instantaneous
power — as fixed-interval, bounded-memory bucket series.  It is the
substrate for underload/overload detection (:mod:`repro.obs.alarms`) and
for the timeline charts in the HTML run report.

Design contract (the same construct-time binding as the metrics registry):

- the process-global default is a no-op :class:`NullTelemetryBus`;
  instrumented objects (the DES engine, :class:`~repro.simulation
  .loss_network.LossNetwork`, the dispatchers) check ``get_bus().enabled``
  **once at construction** and bind their series then, so the disabled hot
  path pays nothing (guarded by ``benchmarks/bench_obs_overhead.py``);
- recording is driven purely off the simulator's virtual clock and event
  order — never the wall clock — so telemetry is **bit-identical** across
  ``--jobs`` values at a fixed seed (the repo-wide determinism contract);
- every series is bounded: when a sample lands past ``max_buckets`` the
  series decimates 2× (adjacent buckets merge, the bucket width doubles)
  until it fits, so memory stays O(``max_buckets``) for any horizon.

Two aggregation kinds cover the quantities above:

- **counter** series (:meth:`CounterSeries.add`) accumulate event counts
  per bucket — arrivals, admits, losses, dispatcher picks, engine events;
- **gauge** series (:meth:`GaugeSeries.set`) integrate a piecewise-
  constant level over virtual time and export the per-bucket time-weighted
  mean — occupancy, busy servers, instantaneous power.

Serialisation is JSONL under schema ``repro.timeseries/v1``: one document
per line, ``kind`` either ``"series"`` or ``"alarm"`` (alarm documents are
produced by :mod:`repro.obs.alarms` and share the stream so one artifact
carries the full timeline).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "TIMESERIES_SCHEMA",
    "CounterSeries",
    "GaugeSeries",
    "TelemetryBus",
    "NullTelemetryBus",
    "get_bus",
    "set_bus",
    "scoped_bus",
    "validate_timeseries_doc",
    "load_timeseries_jsonl",
    "write_timeseries_jsonl",
]

TIMESERIES_SCHEMA = "repro.timeseries/v1"

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _SeriesBase:
    """Shared bucket bookkeeping: fixed width, bounded length, 2× decimation."""

    agg = "abstract"

    __slots__ = ("name", "labels", "bucket_width", "max_buckets", "_values",
                 "_decimations", "_inv_width")

    def __init__(self, name: str, labels: LabelSet, bucket_width: float,
                 max_buckets: int) -> None:
        if not name:
            raise ValueError("series name must be non-empty")
        if bucket_width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        if max_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {max_buckets}")
        self.name = name
        self.labels = labels
        self.bucket_width = float(bucket_width)
        self.max_buckets = int(max_buckets)
        self._inv_width = 1.0 / self.bucket_width
        self._values: list[float] = []
        self._decimations = 0

    # -- bucket plumbing -------------------------------------------------------

    def _decimate(self) -> None:
        """Merge adjacent bucket pairs; the bucket width doubles."""
        merged = [
            self._values[i] + (self._values[i + 1] if i + 1 < len(self._values) else 0.0)
            for i in range(0, len(self._values), 2)
        ]
        self._values = merged
        self.bucket_width *= 2.0
        self._inv_width = 1.0 / self.bucket_width
        self._decimations += 1

    def _bucket(self, t: float) -> int:
        """Bucket index for virtual time ``t``, decimating to stay bounded."""
        if t < 0.0:
            raise ValueError(f"virtual time must be non-negative, got {t}")
        idx = int(t / self.bucket_width)
        while idx >= self.max_buckets:
            self._decimate()
            idx = int(t / self.bucket_width)
        if idx >= len(self._values):
            self._values.extend([0.0] * (idx + 1 - len(self._values)))
        return idx

    @property
    def buckets(self) -> int:
        return len(self._values)

    @property
    def decimations(self) -> int:
        """How many 2× merges this series has absorbed."""
        return self._decimations

    # -- export ----------------------------------------------------------------

    def values(self) -> list[float]:
        """Per-bucket aggregate values (counter: sums; gauge: means)."""
        raise NotImplementedError

    def to_doc(self) -> dict[str, Any]:
        """One JSON-able ``kind="series"`` document."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "kind": "series",
            "series": self.name,
            "labels": dict(self.labels),
            "agg": self.agg,
            "t0": 0.0,
            "bucket_width": self.bucket_width,
            "buckets": len(self._values),
            "decimations": self._decimations,
            "values": [round(v, 9) for v in self.values()],
        }


class CounterSeries(_SeriesBase):
    """Per-bucket event counts (arrivals, losses, picks, engine events)."""

    agg = "counter"
    __slots__ = ()

    def add(self, t: float, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the bucket covering virtual time ``t``."""
        # This runs once per DES event on the engine's hot path; the common
        # case (bucket already exists) must stay cheap, so it skips the
        # decimate/extend machinery in _bucket.  Guarded by
        # benchmarks/bench_obs_overhead.py (telemetry within 15% of off).
        values = self._values
        idx = int(t * self._inv_width)
        if 0.0 <= t and idx < len(values):
            values[idx] += amount
        else:
            # _bucket may decimate, which rebinds _values — resolve the
            # list only after the index is final or the sample is lost.
            idx = self._bucket(t)
            self._values[idx] += amount

    @property
    def total(self) -> float:
        return sum(self._values)

    def values(self) -> list[float]:
        return list(self._values)


class GaugeSeries(_SeriesBase):
    """Time-weighted mean of a piecewise-constant level per bucket.

    Call :meth:`set` whenever the level changes (occupancy up/down, a
    capacity step); the previously-held level is integrated over the
    elapsed virtual time.  :meth:`finalize` extends the last level to the
    end of the run so trailing buckets close correctly.
    """

    agg = "gauge"
    __slots__ = ("_level", "_last_t", "_end")

    def __init__(self, name: str, labels: LabelSet, bucket_width: float,
                 max_buckets: int) -> None:
        super().__init__(name, labels, bucket_width, max_buckets)
        self._level = 0.0
        self._last_t = 0.0
        self._end = 0.0

    def set(self, t: float, level: float) -> None:
        """The signal becomes ``level`` at virtual time ``t``."""
        self._integrate(t)
        self._level = float(level)

    def finalize(self, t: float) -> None:
        """Integrate the held level through ``t`` (end of run)."""
        self._integrate(t)

    def _integrate(self, t: float) -> None:
        if t < self._last_t:
            raise ValueError(
                f"virtual time went backwards: {t} < {self._last_t}"
            )
        start, level = self._last_t, self._level
        self._last_t = t
        self._end = max(self._end, t)
        if level == 0.0 or t == start:
            # Still touch the bucket so the series spans the full horizon.
            if t > start:
                self._bucket(max(t - 1e-12, 0.0) if t else 0.0)
            return
        # Spread level * dt across the buckets the interval [start, t) covers.
        remaining = t
        lo = start
        while lo < remaining:
            idx = self._bucket(lo)
            bucket_end = (idx + 1) * self.bucket_width
            hi = min(bucket_end, remaining)
            self._values[idx] += level * (hi - lo)
            lo = hi

    @property
    def current(self) -> float:
        return self._level

    def values(self) -> list[float]:
        """Per-bucket time-weighted means (partial last bucket uses its
        covered span, so a short trailing bucket is not diluted)."""
        out = []
        for idx, area in enumerate(self._values):
            covered = min(self._end - idx * self.bucket_width, self.bucket_width)
            out.append(area / covered if covered > 0.0 else 0.0)
        return out


class TelemetryBus:
    """Get-or-create store of virtual-time series, keyed ``(name, labels)``.

    The bus carries a *virtual clock*: :meth:`attach_simulator` points
    :attr:`now` at a simulator's virtual time so instrumented objects that
    observe no explicit timestamp (the dispatchers) can still bucket their
    events on simulated time.  The default clock reads 0.0 — never the
    wall clock, which would break run-to-run bit-identity.
    """

    enabled = True

    def __init__(self, bucket_width: float = 1.0, max_buckets: int = 512) -> None:
        if bucket_width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        if max_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {max_buckets}")
        self.bucket_width = float(bucket_width)
        self.max_buckets = int(max_buckets)
        self._series: dict[tuple[str, LabelSet], _SeriesBase] = {}
        self._clock = lambda: 0.0

    # -- clock -----------------------------------------------------------------

    def attach_simulator(self, simulator) -> None:
        """Read :attr:`now` from ``simulator.now`` (virtual time)."""
        self._clock = lambda: simulator.now

    def detach_clock(self) -> None:
        self._clock = lambda: 0.0

    @property
    def now(self) -> float:
        return self._clock()

    # -- series factories ------------------------------------------------------

    def _get(self, cls, name: str, labels: Mapping[str, str] | None):
        key = (name, _labelset(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, key[1], self.bucket_width, self.max_buckets)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ValueError(
                f"series {name!r}{dict(key[1])} already registered as "
                f"{series.agg}, not {cls.agg}"
            )
        return series

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> CounterSeries:
        return self._get(CounterSeries, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> GaugeSeries:
        return self._get(GaugeSeries, name, labels)

    # -- lifecycle -------------------------------------------------------------

    def finalize(self, t: float) -> None:
        """Close every gauge's integral at virtual time ``t`` (end of run)."""
        for series in self._series.values():
            if isinstance(series, GaugeSeries):
                series.finalize(t)

    # -- inspection / export ---------------------------------------------------

    def series(self) -> list[_SeriesBase]:
        """All series, sorted by ``(name, labels)`` for deterministic export."""
        return [self._series[key] for key in sorted(self._series)]

    def __len__(self) -> int:
        return len(self._series)

    def to_docs(self) -> list[dict[str, Any]]:
        return [s.to_doc() for s in self.series()]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(doc, sort_keys=True) for doc in self.to_docs()
        )


class _NullSeries:
    """Accepts the full series API and does nothing."""

    __slots__ = ()
    name = "null"
    labels: LabelSet = ()
    agg = "null"
    bucket_width = 0.0
    buckets = 0
    decimations = 0
    total = 0.0
    current = 0.0

    def add(self, t: float, amount: float = 1.0) -> None:
        pass

    def set(self, t: float, level: float) -> None:
        pass

    def finalize(self, t: float) -> None:
        pass

    def values(self) -> list[float]:
        return []


_NULL_SERIES = _NullSeries()


class NullTelemetryBus:
    """Disabled bus: factories return the shared no-op series."""

    enabled = False
    bucket_width = 0.0
    max_buckets = 0
    now = 0.0

    def attach_simulator(self, simulator) -> None:
        pass

    def detach_clock(self) -> None:
        pass

    def counter(self, name: str, labels=None) -> _NullSeries:
        return _NULL_SERIES

    def gauge(self, name: str, labels=None) -> _NullSeries:
        return _NULL_SERIES

    def finalize(self, t: float) -> None:
        pass

    def series(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def to_docs(self) -> list[dict[str, Any]]:
        return []

    def to_jsonl(self) -> str:
        return ""


_NULL_BUS = NullTelemetryBus()
_default: TelemetryBus | NullTelemetryBus = _NULL_BUS


def get_bus() -> TelemetryBus | NullTelemetryBus:
    """The process-global telemetry bus (no-op unless telemetry is on)."""
    return _default


def set_bus(
    bus: TelemetryBus | NullTelemetryBus | None,
) -> TelemetryBus | NullTelemetryBus:
    """Install ``bus`` globally (``None`` -> the null bus); returns previous."""
    global _default
    previous = _default
    _default = bus if bus is not None else _NULL_BUS
    return previous


@contextmanager
def scoped_bus(bus: TelemetryBus | None = None) -> Iterator[TelemetryBus]:
    """Install a fresh (or given) bus for the duration of the block."""
    active = bus if bus is not None else TelemetryBus()
    previous = set_bus(active)
    try:
        yield active
    finally:
        set_bus(previous)


# -- JSONL schema helpers ----------------------------------------------------


def validate_timeseries_doc(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid v1 stream document."""
    if not isinstance(doc, Mapping):
        raise ValueError(f"timeseries document must be an object, got {type(doc)}")
    if doc.get("schema") != TIMESERIES_SCHEMA:
        raise ValueError(
            f"expected schema {TIMESERIES_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    kind = doc.get("kind")
    if kind == "series":
        for field, types in (
            ("series", str), ("labels", Mapping), ("agg", str),
            ("bucket_width", (int, float)), ("buckets", int), ("values", list),
        ):
            if not isinstance(doc.get(field), types):
                raise ValueError(f"series document field {field!r} missing or mistyped")
        if doc["agg"] not in ("counter", "gauge"):
            raise ValueError(f"unknown agg {doc['agg']!r}")
        if len(doc["values"]) != doc["buckets"]:
            raise ValueError(
                f"buckets={doc['buckets']} but {len(doc['values'])} values"
            )
        if doc["bucket_width"] <= 0:
            raise ValueError("bucket_width must be positive")
    elif kind == "alarm":
        for field, types in (
            ("rule", str), ("state", str), ("t", (int, float)),
            ("series", str), ("value", (int, float)), ("threshold", (int, float)),
        ):
            if not isinstance(doc.get(field), types):
                raise ValueError(f"alarm document field {field!r} missing or mistyped")
        if doc["state"] not in ("fire", "clear", "open_at_exit"):
            raise ValueError(f"unknown alarm state {doc['state']!r}")
    else:
        raise ValueError(f"unknown document kind {kind!r}")


def write_timeseries_jsonl(
    docs: Iterator[Mapping[str, Any]] | list, path: str | Path
) -> Path:
    """Validate and write one document per line; returns the path written."""
    docs = list(docs)
    for doc in docs:
        validate_timeseries_doc(doc)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(json.dumps(doc, sort_keys=True) for doc in docs)
    path.write_text(text + "\n" if text else "")
    return path


def load_timeseries_jsonl(
    path: str | Path,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Load a v1 stream; returns ``(series_docs, alarm_docs)``.

    Raises ``ValueError`` on any malformed line — a telemetry artifact is
    written atomically by one run, so partial validity means corruption.
    """
    series_docs: list[dict[str, Any]] = []
    alarm_docs: list[dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        validate_timeseries_doc(doc)
        (series_docs if doc["kind"] == "series" else alarm_docs).append(doc)
    return series_docs, alarm_docs
