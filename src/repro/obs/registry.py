"""Dependency-free metrics registry.

The observability layer's core contract is *zero cost when disabled*: the
process-global default registry is a :class:`NullRegistry` whose instrument
factories return shared no-op singletons, so instrumented hot loops (the
DES engine, the Erlang inversion) pay at most one boolean check per event.
Enabling observability means installing a real :class:`MetricsRegistry`
(via :func:`set_registry` or, for tests, the :func:`scoped_registry`
context manager) *before* the instrumented objects are constructed — they
capture their instruments at construction time.

Instruments follow the Prometheus vocabulary:

- :class:`Counter` — monotonically increasing total;
- :class:`Gauge` — instantaneous value that can go up and down;
- :class:`Histogram` — fixed log-spaced buckets (geometric bounds decided
  at construction), cumulative on export;
- :class:`Timer` — a histogram of seconds with a context-manager front end.

Instruments may carry labels (``registry.counter("picks_total",
labels={"backend": "2"})``); instruments of the same name form a family and
export together.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
]

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


def log_bucket_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Geometric upper bounds ``start * factor**i`` for ``i in [0, count)``."""
    if start <= 0.0:
        raise ValueError(f"bucket start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"bucket factor must exceed 1, got {factor}")
    if count < 1:
        raise ValueError(f"need at least one bucket, got {count}")
    return tuple(start * factor**i for i in range(count))


class Histogram:
    """Fixed log-bucket histogram (no per-observation allocation)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        start: float = 1e-6,
        factor: float = 4.0,
        buckets: int = 16,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = log_bucket_bounds(start, factor, buckets)
        self._counts = [0] * (len(self.bounds) + 1)  # last bucket = +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self._counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }


class _TimerContext:
    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.observe(perf_counter() - self._t0)


class Timer:
    """Histogram of elapsed seconds with a ``with`` front end.

    ``with registry.timer("solve_seconds"):`` or the explicit
    ``with registry.timer(...).time():`` both record one observation.
    """

    kind = "timer"
    __slots__ = ("name", "labels", "histogram", "_starts")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.histogram = Histogram(name, labels, start=1e-6, factor=4.0, buckets=16)
        self._starts: list[float] = []

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def time(self) -> _TimerContext:
        return _TimerContext(self)

    def __enter__(self) -> "Timer":
        self._starts.append(perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self.observe(perf_counter() - self._starts.pop())

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_seconds(self) -> float:
        return self.histogram.sum

    def snapshot(self) -> dict[str, float]:
        return self.histogram.snapshot()


class MetricsRegistry:
    """Get-or-create instrument store.

    Thread-safe for instrument *creation*; individual updates are plain
    Python arithmetic (atomic enough under the GIL for telemetry use).
    """

    enabled = True

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.Lock()
        # family name -> (kind, help, {labelset: instrument})
        self._families: dict[str, tuple[str, str, dict[LabelSet, object]]] = {}

    def _get(self, cls, name: str, help: str, labels: Mapping[str, str] | None, **kwargs):
        key = _labelset(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (cls.kind, help, {})
                self._families[name] = family
            kind, _, instruments = family
            if kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {kind}, not {cls.kind}"
                )
            instrument = instruments.get(key)
            if instrument is None:
                instrument = cls(name, key, **kwargs)
                instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        start: float = 1e-6,
        factor: float = 4.0,
        buckets: int = 16,
    ) -> Histogram:
        return self._get(
            Histogram, name, help, labels, start=start, factor=factor, buckets=buckets
        )

    def timer(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Timer:
        return self._get(Timer, name, help, labels)

    def families(self) -> Iterator[tuple[str, str, str, Sequence[object]]]:
        """Yield ``(name, kind, help, instruments)`` sorted by name."""
        with self._lock:
            items = sorted(self._families.items())
        for name, (kind, help, instruments) in items:
            yield name, kind, help, list(instruments.values())

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable state of every instrument (for run manifests)."""
        out: dict[str, object] = {}
        for name, kind, _help, instruments in self.families():
            entries = []
            for inst in instruments:
                entries.append(
                    {
                        "labels": dict(inst.labels),
                        "value": inst.snapshot(),
                    }
                )
            out[name] = {"kind": kind, "series": entries}
        return out


class _NullInstrument:
    """Accepts the full instrument API and does nothing."""

    __slots__ = ()
    name = "null"
    labels: LabelSet = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every factory returns the shared no-op instrument."""

    enabled = False
    name = "null"

    def counter(self, name: str, help: str = "", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labels=None, **kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str, help: str = "", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self):
        return iter(())

    def snapshot(self) -> dict[str, object]:
        return {}


_NULL_REGISTRY = NullRegistry()
_default: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-global registry (the no-op one unless observability is on)."""
    return _default


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` globally (``None`` -> the null registry).

    Returns the previously installed registry so callers can restore it.
    """
    global _default
    previous = _default
    _default = registry if registry is not None else _NULL_REGISTRY
    return previous


@contextmanager
def scoped_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install a fresh (or given) registry for the duration of the block.

    The test-isolation primitive: metrics recorded inside the block are
    invisible outside it, and the previous global registry is restored even
    on error.
    """
    reg = registry if registry is not None else MetricsRegistry("scoped")
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)
