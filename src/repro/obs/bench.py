"""Benchmark harness: registration, discovery, timing, and BENCH artifacts.

The repo has always *had* benchmarks (``benchmarks/bench_*.py``, one per
paper artifact) but no recorded performance trajectory — nothing compared
one commit's timings against another's.  This module closes that loop:

- :func:`bench` registers ad-hoc benchmark callables in-process;
- :func:`discover_suite` adapts the existing pytest-benchmark suites
  (``benchmarks/bench_*.py``) without pytest: a lightweight
  :class:`BenchmarkProxy` stands in for the ``benchmark`` fixture and the
  harness times the whole test function;
- :func:`run_specs` runs specs with warmup/repeat control, recording wall
  and CPU seconds per repeat plus a tracemalloc allocation pass.  Repeats
  use timeit-style calibrated inner iterations: each timed sample is a
  batch of calls sized to ``min_sample_s`` and reports the per-call
  average, which is what keeps sub-millisecond benchmarks comparable on
  noisy shared machines;
- :func:`build_artifact` / :func:`write_artifact` produce the
  ``BENCH_<YYYYMMDD>_<shortsha>.json`` document (schema ``repro.bench/v1``)
  that :mod:`repro.obs.compare` consumes.

Everything is stdlib-only; numpy is touched only indirectly by the
benchmarks themselves.  The ``repro-bench`` CLI front end lives in
:mod:`repro.obs.benchcli`.
"""

from __future__ import annotations

import importlib.util
import inspect
import math
import statistics
import sys
import tracemalloc
from dataclasses import dataclass, field
from datetime import datetime, timezone
from fnmatch import fnmatch
from functools import partial
from pathlib import Path
from time import perf_counter, process_time
from typing import Any, Callable, Iterable, Mapping, Sequence

from .envinfo import append_only_artifact_path, detect_git_sha, environment_fingerprint
from .export import inputs_hash
from .trace import get_trace

__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "BenchResult",
    "BenchmarkProxy",
    "bench",
    "registered_benchmarks",
    "clear_registry",
    "discover_suite",
    "select_specs",
    "run_specs",
    "build_artifact",
    "validate_artifact",
    "write_artifact",
    "detect_git_sha",
]

BENCH_SCHEMA = "repro.bench/v1"

#: Default location of the on-disk suite, relative to the repo root.
DEFAULT_BENCH_DIR = "benchmarks"


@dataclass(frozen=True)
class BenchSpec:
    """One runnable benchmark: a zero-argument callable plus identity."""

    name: str
    fn: Callable[[], Any]
    group: str = "default"
    source: str = "registered"


_REGISTRY: dict[str, BenchSpec] = {}


def bench(
    fn: Callable[[], Any] | None = None,
    *,
    name: str | None = None,
    group: str = "default",
):
    """Register a zero-argument callable as a benchmark.

    Usable bare (``@bench``) or with options (``@bench(group="erlang")``).
    Registered benchmarks run alongside the discovered on-disk suite in
    ``repro-bench run``.
    """

    def apply(f: Callable[[], Any]) -> Callable[[], Any]:
        spec = BenchSpec(name=name or f.__name__, fn=f, group=group)
        if spec.name in _REGISTRY:
            raise ValueError(f"benchmark {spec.name!r} already registered")
        _REGISTRY[spec.name] = spec
        return f

    return apply(fn) if fn is not None else apply


def registered_benchmarks() -> list[BenchSpec]:
    """Benchmarks registered via :func:`bench`, in registration order."""
    return list(_REGISTRY.values())


def clear_registry() -> None:
    """Drop all :func:`bench` registrations (test isolation hook)."""
    _REGISTRY.clear()


class BenchmarkProxy:
    """Minimal stand-in for the pytest-benchmark ``benchmark`` fixture.

    pytest-benchmark times the target itself over many rounds; here the
    harness times the *whole test function* instead, so the proxy just
    invokes the target once and hands back its return value (assertions in
    the benches keep guarding result shapes).
    """

    __slots__ = ("extra_info",)

    def __init__(self) -> None:
        self.extra_info: dict[str, Any] = {}

    def __call__(self, target: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        return target(*args, **kwargs)

    def pedantic(
        self,
        target: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
        setup: Callable[[], Any] | None = None,
    ) -> Any:
        if setup is not None:
            prepared = setup()
            if prepared is not None:
                args, kwargs = prepared
        return target(*args, **(kwargs or {}))


def _default_rng():
    # Mirrors the `rng` fixture in benchmarks/conftest.py.
    import numpy as np

    return np.random.default_rng(20090101)


_FIXTURES: dict[str, Callable[[], Any]] = {
    "benchmark": BenchmarkProxy,
    "rng": _default_rng,
}


def _call_with_fixtures(fn: Callable[..., Any], params: tuple[str, ...]) -> Any:
    return fn(**{p: _FIXTURES[p]() for p in params})


def _import_bench_module(path: Path):
    name = f"_repro_bench_{path.stem}"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib guard
        raise ImportError(f"cannot load benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        del sys.modules[name]
        raise
    return module


def _mark_group(fn: Callable[..., Any]) -> str | None:
    for mark in getattr(fn, "pytestmark", ()):
        if getattr(mark, "name", None) == "benchmark":
            group = mark.kwargs.get("group")
            if group:
                return str(group)
    return None


def discover_suite(
    bench_dir: str | Path = DEFAULT_BENCH_DIR, pattern: str = "bench_*.py"
) -> list[BenchSpec]:
    """Adapt the on-disk pytest-benchmark suite into :class:`BenchSpec` s.

    Imports every ``bench_*.py`` under ``bench_dir`` and wraps each
    ``test_*`` function whose only fixtures are ``benchmark``/``rng`` (the
    two the suite uses).  Names are ``<module>::<function>``; groups come
    from ``@pytest.mark.benchmark(group=...)`` when present, else the
    module stem.
    """
    bench_dir = Path(bench_dir)
    if not bench_dir.is_dir():
        raise FileNotFoundError(f"benchmark directory not found: {bench_dir}")
    specs: list[BenchSpec] = []
    for path in sorted(bench_dir.glob(pattern)):
        if path.stem == "conftest":
            continue
        module = _import_bench_module(path)
        for attr in sorted(vars(module)):
            if not attr.startswith("test_"):
                continue
            fn = getattr(module, attr)
            if not callable(fn) or getattr(fn, "__module__", None) != module.__name__:
                continue
            params = tuple(inspect.signature(fn).parameters)
            if any(p not in _FIXTURES for p in params):
                continue  # needs a fixture the adapter cannot supply
            specs.append(
                BenchSpec(
                    name=f"{path.stem}::{attr}",
                    fn=partial(_call_with_fixtures, fn, params),
                    group=_mark_group(fn) or path.stem,
                    source=str(path),
                )
            )
    return specs


def select_specs(
    specs: Iterable[BenchSpec], patterns: Sequence[str] | None
) -> list[BenchSpec]:
    """Filter specs by fnmatch patterns against name or group (None = all)."""
    specs = list(specs)
    if not patterns:
        return specs
    return [
        s
        for s in specs
        if any(fnmatch(s.name, p) or fnmatch(s.group, p) for p in patterns)
    ]


@dataclass
class BenchResult:
    """Timings for one benchmark: per-repeat wall/CPU seconds + allocations.

    ``wall_s``/``cpu_s`` entries are per-*call* seconds; when
    ``iterations > 1`` each entry is the average over one calibrated batch.
    """

    name: str
    group: str
    source: str
    wall_s: list[float] = field(default_factory=list)
    cpu_s: list[float] = field(default_factory=list)
    iterations: int = 1
    alloc_peak_bytes: int | None = None
    ok: bool = True
    error: str | None = None

    @property
    def wall_median(self) -> float | None:
        return statistics.median(self.wall_s) if self.wall_s else None

    @property
    def cpu_median(self) -> float | None:
        return statistics.median(self.cpu_s) if self.cpu_s else None


def _timing_doc(samples: list[float]) -> dict[str, Any]:
    if not samples:
        return {"repeats": [], "median": None, "min": None, "mean": None}
    return {
        "repeats": list(samples),
        "median": statistics.median(samples),
        "min": min(samples),
        "mean": statistics.fmean(samples),
    }


#: Cap on calibrated inner iterations per timed sample.
MAX_ITERATIONS = 1000

#: Calibration probe calls per benchmark (best one sizes the batch).
CALIBRATION_PROBES = 3


def run_specs(
    specs: Iterable[BenchSpec],
    *,
    warmup: int = 1,
    repeats: int = 5,
    min_sample_s: float = 0.1,
    track_allocations: bool = True,
    on_result: Callable[[BenchResult], None] | None = None,
) -> list[BenchResult]:
    """Run each spec ``warmup`` throwaway times then ``repeats`` timed times.

    When ``min_sample_s > 0`` the best of up to ``CALIBRATION_PROBES``
    probe calls sizes an inner-iteration batch so each timed sample lasts
    at least ``min_sample_s`` (capped at ``MAX_ITERATIONS`` calls);
    recorded values are per-call averages.
    Without batching, a sub-millisecond benchmark's sample is pure
    scheduler jitter.  Pass ``min_sample_s=0`` to time single calls.

    Allocation stats come from one extra pass under tracemalloc *after* the
    timed repeats, so tracer overhead never pollutes the timings.  A
    benchmark that raises is recorded as ``ok=False`` with the error message
    instead of aborting the run.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    if repeats < 1:
        raise ValueError(f"need at least one repeat, got {repeats}")
    if min_sample_s < 0.0:
        raise ValueError(f"min_sample_s must be non-negative, got {min_sample_s}")
    trace = get_trace()
    results: list[BenchResult] = []
    for spec in specs:
        result = BenchResult(name=spec.name, group=spec.group, source=spec.source)
        try:
            iterations = 1
            if min_sample_s > 0.0:
                # Calibration probes are extra, untimed warmup calls.  A
                # single probe can hit a scheduler hiccup and understate the
                # batch size badly, so take the best of up to three — and
                # stop early once two probes agree the function alone covers
                # min_sample_s (one slow probe might just be the hiccup).
                probe = math.inf
                for attempt in range(CALIBRATION_PROBES):
                    t0 = perf_counter()
                    spec.fn()
                    probe = min(probe, perf_counter() - t0)
                    if attempt >= 1 and probe >= min_sample_s:
                        break
                if probe < min_sample_s:
                    iterations = min(
                        MAX_ITERATIONS,
                        max(1, math.ceil(min_sample_s / max(probe, 1e-9))),
                    )
            result.iterations = iterations
            for _ in range(warmup):
                spec.fn()
            for _ in range(repeats):
                c0 = process_time()
                w0 = perf_counter()
                for _ in range(iterations):
                    spec.fn()
                result.wall_s.append((perf_counter() - w0) / iterations)
                result.cpu_s.append((process_time() - c0) / iterations)
            if track_allocations and not tracemalloc.is_tracing():
                tracemalloc.start()
                try:
                    spec.fn()
                    _, peak = tracemalloc.get_traced_memory()
                    result.alloc_peak_bytes = peak
                finally:
                    tracemalloc.stop()
        except Exception as exc:
            result.ok = False
            result.error = f"{type(exc).__name__}: {exc}"
        trace.emit(
            "bench",
            benchmark=spec.name,
            ok=result.ok,
            wall_median_s=result.wall_median,
        )
        if on_result is not None:
            on_result(result)
        results.append(result)
    return results


def _result_doc(result: BenchResult) -> dict[str, Any]:
    return {
        "name": result.name,
        "group": result.group,
        "source": result.source,
        "ok": result.ok,
        "error": result.error,
        "iterations": result.iterations,
        "wall_s": _timing_doc(result.wall_s),
        "cpu_s": _timing_doc(result.cpu_s),
        "alloc": {"peak_bytes": result.alloc_peak_bytes},
    }


def build_artifact(
    results: Sequence[BenchResult],
    *,
    warmup: int,
    repeats: int,
    selection: Sequence[str] = (),
    git_sha: str | None = None,
    created_utc: str | None = None,
) -> dict[str, Any]:
    """Assemble the ``repro.bench/v1`` artifact document."""
    # Imported lazily for the same circularity reason as export._model_version.
    from .. import __version__

    inputs = {
        "selection": list(selection),
        "warmup": warmup,
        "repeats": repeats,
        "benchmarks": [r.name for r in results],
    }
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": created_utc
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha if git_sha is not None else detect_git_sha(),
        "model_version": __version__,
        "environment": environment_fingerprint(),
        "warmup": warmup,
        "repeats": repeats,
        "selection": list(selection),
        "inputs_hash": inputs_hash(inputs),
        "benchmarks": [_result_doc(r) for r in results],
    }


def merge_artifacts(docs: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Pool the timed repeats of several same-suite artifacts into one.

    A baseline recorded from a single run inherits that run's ambient
    machine state; on a shared box the per-call medians can drift tens of
    percent between runs minutes apart.  Pooling the repeats of runs taken
    at different times centres the baseline's medians on typical
    conditions, so the comparison threshold absorbs drift instead of
    anchoring to one lucky (or unlucky) run.

    All artifacts must cover the same benchmark names.  Per benchmark the
    wall/CPU repeats are concatenated and their median/min/mean recomputed;
    the allocation peak is the max across runs.  A benchmark that failed in
    any artifact stays failed in the merge.
    """
    if not docs:
        raise ValueError("need at least one artifact to merge")
    for doc in docs:
        validate_artifact(doc)
    first = docs[0]
    names = [e["name"] for e in first["benchmarks"]]
    for doc in docs[1:]:
        other = [e["name"] for e in doc["benchmarks"]]
        if sorted(other) != sorted(names):
            raise ValueError(
                "artifacts cover different benchmarks; "
                f"cannot merge {sorted(set(names) ^ set(other))}"
            )
    by_name = [{e["name"]: e for e in doc["benchmarks"]} for doc in docs]
    merged_entries = []
    for name in names:
        entries = [m[name] for m in by_name]
        base = dict(entries[0])
        failed = [e for e in entries if not e["ok"]]
        if failed:
            base.update(ok=False, error=failed[0]["error"])
        else:
            for key in ("wall_s", "cpu_s"):
                pooled: list[float] = []
                for e in entries:
                    pooled.extend(e[key]["repeats"])
                base[key] = _timing_doc(pooled)
            base["iterations"] = max(e["iterations"] for e in entries)
            peaks = [
                e["alloc"]["peak_bytes"]
                for e in entries
                if e["alloc"]["peak_bytes"] is not None
            ]
            base["alloc"] = {"peak_bytes": max(peaks) if peaks else None}
        merged_entries.append(base)
    shas = {doc["git_sha"] for doc in docs}
    repeats = sum(doc.get("repeats", 0) for doc in docs)
    selection = list(first.get("selection", []))
    warmup = first.get("warmup", 0)
    inputs = {
        "selection": selection,
        "warmup": warmup,
        "repeats": repeats,
        "benchmarks": names,
    }
    merged = dict(first)
    merged.update(
        created_utc=max(doc["created_utc"] for doc in docs),
        git_sha=shas.pop() if len(shas) == 1 else "mixed",
        warmup=warmup,
        repeats=repeats,
        selection=selection,
        inputs_hash=inputs_hash(inputs),
        benchmarks=merged_entries,
    )
    return merged


def validate_artifact(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed bench artifact."""
    if not isinstance(doc, Mapping):
        raise ValueError("bench artifact must be a JSON object")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"unexpected schema {schema!r} (want {BENCH_SCHEMA!r})")
    for key in ("created_utc", "git_sha", "environment", "benchmarks", "inputs_hash"):
        if key not in doc:
            raise ValueError(f"bench artifact missing {key!r}")
    if not isinstance(doc["benchmarks"], list):
        raise ValueError("bench artifact 'benchmarks' must be a list")
    for entry in doc["benchmarks"]:
        for key in ("name", "ok", "wall_s", "cpu_s"):
            if key not in entry:
                raise ValueError(f"benchmark entry missing {key!r}: {entry}")


def write_artifact(doc: Mapping[str, Any], out_dir: str | Path = ".") -> Path:
    """Write ``doc`` as ``BENCH_<YYYYMMDD>_<shortsha>.json`` under ``out_dir``.

    A same-day same-commit rerun gets a ``_2``/``_3``… suffix rather than
    overwriting the earlier artifact — trajectory points are append-only.
    """
    import json

    validate_artifact(doc)
    day = str(doc["created_utc"])[:10].replace("-", "")
    path = append_only_artifact_path(out_dir, f"BENCH_{day}_{doc['git_sha']}")
    path.write_text(json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n")
    return path
