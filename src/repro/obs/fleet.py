"""Fleet-level cost/energy/carbon aggregation over the run ledger.

The paper's deliverable is a *decision*: dedicated vs. consolidated
deployment, judged on servers, power, and loss probability.  This module
turns the per-run artifacts indexed by :mod:`repro.obs.ledger` into that
decision at fleet scale — projecting the metered Group-2 power figures
(Figs. 12/13) and the analytic plan (Table I utilizations through the
Eq. 12–14 linear power model) over an audit horizon, and pricing the
difference in dollars and kilograms of CO₂ under **explicit, recorded
assumptions** (electricity price, grid carbon intensity, amortized server
capex).  Nothing here re-runs an experiment; it is pure aggregation.

Three scenarios are compared:

- ``dedicated``     — the metered 8-server native-Linux fleet (Fig. 12);
- ``consolidated``  — the metered 4-server Xen fleet (Fig. 12);
- ``projected``     — what the *analytic* model alone (Table I server
  counts, Fig. 11 utilizations, the linear power model) predicts for the
  consolidated fleet — i.e. the pre-deployment estimate, without the
  measured Xen platform effects.

The aggregate serialises as an append-only, schema-versioned
``FLEET_<date>_<sha>.json`` artifact (``repro.fleet/v1``), the
machine-readable companion of the executive HTML dashboard
(:mod:`repro.obs.execsummary`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from .envinfo import (
    append_only_artifact_path,
    detect_git_sha,
    environment_fingerprint,
)
from .export import inputs_hash
from .ledger import RunLedger
from .trace import get_trace

__all__ = [
    "FLEET_SCHEMA",
    "HOURS_PER_YEAR",
    "AuditAssumptions",
    "ScenarioCost",
    "scenario_costs",
    "scenario_deltas",
    "per_experiment_fidelity",
    "bench_trend",
    "build_fleet_summary",
    "build_fleet_artifact",
    "validate_fleet_artifact",
    "write_fleet_artifact",
    "load_fleet_artifact",
]

FLEET_SCHEMA = "repro.fleet/v1"

#: Mean Gregorian year — the default audit horizon.
HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class AuditAssumptions:
    """Explicit price/carbon/capex inputs behind every dollar in the audit.

    Defaults are deliberately round, documented figures (≈US industrial
    electricity price, ≈world-average grid intensity, a commodity 2-socket
    server amortized over four years); every one of them is recorded in
    the ``FLEET_*.json`` artifact and the run manifest, so two dashboards
    built from the same runs with different prices are distinguishable.
    """

    price_usd_per_kwh: float = 0.12
    carbon_g_per_kwh: float = 400.0
    server_capex_usd: float = 2500.0
    server_lifetime_years: float = 4.0
    horizon_hours: float = HOURS_PER_YEAR

    def __post_init__(self) -> None:
        for name in ("price_usd_per_kwh", "carbon_g_per_kwh", "server_capex_usd"):
            if getattr(self, name) < 0.0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        for name in ("server_lifetime_years", "horizon_hours"):
            if not getattr(self, name) > 0.0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )

    def as_dict(self) -> dict[str, float]:
        return {
            "price_usd_per_kwh": self.price_usd_per_kwh,
            "carbon_g_per_kwh": self.carbon_g_per_kwh,
            "server_capex_usd": self.server_capex_usd,
            "server_lifetime_years": self.server_lifetime_years,
            "horizon_hours": self.horizon_hours,
        }

    @classmethod
    def from_mapping(cls, doc: Mapping[str, Any] | None) -> "AuditAssumptions":
        if not doc:
            return cls()
        known = {
            k: float(doc[k])
            for k in (
                "price_usd_per_kwh",
                "carbon_g_per_kwh",
                "server_capex_usd",
                "server_lifetime_years",
                "horizon_hours",
            )
            if doc.get(k) is not None
        }
        return cls(**known)


@dataclass(frozen=True)
class ScenarioCost:
    """One deployment scenario priced over the audit horizon."""

    name: str
    servers: int
    mean_power_w: float
    energy_kwh: float
    energy_cost_usd: float
    capex_usd: float
    total_cost_usd: float
    carbon_kg: float
    source: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "servers": self.servers,
            "mean_power_w": round(self.mean_power_w, 1),
            "energy_kwh": round(self.energy_kwh, 1),
            "energy_cost_usd": round(self.energy_cost_usd, 2),
            "capex_usd": round(self.capex_usd, 2),
            "total_cost_usd": round(self.total_cost_usd, 2),
            "carbon_kg": round(self.carbon_kg, 1),
            "source": self.source,
        }


def _price_scenario(
    name: str,
    servers: int,
    mean_power_w: float,
    assumptions: AuditAssumptions,
    source: str,
) -> ScenarioCost:
    """Steady-state draw × horizon, priced under the audit assumptions."""
    energy_kwh = mean_power_w * assumptions.horizon_hours / 1000.0
    energy_cost = energy_kwh * assumptions.price_usd_per_kwh
    # Capex amortizes linearly over the server lifetime; the horizon's
    # share is what this audit window actually consumes.
    capex = (
        servers
        * assumptions.server_capex_usd
        * (assumptions.horizon_hours / HOURS_PER_YEAR)
        / assumptions.server_lifetime_years
    )
    return ScenarioCost(
        name=name,
        servers=servers,
        mean_power_w=mean_power_w,
        energy_kwh=energy_kwh,
        energy_cost_usd=energy_cost,
        capex_usd=capex,
        total_cost_usd=energy_cost + capex,
        carbon_kg=energy_kwh * assumptions.carbon_g_per_kwh / 1000.0,
        source=source,
    )


def _measured_scenarios(
    summaries: Mapping[str, Mapping[str, Any]],
    assumptions: AuditAssumptions,
    notes: list[str],
) -> dict[str, ScenarioCost]:
    """Dedicated/consolidated fleets from the Fig. 12 energy summary."""
    fig12 = summaries.get("fig12")
    if not fig12:
        notes.append("no fig12 summary in the ledger — measured fleets omitted")
        return {}
    required = (
        "dedicated_servers",
        "consolidated_servers",
        "dedicated_mean_power_W",
        "consolidated_mean_power_W",
    )
    missing = [k for k in required if not isinstance(fig12.get(k), (int, float))]
    if missing:
        notes.append(
            "fig12 summary predates the energy fields "
            f"({', '.join(missing)}) — regenerate it; measured fleets omitted"
        )
        return {}
    return {
        "dedicated": _price_scenario(
            "dedicated",
            int(fig12["dedicated_servers"]),
            float(fig12["dedicated_mean_power_W"]),
            assumptions,
            "measured (fig12, 8 native-Linux servers)",
        ),
        "consolidated": _price_scenario(
            "consolidated",
            int(fig12["consolidated_servers"]),
            float(fig12["consolidated_mean_power_W"]),
            assumptions,
            "measured (fig12, 4 consolidated Xen servers)",
        ),
    }


def _projected_scenario(
    summaries: Mapping[str, Mapping[str, Any]],
    assumptions: AuditAssumptions,
    notes: list[str],
) -> ScenarioCost | None:
    """Pre-deployment analytic estimate via the linear power model.

    Table I supplies the consolidated server count, Fig. 11 the measured
    CPU utilization the consolidated fleet settles at, and Eq. 12–14's
    ``P(u) = S_base + (S_max − S_base)·u`` turns that into watts — the
    number a capacity planner would have quoted *before* racking Xen.
    """
    fig11 = summaries.get("fig11")
    table1 = summaries.get("table1")
    servers = None
    if table1 and isinstance(table1.get("group2_N"), int):
        servers = table1["group2_N"]
    elif fig11 and isinstance(fig11.get("model_predicted_N"), int):
        servers = fig11["model_predicted_N"]
    util = None
    if fig11 and isinstance(fig11.get("consolidated_cpu_util"), (int, float)):
        util = float(fig11["consolidated_cpu_util"])
    if servers is None or util is None:
        notes.append(
            "no table1/fig11 summaries with server count and utilization — "
            "projected (analytic) fleet omitted"
        )
        return None
    # Imported lazily: repro/__init__ imports repro.obs, so a module-level
    # import of the model layer here would be circular.
    from ..core.power import ServerPowerModel

    model = ServerPowerModel()
    return _price_scenario(
        "projected",
        int(servers),
        servers * model.draw(min(max(util, 0.0), 1.0)),
        assumptions,
        f"analytic (table1 N={servers}, fig11 u={util:.3f}, "
        f"P(u)={model.base_watts:g}+{model.max_watts - model.base_watts:g}u W)",
    )


def scenario_costs(
    summaries: Mapping[str, Mapping[str, Any]],
    assumptions: AuditAssumptions | None = None,
    notes: list[str] | None = None,
) -> dict[str, ScenarioCost]:
    """All derivable scenarios from a set of experiment summaries."""
    assumptions = assumptions or AuditAssumptions()
    notes = notes if notes is not None else []
    scenarios = _measured_scenarios(summaries, assumptions, notes)
    projected = _projected_scenario(summaries, assumptions, notes)
    if projected is not None:
        scenarios["projected"] = projected
    return scenarios


def scenario_deltas(
    scenarios: Mapping[str, ScenarioCost]
) -> dict[str, dict[str, Any]]:
    """Pairwise savings of each alternative against the dedicated fleet.

    Positive numbers mean the alternative is cheaper/leaner.  The
    consolidated-vs-projected pair is included when both exist — it is the
    measured platform effect the analytic model cannot see.
    """
    pairs = [
        ("consolidated_vs_dedicated", "dedicated", "consolidated"),
        ("projected_vs_dedicated", "dedicated", "projected"),
        ("consolidated_vs_projected", "projected", "consolidated"),
    ]
    out: dict[str, dict[str, Any]] = {}
    for label, base_name, alt_name in pairs:
        base, alt = scenarios.get(base_name), scenarios.get(alt_name)
        if base is None or alt is None:
            continue
        out[label] = {
            "baseline": base_name,
            "alternative": alt_name,
            "servers_saved": base.servers - alt.servers,
            "power_saved_w": round(base.mean_power_w - alt.mean_power_w, 1),
            "energy_saved_kwh": round(base.energy_kwh - alt.energy_kwh, 1),
            "cost_saved_usd": round(base.total_cost_usd - alt.total_cost_usd, 2),
            "carbon_saved_kg": round(base.carbon_kg - alt.carbon_kg, 1),
            "cost_saved_fraction": (
                round(1.0 - alt.total_cost_usd / base.total_cost_usd, 4)
                if base.total_cost_usd
                else None
            ),
        }
    return out


def per_experiment_fidelity(
    fidelity_doc: Mapping[str, Any] | None
) -> dict[str, dict[str, Any]]:
    """Fold a fidelity artifact into a per-experiment verdict grid."""
    if not fidelity_doc:
        return {}
    grid: dict[str, dict[str, Any]] = {}
    for verdict in fidelity_doc.get("verdicts", []):
        name = verdict.get("experiment", "?")
        cell = grid.setdefault(
            name, {"match": 0, "drift": 0, "fail": 0, "overall": "match"}
        )
        kind = verdict.get("verdict")
        if kind in ("match", "drift", "fail"):
            cell[kind] += 1
    for cell in grid.values():
        cell["overall"] = (
            "fail" if cell["fail"] else ("drift" if cell["drift"] else "match")
        )
    return dict(sorted(grid.items()))


def bench_trend(bench_docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-benchmark median series across the ledger's time axis."""
    series: dict[str, list[float]] = {}
    axis: list[str] = []
    for doc in bench_docs:
        axis.append(str(doc.get("created_utc", "?")))
        for entry in doc.get("benchmarks", []):
            if entry.get("ok"):
                median = (entry.get("wall_s") or {}).get("median")
                if median is not None:
                    series.setdefault(entry["name"], []).append(float(median))
    return {
        "points": len(bench_docs),
        "created_utc": axis,
        "median_wall_s": {name: vals for name, vals in sorted(series.items())},
    }


def _decision(
    scenarios: Mapping[str, ScenarioCost],
    deltas: Mapping[str, Mapping[str, Any]],
    assumptions: AuditAssumptions,
) -> dict[str, Any]:
    """The executive verdict: which fleet to run, and what it buys."""
    delta = deltas.get("consolidated_vs_dedicated")
    if delta is None:
        return {
            "recommendation": None,
            "headline": "insufficient data: need fig12 energy summaries for "
            "both fleets to make a consolidation decision",
        }
    cheaper = delta["cost_saved_usd"] >= 0.0
    recommendation = "consolidated" if cheaper else "dedicated"
    frac = delta.get("cost_saved_fraction")
    pct = f"{100.0 * frac:.1f}%" if isinstance(frac, float) else "?"
    horizon_years = assumptions.horizon_hours / HOURS_PER_YEAR
    headline = (
        f"{'Consolidate' if cheaper else 'Stay dedicated'}: "
        f"{delta['servers_saved']} server(s), "
        f"{delta['energy_saved_kwh']:,.0f} kWh, "
        f"${delta['cost_saved_usd']:,.2f} ({pct} of fleet cost) and "
        f"{delta['carbon_saved_kg']:,.0f} kgCO2 saved over "
        f"{horizon_years:.2g} year(s) at "
        f"${assumptions.price_usd_per_kwh:g}/kWh, "
        f"{assumptions.carbon_g_per_kwh:g} gCO2/kWh."
    )
    return {"recommendation": recommendation, "headline": headline}


def build_fleet_summary(
    ledger: RunLedger,
    assumptions: AuditAssumptions | None = None,
    *,
    fidelity_doc: Mapping[str, Any] | None = None,
    trace=None,
) -> dict[str, Any]:
    """Aggregate a ledger into the decision document body.

    Result entries whose environment fingerprint differs from the ledger's
    dominant one are **excluded with a warning** (a ``fleet_env_mismatch``
    trace event), never fatal — mixing power numbers metered on different
    machines would silently corrupt the audit.  ``fidelity_doc`` defaults
    to the newest FIDELITY artifact in the ledger.
    """
    assumptions = assumptions or AuditAssumptions()
    trace = trace if trace is not None else get_trace()
    notes: list[str] = []
    dominant = ledger.dominant_env_key()
    excluded: list[dict[str, str]] = []
    summaries: dict[str, dict[str, Any]] = {}
    for name, entry in ledger.latest_results().items():
        if dominant and entry.env_key and entry.env_key != dominant:
            reason = (
                f"environment fingerprint {entry.env_key} differs from the "
                f"ledger's dominant {dominant}"
            )
            excluded.append({"experiment": name, "path": entry.path, "reason": reason})
            trace.warning("fleet_env_mismatch", path=entry.path, reason=reason)
            continue
        summaries[name] = dict(entry.doc.get("summary") or {})
    if excluded:
        notes.append(
            f"{len(excluded)} result(s) excluded for mixed environment "
            "fingerprints (see 'excluded')"
        )
    scenarios = scenario_costs(summaries, assumptions, notes)
    deltas = scenario_deltas(scenarios)
    if fidelity_doc is None:
        docs = ledger.fidelity_docs()
        fidelity_doc = docs[-1] if docs else None
    fidelity = {
        "overall": fidelity_doc.get("overall") if fidelity_doc else None,
        "counts": dict(fidelity_doc.get("counts", {})) if fidelity_doc else {},
        "per_experiment": per_experiment_fidelity(fidelity_doc),
    }
    return {
        "assumptions": assumptions.as_dict(),
        "scenarios": {k: v.as_dict() for k, v in scenarios.items()},
        "deltas": deltas,
        "decision": _decision(scenarios, deltas, assumptions),
        "fidelity": fidelity,
        "bench": bench_trend(ledger.bench_docs()),
        "experiments": ledger.experiments,
        "seeds": ledger.seeds,
        "environments": len(ledger.env_counts()) or (1 if ledger.entries else 0),
        "excluded": excluded,
        "notes": notes,
    }


# -- artifact ------------------------------------------------------------------


def build_fleet_artifact(
    summary: Mapping[str, Any],
    ledger: RunLedger,
    *,
    git_sha: str | None = None,
    created_utc: str | None = None,
) -> dict[str, Any]:
    """Wrap a fleet summary in the ``repro.fleet/v1`` provenance envelope.

    ``inputs_hash`` covers the indexed run ids only — *not* the price
    assumptions — so two dashboards over the same runs share a hash and
    differ visibly in their ``assumptions`` block.
    """
    from .. import __version__

    run_ids = sorted(e.run_id for e in ledger.entries)
    doc: dict[str, Any] = {
        "schema": FLEET_SCHEMA,
        "created_utc": created_utc
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha if git_sha is not None else detect_git_sha(),
        "model_version": __version__,
        "environment": environment_fingerprint(),
        "inputs_hash": inputs_hash({"runs": run_ids}),
        "ledger": {
            "directories": list(ledger.directories),
            "counts": ledger.counts(),
            "runs": run_ids,
            "skipped": [
                {"path": s.path, "reason": s.reason} for s in ledger.skipped
            ],
        },
    }
    doc.update(dict(summary))
    return doc


def validate_fleet_artifact(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed fleet artifact."""
    if not isinstance(doc, Mapping):
        raise ValueError("fleet artifact must be a JSON object")
    schema = doc.get("schema")
    if schema != FLEET_SCHEMA:
        raise ValueError(f"unexpected schema {schema!r} (want {FLEET_SCHEMA!r})")
    for key in (
        "created_utc",
        "git_sha",
        "environment",
        "inputs_hash",
        "assumptions",
        "scenarios",
        "deltas",
        "decision",
        "ledger",
    ):
        if key not in doc:
            raise ValueError(f"fleet artifact missing {key!r}")
    if not isinstance(doc["scenarios"], Mapping):
        raise ValueError("fleet artifact 'scenarios' must be an object")
    for name, scenario in doc["scenarios"].items():
        for key in ("servers", "mean_power_w", "energy_kwh", "total_cost_usd",
                    "carbon_kg"):
            if key not in scenario:
                raise ValueError(f"scenario {name!r} missing {key!r}")
    assumptions = doc["assumptions"]
    for key in ("price_usd_per_kwh", "carbon_g_per_kwh", "server_capex_usd"):
        if key not in assumptions:
            raise ValueError(f"fleet artifact assumptions missing {key!r}")


def write_fleet_artifact(doc: Mapping[str, Any], out_dir: str | Path = ".") -> Path:
    """Write ``doc`` as ``FLEET_<YYYYMMDD>_<shortsha>.json`` (append-only)."""
    validate_fleet_artifact(doc)
    day = str(doc["created_utc"])[:10].replace("-", "")
    path = append_only_artifact_path(out_dir, f"FLEET_{day}_{doc['git_sha']}")
    path.write_text(json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n")
    return path


def load_fleet_artifact(path: str | Path) -> dict[str, Any]:
    """Load and validate a ``FLEET_*.json`` artifact."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"no such fleet artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON in {path}: {exc}") from exc
    try:
        validate_fleet_artifact(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc
