"""Shared building blocks for the self-contained HTML reports.

Both report generators — the per-run report (:mod:`repro.obs.report`) and
the fleet dashboard (:mod:`repro.obs.execsummary`) — emit dependency-free
HTML: no JavaScript, no external assets, figures as inline SVG.  This
module holds the pieces they share (stylesheet, escaping, tables, badges,
sparklines, the page shell) so the two documents stay visually and
structurally consistent, and so the "self-contained" contract is tested in
one place.
"""

from __future__ import annotations

import html as _html
from typing import Any, Mapping, Sequence

__all__ = [
    "CSS",
    "esc",
    "fmt_value",
    "badge",
    "table",
    "kv_table",
    "sparkline",
    "timeline_chart",
    "page",
]

CSS = """
body { font-family: -apple-system, "Segoe UI", Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 70em; padding: 0 1em; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #bbb; padding-bottom: .15em; }
table { border-collapse: collapse; margin: .8em 0; font-size: .92em; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
th { background: #f0f0f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.badge { display: inline-block; padding: .05em .55em; border-radius: .8em;
         font-size: .85em; font-weight: 600; color: #fff; }
.badge-match { background: #1a7f37; }
.badge-drift { background: #b58900; }
.badge-fail { background: #c0392b; }
.badge-regression { background: #c0392b; }
.badge-improvement { background: #1a7f37; }
.badge-consolidated { background: #1a7f37; }
.badge-dedicated { background: #b58900; }
.badge-unchanged, .badge-added, .badge-removed, .badge-error,
.badge-skipped, .badge-info { background: #6c757d; }
.muted { color: #666; font-size: .9em; }
.mono { font-family: ui-monospace, "SF Mono", Menlo, Consolas, monospace;
        font-size: .88em; }
details > summary { cursor: default; font-weight: 600; margin: .4em 0; }
ul.tree { list-style: none; padding-left: 1.2em; margin: .3em 0; }
ul.tree li { margin: .12em 0; }
svg.spark { vertical-align: middle; }
.warnbox { background: #fff6e0; border: 1px solid #e0c060;
           padding: .4em .8em; border-radius: .3em; margin: .5em 0; }
.headline { font-size: 1.15em; background: #eef6ee; border: 1px solid #9c9;
            padding: .6em 1em; border-radius: .3em; margin: .8em 0; }
"""


def esc(value: Any) -> str:
    """HTML-escape ``value`` (rendered through ``str``)."""
    return _html.escape(str(value), quote=True)


def fmt_value(value: Any) -> str:
    """Compact scalar formatting: 5 significant digits for floats."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        return f"{value:.5g}"
    return str(value)


def badge(verdict: str) -> str:
    """Coloured pill for a verdict string (unknown verdicts render grey)."""
    cls = verdict if verdict in (
        "match", "drift", "fail", "regression", "improvement",
        "unchanged", "added", "removed", "error", "skipped",
        "consolidated", "dedicated",
    ) else "info"
    return f'<span class="badge badge-{cls}">{esc(verdict)}</span>'


def table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Table over pre-rendered (possibly HTML) cell strings."""
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def kv_table(pairs: Mapping[str, Any]) -> str:
    """Two-column key/value table with monospace values."""
    return table(
        ("key", "value"),
        [(esc(k), f'<span class="mono">{esc(fmt_value(v))}</span>')
         for k, v in pairs.items()],
    )


def sparkline(
    values: Sequence[float], width: int = 120, height: int = 26
) -> str:
    """Inline SVG polyline over ``values`` (min-max normalised)."""
    pts = [float(v) for v in values if v == v]
    if len(pts) < 2:
        return '<span class="muted">–</span>'
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(pts) - 1)
    coords = " ".join(
        f"{pad + i * step:.1f},{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(pts)
    )
    last_y = height - pad - (pts[-1] - lo) / span * (height - 2 * pad)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{coords}" fill="none" stroke="#2a6fb0" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{pad + (len(pts) - 1) * step:.1f}" cy="{last_y:.1f}" '
        f'r="2.2" fill="#2a6fb0"/></svg>'
    )


def timeline_chart(
    t0: float,
    bucket_width: float,
    values: Sequence[float],
    *,
    markers: Sequence[Mapping[str, Any]] = (),
    width: int = 640,
    height: int = 110,
    stroke: str = "#2a6fb0",
    unit: str = "",
) -> str:
    """Inline-SVG time series over virtual time with alarm markers.

    ``values`` are per-bucket aggregates starting at ``t0`` with uniform
    ``bucket_width``; ``markers`` are alarm documents (``t``, ``state``,
    ``rule``) drawn as vertical lines — red for ``fire``, green for
    ``clear`` — with the rule name in a ``<title>`` tooltip.  No scripts,
    no external assets (the reports' self-containment contract).
    """
    pts = [float(v) for v in values if v == v]
    if len(pts) < 2:
        return '<span class="muted">not enough telemetry buckets</span>'
    lo = min(min(pts), 0.0)
    hi = max(pts)
    span = (hi - lo) or 1.0
    pad_l, pad_r, pad_t, pad_b = 46.0, 8.0, 8.0, 20.0
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    t_end = t0 + bucket_width * len(pts)
    t_span = (t_end - t0) or 1.0

    def x_of(t: float) -> float:
        return pad_l + (t - t0) / t_span * plot_w

    def y_of(v: float) -> float:
        return pad_t + (1.0 - (v - lo) / span) * plot_h

    coords = " ".join(
        f"{x_of(t0 + (i + 0.5) * bucket_width):.1f},{y_of(v):.1f}"
        for i, v in enumerate(pts)
    )
    marks = []
    for doc in markers:
        t = float(doc.get("t", 0.0))
        if not t0 <= t <= t_end:
            continue
        firing = doc.get("state") == "fire"
        colour = "#c0392b" if firing else "#1a7f37"
        label = esc(f"{doc.get('rule', 'alarm')} {doc.get('state', '')} @ t={t:g}")
        marks.append(
            f'<line x1="{x_of(t):.1f}" y1="{pad_t:.1f}" x2="{x_of(t):.1f}" '
            f'y2="{pad_t + plot_h:.1f}" stroke="{colour}" stroke-width="1.2" '
            f'stroke-dasharray="{"" if firing else "3 2"}">'
            f"<title>{label}</title></line>"
        )
    axis_label = esc(f"{fmt_value(hi)}{unit}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<line x1="{pad_l:.1f}" y1="{pad_t + plot_h:.1f}" '
        f'x2="{pad_l + plot_w:.1f}" y2="{pad_t + plot_h:.1f}" '
        f'stroke="#999" stroke-width="1"/>'
        f'<line x1="{pad_l:.1f}" y1="{pad_t:.1f}" x2="{pad_l:.1f}" '
        f'y2="{pad_t + plot_h:.1f}" stroke="#999" stroke-width="1"/>'
        f'<text x="{pad_l - 4:.1f}" y="{pad_t + 4:.1f}" text-anchor="end" '
        f'font-size="9" fill="#666">{axis_label}</text>'
        f'<text x="{pad_l - 4:.1f}" y="{pad_t + plot_h:.1f}" text-anchor="end" '
        f'font-size="9" fill="#666">{esc(fmt_value(lo))}</text>'
        f'<text x="{pad_l:.1f}" y="{height - 6:.1f}" font-size="9" '
        f'fill="#666">t={esc(fmt_value(t0))}</text>'
        f'<text x="{pad_l + plot_w:.1f}" y="{height - 6:.1f}" text-anchor="end" '
        f'font-size="9" fill="#666">t={esc(fmt_value(t_end))}</text>'
        + "".join(marks)
        + f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
        f'stroke-width="1.5"/></svg>'
    )


def page(title: str, body: str) -> str:
    """Wrap ``body`` in the shared self-contained page shell."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>{CSS}</style>\n"
        f"</head><body>\n{body}\n</body></html>\n"
    )
