"""Opt-in span profilers: cProfile hotspots + tracemalloc allocation sites.

A :class:`SpanProfiler` attaches to :class:`~repro.obs.trace.TraceLog`
spans: ``profiler.span(trace, "plan", ...)`` records the usual
``span_begin``/``span_end`` pair *and* profiles the body.  Profiles from
multiple spans accumulate into one report, so the experiment runner can
profile every experiment span of a sweep and dump a single top-N hotspot
list at the end.

This is deliberately opt-in (``--profile-out`` on ``repro-plan`` and
``repro-experiments``): cProfile costs roughly 2-4x on tight Python loops
and tracemalloc more, which is why neither is ever armed by default — the
<5% disabled-overhead guard in ``benchmarks/bench_obs_overhead.py`` only
holds with the profilers off.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import tracemalloc
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .trace import NullTraceLog, TraceLog

__all__ = ["PROFILE_SCHEMA", "SpanProfiler"]

PROFILE_SCHEMA = "repro.profile/v1"


class SpanProfiler:
    """Accumulating cProfile + tracemalloc profiler for trace spans."""

    def __init__(self, *, top_n: int = 25, trace_allocations: bool = True) -> None:
        if top_n < 1:
            raise ValueError(f"top_n must be positive, got {top_n}")
        self.top_n = top_n
        self.trace_allocations = trace_allocations
        self._profile = cProfile.Profile()
        self._spans: list[dict[str, Any]] = []
        self._alloc_peak_bytes = 0
        self._alloc_stats: list[dict[str, Any]] = []

    # -- capture ---------------------------------------------------------------

    @contextmanager
    def span(
        self, trace: TraceLog | NullTraceLog, name: str, **fields: Any
    ) -> Iterator[dict[str, Any]]:
        """Profile the body of a trace span.

        The span is recorded in ``trace`` exactly as ``trace.span`` would;
        the profiler adds cProfile capture (always) and a tracemalloc pass
        (unless ``trace_allocations=False`` or something else is already
        tracing allocations).
        """
        own_tracemalloc = self.trace_allocations and not tracemalloc.is_tracing()
        if own_tracemalloc:
            tracemalloc.start()
        self._profile.enable()
        try:
            with trace.span(name, **fields) as span_fields:
                yield span_fields
        finally:
            self._profile.disable()
            if own_tracemalloc:
                _, peak = tracemalloc.get_traced_memory()
                snapshot = tracemalloc.take_snapshot()
                tracemalloc.stop()
                self._alloc_peak_bytes = max(self._alloc_peak_bytes, peak)
                self._record_alloc(snapshot)
            self._spans.append({"name": name, **fields})

    def _record_alloc(self, snapshot: "tracemalloc.Snapshot") -> None:
        # Merge this span's top allocation sites into the running list,
        # keeping the overall top-N by size.
        merged: dict[str, dict[str, Any]] = {
            entry["location"]: dict(entry) for entry in self._alloc_stats
        }
        for stat in snapshot.statistics("lineno")[: self.top_n]:
            frame = stat.traceback[0]
            location = f"{frame.filename}:{frame.lineno}"
            entry = merged.setdefault(
                location, {"location": location, "size_bytes": 0, "count": 0}
            )
            entry["size_bytes"] += stat.size
            entry["count"] += stat.count
        self._alloc_stats = sorted(
            merged.values(), key=lambda e: e["size_bytes"], reverse=True
        )[: self.top_n]

    # -- reporting -------------------------------------------------------------

    def hotspots(self) -> list[dict[str, Any]]:
        """Top-N functions by cumulative time across all profiled spans."""
        stats = pstats.Stats(self._profile)
        rows = []
        for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
            rows.append(
                {
                    "function": f"{filename}:{lineno}:{func}",
                    "calls": nc,
                    "primitive_calls": cc,
                    "tottime_s": tt,
                    "cumtime_s": ct,
                }
            )
        rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
        return rows[: self.top_n]

    def allocation_top(self) -> list[dict[str, Any]]:
        """Top allocation sites by size (empty when tracemalloc was off)."""
        return list(self._alloc_stats)

    def report(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "spans": list(self._spans),
            "hotspots": self.hotspots(),
            "allocations": {
                "enabled": self.trace_allocations,
                "peak_bytes": self._alloc_peak_bytes,
                "top": self.allocation_top(),
            },
        }

    def to_text(self) -> str:
        lines = [f"profiled spans: {len(self._spans)}"]
        lines.append(f"top {self.top_n} hotspots by cumulative time:")
        for row in self.hotspots():
            lines.append(
                f"  {row['cumtime_s']:9.4f}s  {row['calls']:>8} calls  {row['function']}"
            )
        if self.trace_allocations:
            lines.append(f"allocation peak: {self._alloc_peak_bytes} bytes")
            for entry in self.allocation_top():
                lines.append(
                    f"  {entry['size_bytes']:>10} bytes  {entry['count']:>8} blocks  "
                    f"{entry['location']}"
                )
        return "\n".join(lines)

    def write(self, path: str | Path) -> Path:
        """Dump the JSON report to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.report(), indent=2, default=str) + "\n")
        return path
