"""Self-contained HTML run reports fusing every observability artifact.

PR 1 and PR 2 left the telemetry scattered across files a reviewer has to
join by hand: ``run_manifest.json``, a Prometheus snapshot, a JSONL trace,
``BENCH_*.json`` trajectory points, and now ``FIDELITY_*.json``
scoreboards.  This module renders them into **one** ``report.html`` —
dependency-free, no JavaScript, no external assets, figures as inline SVG
sparklines — that answers, on open: did this run reproduce the paper, how
fast was it, what did it execute, and on which machine?

Entry points:

- :func:`render_report` — pure renderer over already-loaded documents;
- :func:`main` — the ``repro-report`` CLI, which assembles a report from
  on-disk artifacts without re-running anything;
- ``repro-experiments --report-out FILE`` builds the same report from the
  live run (see :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Sequence

from .compare import compare_artifacts, load_artifact
from .fidelity import (
    build_fidelity_artifact,
    evaluate_summaries,
    load_fidelity_artifact,
    load_results_summaries,
)
from .htmlutil import badge as _badge
from .htmlutil import esc as _esc
from .htmlutil import fmt_value as _fmt
from .htmlutil import kv_table as _kv_table
from .htmlutil import page as _page
from .htmlutil import sparkline as _sparkline
from .htmlutil import table as _table
from .htmlutil import timeline_chart as _timeline_chart
from .timeseries import TIMESERIES_SCHEMA, load_timeseries_jsonl

__all__ = ["render_report", "collect_bench_docs", "write_report", "main"]


# -- sections ------------------------------------------------------------------


def _section_fidelity(fidelity_doc: Mapping[str, Any] | None) -> str:
    out = ["<h2>Fidelity scoreboard</h2>"]
    if not fidelity_doc:
        out.append('<p class="muted">No fidelity data available.</p>')
        return "".join(out)
    counts = fidelity_doc.get("counts", {})
    out.append(
        f"<p>Overall: {_badge(fidelity_doc['overall'])} "
        f'<span class="muted">({counts.get("match", "?")} match, '
        f'{counts.get("drift", "?")} drift, {counts.get("fail", "?")} fail '
        f"— paper-expected values vs this run, within declared "
        f"tolerances)</span></p>"
    )
    rows = []
    for v in fidelity_doc.get("verdicts", []):
        rows.append(
            (
                _esc(v["experiment"]),
                _esc(v["metric"]),
                f'<span class="mono">{_esc(_fmt(v["expected"]))}</span>',
                f'<span class="mono">{_esc(_fmt(v.get("actual")))}</span>',
                _esc(v.get("op", "approx")),
                f'<span class="mono">{_esc(_fmt(v.get("tolerance")))}</span>',
                _badge(v["verdict"]),
                f'<span class="muted">{_esc(v.get("source", ""))}</span>',
            )
        )
    out.append(
        _table(
            ("experiment", "metric", "expected", "actual", "op",
             "tolerance", "verdict", "source"),
            rows,
        )
    )
    return "".join(out)


def _section_manifest(manifest: Mapping[str, Any] | None) -> str:
    out = ["<h2>Run manifest</h2>"]
    if not manifest:
        out.append('<p class="muted">No run manifest available.</p>')
        return "".join(out)
    head = {
        "schema": manifest.get("schema"),
        "model_version": manifest.get("model_version"),
        "seed": manifest.get("seed"),
        "wall_time_s": manifest.get("wall_time_s"),
        "inputs_hash": manifest.get("inputs_hash"),
    }
    out.append(_kv_table(head))
    inputs = manifest.get("inputs")
    if inputs:
        out.append("<h3>Inputs</h3>")
        out.append(_kv_table(inputs))
    env = manifest.get("environment")
    if env:
        out.append("<h3>Environment fingerprint</h3>")
        out.append(_kv_table(env))
    return "".join(out)


def _metric_value_cell(kind: str, value: Any) -> str:
    if isinstance(value, Mapping):  # histogram / timer snapshot
        text = ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
        return f'<span class="mono">{_esc(text)}</span>'
    return f'<span class="mono">{_esc(_fmt(value))}</span>'


def _section_metrics(metrics: Mapping[str, Any] | None) -> str:
    out = ["<h2>Metrics</h2>"]
    if not metrics:
        out.append('<p class="muted">No metric snapshot available.</p>')
        return "".join(out)
    rows = []
    for name in sorted(metrics):
        family = metrics[name]
        kind = family.get("kind", "?")
        for series in family.get("series", []):
            labels = series.get("labels") or {}
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            rows.append(
                (
                    f'<span class="mono">{_esc(name)}</span>',
                    _esc(kind),
                    f'<span class="mono">{_esc(label_text)}</span>',
                    _metric_value_cell(kind, series.get("value")),
                )
            )
    out.append(_table(("family", "kind", "labels", "value"), rows))
    return "".join(out)


def _span_tree(events: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Nest ``span_begin``/``span_end`` event pairs by emission order."""
    roots: list[dict[str, Any]] = []
    stack: list[dict[str, Any]] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_begin":
            node = {
                "name": event.get("name", "?"),
                "fields": {
                    k: v
                    for k, v in event.items()
                    if k not in ("ts", "kind", "name", "span")
                },
                "duration_s": None,
                "children": [],
            }
            (stack[-1]["children"] if stack else roots).append(node)
            stack.append(node)
        elif kind == "span_end" and stack:
            node = stack.pop()
            node["duration_s"] = event.get("duration_s")
            node["fields"].update(
                {
                    k: v
                    for k, v in event.items()
                    if k not in ("ts", "kind", "name", "span", "duration_s")
                }
            )
    return roots


def _render_tree(nodes: Sequence[Mapping[str, Any]]) -> str:
    items = []
    for node in nodes:
        duration = node.get("duration_s")
        dur = f" — {float(duration) * 1e3:.1f} ms" if duration is not None else ""
        fields = node.get("fields") or {}
        field_text = ", ".join(f"{k}={_fmt(v)}" for k, v in fields.items())
        label = (
            f'<span class="mono">{_esc(node["name"])}</span>'
            f'<span class="muted">{_esc(dur)}'
            + (f" ({_esc(field_text)})" if field_text else "")
            + "</span>"
        )
        children = node.get("children") or []
        items.append(
            "<li>" + label + (_render_tree(children) if children else "") + "</li>"
        )
    return '<ul class="tree">' + "".join(items) + "</ul>"


def _section_trace(
    trace_events: Sequence[Mapping[str, Any]] | None,
    trace_stats: Mapping[str, Any] | None,
) -> str:
    out = ["<h2>Trace summary</h2>"]
    if trace_stats:
        dropped = trace_stats.get("dropped", 0)
        out.append(_kv_table(trace_stats))
        if dropped:
            out.append(
                f'<div class="warnbox">⚠ the trace ring dropped {dropped} '
                f"event(s): the oldest events are missing from this "
                f"summary (capacity "
                f"{_esc(trace_stats.get('capacity', '?'))}).</div>"
            )
    if not trace_events:
        if not trace_stats:
            out.append('<p class="muted">No trace available.</p>')
        return "".join(out)
    by_kind: dict[str, int] = {}
    for event in trace_events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    out.append(
        "<p>"
        + ", ".join(f"{n} × {_esc(k)}" for k, n in sorted(by_kind.items()))
        + "</p>"
    )
    warnings = [e for e in trace_events if e.get("kind") == "warning"]
    if warnings:
        out.append(
            f'<div class="warnbox">⚠ {len(warnings)} warning event(s): '
            + "; ".join(
                _esc(
                    w.get("name", "?")
                    + " "
                    + json.dumps(
                        {k: v for k, v in w.items() if k not in ("ts", "kind", "name")},
                        default=str,
                    )
                )
                for w in warnings[:10]
            )
            + "</div>"
        )
    roots = _span_tree(trace_events)
    if roots:
        out.append("<h3>Span tree</h3>")
        out.append(_render_tree(roots))
    return "".join(out)


def _section_bench(
    bench_docs: Sequence[Mapping[str, Any]],
    bench_comparison: Mapping[str, Any] | None,
) -> str:
    out = ["<h2>Performance trajectory</h2>"]
    if not bench_docs:
        out.append(
            '<p class="muted">No BENCH_*.json artifacts found — run '
            "<span class=\"mono\">repro-bench run</span> to record one.</p>"
        )
        return "".join(out)
    docs = sorted(bench_docs, key=lambda d: str(d.get("created_utc", "")))
    latest = docs[-1]
    out.append(
        f'<p class="muted">{len(docs)} artifact(s); latest '
        f"{_esc(latest.get('created_utc'))} @ {_esc(latest.get('git_sha'))}.</p>"
    )
    # Trajectory: per-benchmark median series across artifacts, oldest first.
    series: dict[str, list[float]] = {}
    for doc in docs:
        for entry in doc.get("benchmarks", []):
            if entry.get("ok"):
                median = (entry.get("wall_s") or {}).get("median")
                if median is not None:
                    series.setdefault(entry["name"], []).append(float(median))
    rows = []
    for entry in latest.get("benchmarks", []):
        name = entry["name"]
        if not entry.get("ok"):
            rows.append(
                (
                    f'<span class="mono">{_esc(name)}</span>',
                    _badge("error"),
                    _esc(entry.get("error", "")),
                    "",
                )
            )
            continue
        median = (entry.get("wall_s") or {}).get("median")
        med = f"{float(median) * 1e3:.2f} ms" if median is not None else "–"
        rows.append(
            (
                f'<span class="mono">{_esc(name)}</span>',
                f'<span class="mono">{_esc(med)}</span>',
                _esc(entry.get("group", "")),
                _sparkline(series.get(name, ())),
            )
        )
    out.append(_table(("benchmark", "wall median", "group", "trend"), rows))
    if bench_comparison:
        out.append("<h3>Comparison vs baseline</h3>")
        out.append(
            f"<p>Verdict: {_badge(bench_comparison.get('verdict', '?'))} "
            f'<span class="muted">(±{100.0 * float(bench_comparison.get("threshold", 0)):.0f}% '
            f"band on median {_esc(bench_comparison.get('metric', '?'))})</span></p>"
        )
        cmp_rows = []
        for delta in bench_comparison.get("deltas", []):
            rel = delta.get("rel_change")
            cmp_rows.append(
                (
                    f'<span class="mono">{_esc(delta["name"])}</span>',
                    _esc(_fmt(delta.get("base_median_s"))),
                    _esc(_fmt(delta.get("new_median_s"))),
                    _esc(f"{100.0 * rel:+.1f}%" if isinstance(rel, float) else "–"),
                    _badge(delta.get("verdict", "?")),
                )
            )
        out.append(
            _table(("benchmark", "base median s", "new median s", "delta", "verdict"),
                   cmp_rows)
        )
    return "".join(out)


#: Charts rendered before the timeline section truncates (keeps reports
#: bounded when many pools record telemetry).
_MAX_TIMELINE_CHARTS = 24


def _alarm_matches_series(alarm: Mapping[str, Any], series: Mapping[str, Any]) -> bool:
    if alarm.get("series") != series.get("series"):
        return False
    series_labels = series.get("labels") or {}
    return all(
        series_labels.get(k) == v for k, v in (alarm.get("labels") or {}).items()
    )


def _section_timeline(
    timeseries_docs: Sequence[Mapping[str, Any]] | None,
) -> str:
    """Virtual-time timeline charts with alarm markers.

    Unlike the other sections this one renders *nothing at all* when no
    telemetry exists — the timeline is an opt-in artifact, so its absence
    is the normal case, not a gap worth a placeholder.
    """
    if not timeseries_docs:
        return ""
    series_docs = [d for d in timeseries_docs if d.get("kind") == "series"]
    alarm_docs = [d for d in timeseries_docs if d.get("kind") == "alarm"]
    if not series_docs:
        return ""
    out = ["<h2>Telemetry timeline</h2>"]
    out.append(
        f'<p class="muted">{len(series_docs)} series, {len(alarm_docs)} '
        f"alarm transition(s) over virtual time (schema "
        f"{_esc(TIMESERIES_SCHEMA)}); red lines mark alarm fires, dashed "
        f"green their clears.</p>"
    )
    shown = 0
    for doc in series_docs:
        if shown >= _MAX_TIMELINE_CHARTS:
            out.append(
                f'<p class="muted">… {len(series_docs) - shown} more series '
                f"not charted (cap {_MAX_TIMELINE_CHARTS}).</p>"
            )
            break
        labels = doc.get("labels") or {}
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        markers = [a for a in alarm_docs if _alarm_matches_series(a, doc)]
        out.append(
            f"<h3><span class=\"mono\">{_esc(doc['series'])}</span> "
            f'<span class="muted">{_esc(label_text)} ({_esc(doc["agg"])}, '
            f'bucket {_esc(_fmt(doc["bucket_width"]))})</span></h3>'
        )
        out.append(
            _timeline_chart(
                float(doc.get("t0", 0.0)),
                float(doc["bucket_width"]),
                doc["values"],
                markers=markers,
            )
        )
        shown += 1
    if alarm_docs:
        out.append("<h3>Alarm transitions</h3>")
        rows = [
            (
                f'<span class="mono">{_esc(a["rule"])}</span>',
                f'<span class="badge badge-'
                f'{"fail" if a["state"] == "fire" else "match"}">'
                f'{_esc(a["state"])}</span>',
                f'<span class="mono">{_esc(_fmt(a["t"]))}</span>',
                f'<span class="mono">{_esc(_fmt(a["value"]))}</span>',
                f'<span class="mono">{_esc(_fmt(a["threshold"]))}</span>',
                f'<span class="mono">{_esc(a["series"])}</span>',
            )
            for a in alarm_docs
        ]
        out.append(
            _table(
                ("rule", "state", "virtual time", "window value",
                 "threshold", "series"),
                rows,
            )
        )
    return "".join(out)


def _percentile(ordered: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile over pre-sorted values (None when empty)."""
    if not ordered:
        return None
    import math

    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _section_service(
    access_docs: tuple[Sequence[Mapping[str, Any]], Sequence[Mapping[str, Any]]] | None,
) -> str:
    """Service latency timeline + per-endpoint table from an access log.

    ``access_docs`` is the ``(requests, alarms)`` pair
    :func:`repro.service.accesslog.load_access_log` returns.  Like the
    telemetry timeline, this section renders nothing when no access log
    exists — serving is opt-in.
    """
    if not access_docs:
        return ""
    requests, alarms = access_docs
    if not requests:
        return ""
    out = ["<h2>Service</h2>"]
    latencies = sorted(float(r["latency_ms"]) for r in requests)
    t_max = max(float(r["t"]) for r in requests)
    errors = sum(1 for r in requests if int(r["status"]) >= 500)
    duration = max(t_max, 1e-9)
    summary = {
        "requests": len(requests),
        "duration_s": round(duration, 3),
        "throughput_rps": round(len(requests) / duration, 1),
        "p50_ms": round(_percentile(latencies, 50.0), 3),
        "p95_ms": round(_percentile(latencies, 95.0), 3),
        "p99_ms": round(_percentile(latencies, 99.0), 3),
        "server_errors": errors,
        "error_rate": round(errors / len(requests), 6),
        "alarm_transitions": len(alarms),
    }
    out.append(_kv_table(summary))

    # Latency timeline: mean latency per 1-second bucket of service time,
    # with SLO alarm markers overlaid (red fire / dashed green clear).
    width = 1.0
    buckets = int(t_max / width) + 1
    sums = [0.0] * buckets
    counts = [0] * buckets
    for r in requests:
        idx = min(int(float(r["t"]) / width), buckets - 1)
        sums[idx] += float(r["latency_ms"])
        counts[idx] += 1
    values = [s / c if c else 0.0 for s, c in zip(sums, counts)]
    out.append(
        '<h3><span class="mono">request latency</span> '
        '<span class="muted">mean ms per second of service time</span></h3>'
    )
    out.append(_timeline_chart(0.0, width, values, markers=alarms))

    by_endpoint: dict[str, list[Mapping[str, Any]]] = {}
    for r in requests:
        by_endpoint.setdefault(str(r["endpoint"]), []).append(r)
    rows = []
    for endpoint in sorted(by_endpoint):
        docs = by_endpoint[endpoint]
        ordered = sorted(float(r["latency_ms"]) for r in docs)
        bad = sum(1 for r in docs if int(r["status"]) >= 400)
        rows.append(
            (
                f'<span class="mono">{_esc(endpoint)}</span>',
                f'<span class="mono">{len(docs)}</span>',
                f'<span class="mono">{bad}</span>',
                f'<span class="mono">{_percentile(ordered, 50.0):.3f}</span>',
                f'<span class="mono">{_percentile(ordered, 99.0):.3f}</span>',
            )
        )
    out.append(
        _table(("endpoint", "requests", "4xx/5xx", "p50 ms", "p99 ms"), rows)
    )
    if alarms:
        rows = [
            (
                f'<span class="mono">{_esc(a.get("rule", "?"))}</span>',
                f'<span class="badge badge-'
                f'{"fail" if a.get("state") in ("fire", "open_at_exit") else "match"}">'
                f'{_esc(a.get("state", "?"))}</span>',
                f'<span class="mono">{_esc(_fmt(a.get("t")))}</span>',
                f'<span class="mono">{_esc(_fmt(a.get("value")))}</span>',
                f'<span class="mono">{_esc(_fmt(a.get("threshold")))}</span>',
            )
            for a in alarms
        ]
        out.append("<h3>SLO alarm transitions</h3>")
        out.append(
            _table(("rule", "state", "service time", "burn rate", "threshold"), rows)
        )
    return "".join(out)


def _section_results(results: Sequence[Mapping[str, Any]]) -> str:
    out = ["<h2>Experiment results</h2>"]
    if not results:
        out.append('<p class="muted">No experiment summaries available.</p>')
        return "".join(out)
    for result in results:
        name = result.get("experiment", "?")
        title = result.get("title", "")
        out.append(
            f"<details open><summary><span class=\"mono\">{_esc(name)}</span> "
            f"— {_esc(title)}</summary>"
        )
        out.append(_kv_table(result.get("summary") or {}))
        out.append("</details>")
    return "".join(out)


# -- assembly ------------------------------------------------------------------


def render_report(
    *,
    title: str = "repro run report",
    manifest: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    trace_events: Sequence[Mapping[str, Any]] | None = None,
    trace_stats: Mapping[str, Any] | None = None,
    bench_docs: Sequence[Mapping[str, Any]] = (),
    bench_comparison: Mapping[str, Any] | None = None,
    fidelity_doc: Mapping[str, Any] | None = None,
    timeseries_docs: Sequence[Mapping[str, Any]] | None = None,
    access_docs: tuple[Sequence[Mapping[str, Any]], Sequence[Mapping[str, Any]]]
    | None = None,
    results: Sequence[Mapping[str, Any]] = (),
    generated_utc: str | None = None,
) -> str:
    """Render one self-contained HTML document over the given artifacts.

    Every argument is optional; absent sections render a placeholder so the
    report's structure is stable regardless of which artifacts exist.
    ``metrics`` defaults to the manifest's snapshot, ``trace_stats`` to the
    manifest's trace block.  Exception: the telemetry timeline renders only
    when ``timeseries_docs`` are given (no placeholder — recording
    telemetry is opt-in, so absence is the normal case).
    """
    if metrics is None and manifest:
        metrics = manifest.get("metrics")
    if trace_stats is None and manifest:
        trace_stats = manifest.get("trace")
    generated = generated_utc or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    env = (manifest or {}).get("environment") or {}
    subtitle_bits = [f"generated {generated}"]
    if env.get("git_sha"):
        subtitle_bits.append(f"commit {env['git_sha']}")
    elif fidelity_doc and fidelity_doc.get("git_sha"):
        subtitle_bits.append(f"commit {fidelity_doc['git_sha']}")
    body = "".join(
        (
            f"<h1>{_esc(title)}</h1>",
            f'<p class="muted">{_esc(" · ".join(subtitle_bits))}</p>',
            _section_fidelity(fidelity_doc),
            _section_manifest(manifest),
            _section_metrics(metrics),
            _section_trace(trace_events, trace_stats),
            _section_timeline(timeseries_docs),
            _section_service(access_docs),
            _section_bench(bench_docs, bench_comparison),
            _section_results(results),
        )
    )
    return _page(title, body)


def collect_bench_docs(directories: Sequence[str | Path]) -> list[dict[str, Any]]:
    """Load every valid ``BENCH_*.json`` under ``directories`` (sorted by date).

    Invalid or foreign files are skipped — a report over a mixed artifact
    directory must not abort on one corrupt trajectory point.
    """
    docs: list[dict[str, Any]] = []
    seen: set[Path] = set()
    for directory in directories:
        directory = Path(directory)
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("BENCH_*.json")):
            path = path.resolve()
            if path in seen:
                continue
            seen.add(path)
            try:
                docs.append(load_artifact(path))
            except (ValueError, OSError):
                continue
    return sorted(docs, key=lambda d: str(d.get("created_utc", "")))


def write_report(text: str, path: str | Path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def _load_json(path: Path) -> dict[str, Any] | None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _load_trace_events(path: Path) -> list[dict[str, Any]]:
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            events.append(doc)
    return events


def main(argv: Sequence[str] | None = None) -> int:
    """``repro-report`` — assemble ``report.html`` from on-disk artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Fuse run manifest, metrics, trace, BENCH trend, and "
        "fidelity scoreboard into one self-contained HTML report — without "
        "re-running any experiment.",
    )
    parser.add_argument(
        "--results",
        default="results/full",
        metavar="DIR",
        help="results directory holding <id>.json experiment artifacts "
        "(default: results/full)",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        help="run manifest (default: <results>/run_manifest.json when present)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="JSONL event trace to summarise"
    )
    parser.add_argument(
        "--timeseries",
        metavar="FILE",
        help="repro.timeseries/v1 JSONL artifact to render as timeline "
        "charts (default: <results>/timeseries.jsonl, else any *.jsonl "
        "under <results> carrying the schema; the section is simply "
        "omitted when none exists)",
    )
    parser.add_argument(
        "--access-log",
        metavar="FILE",
        help="repro.access/v1 JSONL written by repro-serve to render as the "
        "Service section (default: <results>/access.jsonl when present; "
        "the section is omitted when none exists)",
    )
    parser.add_argument(
        "--fidelity",
        metavar="FILE",
        help="FIDELITY_*.json to show (default: evaluate declared "
        "expectations against the results directory)",
    )
    parser.add_argument(
        "--bench-dir",
        action="append",
        metavar="DIR",
        help="directories to scan for BENCH_*.json (repeatable; default: "
        "<results> and benchmarks/baselines)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="bench baseline artifact to compare the newest BENCH_*.json "
        "against (default: benchmarks/baselines/BENCH_baseline.json when "
        "present)",
    )
    parser.add_argument("--title", default="repro run report")
    parser.add_argument(
        "--out", default="report.html", metavar="FILE", help="output HTML path"
    )
    args = parser.parse_args(argv)

    results_dir = Path(args.results)
    try:
        summaries = load_results_summaries(results_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: unreadable results artifact: {exc}", file=sys.stderr)
        return 2

    results = []
    for path in sorted(results_dir.glob("*.json")):
        if path.name.startswith(("BENCH_", "FIDELITY_")):
            continue
        doc = _load_json(path)
        if doc and isinstance(doc.get("experiment"), str) and "summary" in doc:
            results.append(doc)

    manifest = None
    manifest_path = (
        Path(args.manifest) if args.manifest else results_dir / "run_manifest.json"
    )
    if manifest_path.exists():
        manifest = _load_json(manifest_path)
        if manifest is None:
            print(f"error: unreadable manifest: {manifest_path}", file=sys.stderr)
            return 2
    elif args.manifest:
        print(f"error: no such manifest: {manifest_path}", file=sys.stderr)
        return 2

    # A service access log (explicit or discoverable) is renderable on
    # its own — a repro-serve results dir has no experiment artifacts.
    has_access_log = bool(args.access_log) or (results_dir / "access.jsonl").is_file()
    if not results and manifest is None and not has_access_log and not sorted(
        results_dir.glob("FIDELITY_*.json")
    ):
        print(
            f"error: no run artifacts under {results_dir} — run "
            f"'repro-experiments --output {results_dir}' first",
            file=sys.stderr,
        )
        return 2

    trace_events = None
    if args.trace:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            print(f"error: no such trace: {trace_path}", file=sys.stderr)
            return 2
        trace_events = _load_trace_events(trace_path)

    timeseries_docs = None
    if args.timeseries:
        try:
            series_docs, alarm_docs = load_timeseries_jsonl(args.timeseries)
        except (OSError, ValueError) as exc:
            print(f"error: unreadable timeseries artifact: {exc}", file=sys.stderr)
            return 2
        timeseries_docs = series_docs + alarm_docs
    else:
        # Auto-discovery: prefer the conventional name, then accept any
        # JSONL in the results directory carrying the v1 schema.  Absence
        # is fine — the report simply has no timeline section.
        candidates = [results_dir / "timeseries.jsonl"] + sorted(
            p for p in results_dir.glob("*.jsonl")
            if p.name != "timeseries.jsonl"
        )
        for candidate in candidates:
            if not candidate.is_file():
                continue
            try:
                series_docs, alarm_docs = load_timeseries_jsonl(candidate)
            except (OSError, ValueError):
                continue  # foreign JSONL (e.g. a trace export): skip
            if series_docs or alarm_docs:
                timeseries_docs = series_docs + alarm_docs
                break

    # Imported lazily: repro.service pulls in the planner CLI stack, and
    # repro.obs.__init__ imports this module — a top-level import would
    # be circular.
    from ..service.accesslog import load_access_log

    access_docs = None
    if args.access_log:
        try:
            access_docs = load_access_log(args.access_log)
        except (OSError, ValueError) as exc:
            print(f"error: unreadable access log: {exc}", file=sys.stderr)
            return 2
    else:
        candidate = results_dir / "access.jsonl"
        if candidate.is_file():
            try:
                access_docs = load_access_log(candidate)
            except (OSError, ValueError):
                access_docs = None  # foreign or truncated file: no section

    if args.fidelity:
        try:
            fidelity_doc = load_fidelity_artifact(args.fidelity)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        fidelity_artifacts = sorted(results_dir.glob("FIDELITY_*.json"))
        if fidelity_artifacts:
            try:
                fidelity_doc = load_fidelity_artifact(fidelity_artifacts[-1])
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            # Grade the on-disk summaries against the declared expectations.
            # Importing the experiment registry pulls in every declaration.
            from ..experiments import runner as _runner  # noqa: F401

            fidelity_doc = build_fidelity_artifact(evaluate_summaries(summaries))

    bench_dirs = args.bench_dir or [results_dir, Path("benchmarks/baselines")]
    bench_docs = collect_bench_docs(bench_dirs)
    bench_comparison = None
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else Path("benchmarks/baselines/BENCH_baseline.json")
    )
    if bench_docs and baseline_path.exists():
        try:
            baseline = load_artifact(baseline_path)
            newest = bench_docs[-1]
            bench_comparison = compare_artifacts(baseline, newest).to_doc()
        except ValueError as exc:
            print(f"warning: bench comparison skipped: {exc}", file=sys.stderr)
    elif args.baseline:
        print(f"error: no such baseline: {baseline_path}", file=sys.stderr)
        return 2

    text = render_report(
        title=args.title,
        manifest=manifest,
        trace_events=trace_events,
        bench_docs=bench_docs,
        bench_comparison=bench_comparison,
        fidelity_doc=fidelity_doc,
        timeseries_docs=timeseries_docs,
        access_docs=access_docs,
        results=results,
    )
    try:
        path = write_report(text, args.out)
    except OSError as exc:
        print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
        return 1
    print(f"report: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
