"""repro — reproduction of "Utility Analysis for Internet-Oriented Server
Consolidation in VM-Based Data Centers" (Song, Zhang, Sun, Shi; CLUSTER 2009).

The package implements the paper's utility analytic model — an Erlang-loss-
based planner predicting how many physical servers a VM-based data center
needs when consolidating several Internet services at a given request-loss
probability — together with every substrate the evaluation depends on:
queueing theory, a simulated Xen/Rainbow virtualization platform, a
physical-cluster model with power metering, a discrete-event data-center
simulator, and SPECweb2005/TPC-W-like workload generators.

Quick start::

    from repro import ConsolidationPlanner, ResourceKind, ServiceSpec

    web = ServiceSpec("web", arrival_rate=3000.0,
                      service_rates={ResourceKind.CPU: 3360.0,
                                     ResourceKind.DISK_IO: 1420.0},
                      impact_factors={ResourceKind.CPU: 0.65,
                                      ResourceKind.DISK_IO: 0.8})
    db = ServiceSpec("db", arrival_rate=250.0,
                     service_rates={ResourceKind.CPU: 100.0},
                     impact_factors={ResourceKind.CPU: 0.9})
    report = ConsolidationPlanner().plan([web, db], loss_probability=0.01)
    print(report.to_text())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

from . import obs
from .core import (
    UNLIMITED_RATE,
    ConsolidationPlanner,
    ConsolidationReport,
    ConsolidationSolution,
    DynamicCapacityPlanner,
    DynamicPlan,
    HeterogeneousPool,
    ModelInputs,
    PowerComparison,
    QosBound,
    ResourceKind,
    ServerClass,
    ServerPowerModel,
    ServiceSpec,
    UtilityAnalyticModel,
    allocation_algorithm_bound,
    allocation_algorithm_score,
    power_comparison,
    utilization_report,
    virtualization_bound,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "obs",
    "ResourceKind",
    "ServiceSpec",
    "ModelInputs",
    "UNLIMITED_RATE",
    "UtilityAnalyticModel",
    "ConsolidationSolution",
    "ConsolidationPlanner",
    "ConsolidationReport",
    "DynamicCapacityPlanner",
    "DynamicPlan",
    "ServerPowerModel",
    "PowerComparison",
    "power_comparison",
    "utilization_report",
    "QosBound",
    "allocation_algorithm_bound",
    "allocation_algorithm_score",
    "virtualization_bound",
    "ServerClass",
    "HeterogeneousPool",
]
