"""Closed-form performance metrics for M/M/n/n and M/M/n systems.

The paper's model treats each resource of the pooled data center as an
``n``-server Erlang loss system.  This module packages the standard
steady-state metrics of that system (and of the delay variant used in
sanity checks) behind small result dataclasses so the experiment harness
can print labelled rows rather than bare floats.
"""

from __future__ import annotations

from dataclasses import dataclass

from .erlang import erlang_b, erlang_c, offered_load

__all__ = [
    "LossSystemMetrics",
    "mmnn_loss_metrics",
    "DelaySystemMetrics",
    "mmn_delay_metrics",
    "min_servers_for_wait",
    "wait_tail_probability",
    "wait_percentile",
]


@dataclass(frozen=True)
class LossSystemMetrics:
    """Steady-state metrics of an M/G/n/n Erlang loss system."""

    servers: int
    offered_load: float
    blocking_probability: float
    carried_load: float
    utilization: float
    throughput: float
    loss_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.blocking_probability <= 1.0:
            raise ValueError("blocking probability must lie in [0, 1]")


def mmnn_loss_metrics(
    arrival_rate: float, service_rate: float, servers: int
) -> LossSystemMetrics:
    """All steady-state metrics of an ``M/G/n/n`` loss system.

    - ``carried_load = rho * (1 - B)`` (mean number of busy servers);
    - ``utilization = carried_load / n``;
    - ``throughput = lambda * (1 - B)``;
    - ``loss_rate = lambda * B``.

    By insensitivity these hold for any service-time distribution with mean
    ``1/service_rate``.
    """
    if servers < 0:
        raise ValueError(f"servers must be non-negative, got {servers}")
    rho = offered_load(arrival_rate, service_rate)
    b = erlang_b(servers, rho)
    carried = rho * (1.0 - b)
    util = carried / servers if servers > 0 else 0.0
    return LossSystemMetrics(
        servers=servers,
        offered_load=rho,
        blocking_probability=b,
        carried_load=carried,
        utilization=util,
        throughput=arrival_rate * (1.0 - b),
        loss_rate=arrival_rate * b,
    )


@dataclass(frozen=True)
class DelaySystemMetrics:
    """Steady-state metrics of an M/M/n delay (Erlang C) system."""

    servers: int
    offered_load: float
    utilization: float
    probability_of_wait: float
    mean_queue_length: float
    mean_wait: float
    mean_response_time: float


def mmn_delay_metrics(
    arrival_rate: float, service_rate: float, servers: int
) -> DelaySystemMetrics:
    """Standard M/M/n results (stable only: ``rho < n``).

    Used by the simulated testbed to produce response-time curves (the
    paper's Fig. 9 Web panel reports average response time) on top of the
    loss-oriented headline model.
    """
    if servers <= 0:
        raise ValueError(f"servers must be positive, got {servers}")
    rho = offered_load(arrival_rate, service_rate)
    if rho >= servers:
        raise ValueError(
            f"M/M/n requires rho < n for stability (rho={rho}, n={servers})"
        )
    c = erlang_c(servers, rho)
    util = rho / servers
    mean_queue = c * rho / (servers - rho)
    mean_wait = c / (servers * service_rate - arrival_rate)
    return DelaySystemMetrics(
        servers=servers,
        offered_load=rho,
        utilization=util,
        probability_of_wait=c,
        mean_queue_length=mean_queue,
        mean_wait=mean_wait,
        mean_response_time=mean_wait + 1.0 / service_rate,
    )


def min_servers_for_wait(
    arrival_rate: float, service_rate: float, max_mean_wait: float
) -> int:
    """Smallest ``n`` with M/M/n mean waiting time <= ``max_mean_wait``.

    The delay-system dual of the Erlang-B inversion: sizes a *queueing*
    tier (e.g. the Web front end, whose Fig. 9 metric is response time)
    instead of a loss tier.  Starts at the stability floor ``n > rho`` and
    scans upward; mean wait is strictly decreasing in ``n``, so the first
    hit is minimal.
    """
    if arrival_rate <= 0.0 or service_rate <= 0.0:
        raise ValueError("rates must be positive")
    if max_mean_wait < 0.0:
        raise ValueError(f"wait target must be >= 0, got {max_mean_wait}")
    import math

    rho = arrival_rate / service_rate
    n = max(1, math.floor(rho) + 1)
    while True:
        metrics = mmn_delay_metrics(arrival_rate, service_rate, n)
        if metrics.mean_wait <= max_mean_wait:
            return n
        n += 1
        if n > 10_000_000:  # pragma: no cover - defensive
            raise RuntimeError("min_servers_for_wait failed to converge")


def wait_tail_probability(
    arrival_rate: float, service_rate: float, servers: int, t: float
) -> float:
    """``P(W > t)`` for the M/M/n queue.

    The conditional wait given queueing is exponential with rate
    ``n*mu - lambda``, so ``P(W > t) = C(n, rho) * exp(-(n mu - lambda) t)``
    — the formula behind percentile response-time SLAs ("95% of requests
    wait under 50 ms"), which loss probabilities alone cannot express.
    """
    if t < 0.0:
        raise ValueError(f"t must be non-negative, got {t}")
    metrics = mmn_delay_metrics(arrival_rate, service_rate, servers)
    import math

    rate = servers * service_rate - arrival_rate
    return metrics.probability_of_wait * math.exp(-rate * t)


def wait_percentile(
    arrival_rate: float, service_rate: float, servers: int, quantile: float
) -> float:
    """Smallest ``t`` with ``P(W <= t) >= quantile``.

    Returns 0 when the no-wait probability already covers the quantile;
    otherwise inverts the exponential tail in closed form.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must lie in (0, 1), got {quantile}")
    metrics = mmn_delay_metrics(arrival_rate, service_rate, servers)
    c = metrics.probability_of_wait
    tail_target = 1.0 - quantile
    if c <= tail_target:
        return 0.0
    import math

    rate = servers * service_rate - arrival_rate
    return math.log(c / tail_target) / rate
