"""Poisson arrival processes.

The model's second assumption (Section III.B.1) is that each service's
requests arrive as a Poisson process; the paper cites the classic result
that user-initiated TCP sessions on a WAN are well modelled as Poisson.
This module generates arrival-time vectors for homogeneous, piecewise and
time-varying (thinned) Poisson processes, and implements the superposition
property the consolidated-scenario analysis relies on (the sum of the
per-service Poisson streams is Poisson with rate ``lambda = sum lambda_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "poisson_arrivals",
    "piecewise_poisson_arrivals",
    "thinned_poisson_arrivals",
    "superpose",
    "MarkedArrivals",
    "superpose_marked",
    "interarrival_times",
]


def poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[0, horizon)``.

    Vectorised: draws ``Poisson(rate*horizon)`` uniform order statistics,
    which is distributionally identical to summing exponential gaps but a
    single NumPy call instead of a Python loop.
    """
    if rate < 0.0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if rate == 0.0:
        return np.empty(0)
    count = rng.poisson(rate * horizon)
    times = rng.uniform(0.0, horizon, count)
    times.sort()
    return times


def piecewise_poisson_arrivals(
    breakpoints: Sequence[float],
    rates: Sequence[float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrivals of a piecewise-constant-rate Poisson process.

    ``breakpoints`` has ``len(rates) + 1`` increasing entries; segment ``k``
    spans ``[breakpoints[k], breakpoints[k+1])`` at rate ``rates[k]``.
    Used by the diurnal workload traces behind the Fig. 2 motivation plot.
    """
    bp = np.asarray(breakpoints, dtype=float)
    rt = np.asarray(rates, dtype=float)
    if bp.ndim != 1 or bp.size != rt.size + 1:
        raise ValueError("need len(breakpoints) == len(rates) + 1")
    if (np.diff(bp) <= 0).any():
        raise ValueError("breakpoints must be strictly increasing")
    if (rt < 0).any():
        raise ValueError("rates must be non-negative")
    segments = []
    for k in range(rt.size):
        if rt[k] == 0.0:
            continue
        seg = poisson_arrivals(rt[k], bp[k + 1] - bp[k], rng) + bp[k]
        segments.append(seg)
    if not segments:
        return np.empty(0)
    out = np.concatenate(segments)
    out.sort()
    return out


def thinned_poisson_arrivals(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    rate_max: float,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Non-homogeneous Poisson arrivals by Lewis–Shedler thinning.

    ``rate_fn`` must be vectorised and bounded above by ``rate_max`` on
    ``[0, horizon)``; candidates from a rate-``rate_max`` process are kept
    with probability ``rate_fn(t)/rate_max``.
    """
    if rate_max <= 0.0:
        raise ValueError(f"rate_max must be positive, got {rate_max}")
    candidates = poisson_arrivals(rate_max, horizon, rng)
    if candidates.size == 0:
        return candidates
    values = np.asarray(rate_fn(candidates), dtype=float)
    if (values < -1e-12).any() or (values > rate_max * (1.0 + 1e-9)).any():
        raise ValueError("rate_fn must satisfy 0 <= rate_fn(t) <= rate_max")
    keep = rng.uniform(0.0, 1.0, candidates.size) < values / rate_max
    return candidates[keep]


def superpose(*streams: np.ndarray) -> np.ndarray:
    """Merge sorted arrival streams into one sorted stream.

    By the superposition theorem the merge of independent Poisson streams is
    Poisson with the summed rate — exactly the consolidated-workload arrival
    process of the paper's Eq. (4) derivation.
    """
    nonempty = [np.asarray(s, dtype=float) for s in streams if len(s)]
    if not nonempty:
        return np.empty(0)
    out = np.concatenate(nonempty)
    out.sort()
    return out


@dataclass(frozen=True)
class MarkedArrivals:
    """Arrival times paired with the index of the service each belongs to."""

    times: np.ndarray
    marks: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.marks.shape:
            raise ValueError("times and marks must have identical shape")
        if self.times.size and (np.diff(self.times) < 0).any():
            raise ValueError("times must be sorted")

    def __len__(self) -> int:
        return int(self.times.size)

    def for_service(self, index: int) -> np.ndarray:
        """Arrival times belonging to service ``index``."""
        return self.times[self.marks == index]


def superpose_marked(streams: Sequence[np.ndarray]) -> MarkedArrivals:
    """Merge per-service streams, remembering which service emitted each.

    The consolidated simulation needs the mark (a request for service ``i``
    is served at rate ``mu_ij * a_ij``) while the dedicated simulation can
    use the raw per-service streams directly.
    """
    times_parts = []
    marks_parts = []
    for i, s in enumerate(streams):
        arr = np.asarray(s, dtype=float)
        times_parts.append(arr)
        marks_parts.append(np.full(arr.size, i, dtype=np.int64))
    if not times_parts:
        return MarkedArrivals(np.empty(0), np.empty(0, dtype=np.int64))
    times = np.concatenate(times_parts)
    marks = np.concatenate(marks_parts)
    order = np.argsort(times, kind="stable")
    return MarkedArrivals(times[order], marks[order])


def interarrival_times(arrivals: np.ndarray) -> np.ndarray:
    """Gaps between consecutive arrivals (prepending time zero).

    For a Poisson stream these are iid exponential; the statistical tests
    use this to verify generator correctness.
    """
    arr = np.asarray(arrivals, dtype=float)
    if arr.size == 0:
        return np.empty(0)
    return np.diff(arr, prepend=0.0)
