"""Erlang fixed-point (reduced-load) approximation for loss networks.

The paper sizes each resource independently and takes the max (Fig. 4).
That ignores a second-order effect the full loss network exhibits: a
request blocked on resource A never occupies resource B, so each
resource's *effective* offered load is thinned by the blocking of the
others.  The classical Erlang fixed-point approximation (Kelly, 1986)
captures exactly this:

    B_j = E_{n_j}( sum_i rho_ij * prod_{k != j, k in R_i} (1 - B_k) )

iterated to convergence, where ``R_i`` is the set of resources service
``i`` needs and ``rho_ij`` its offered load on resource ``j``.  Per-service
acceptance then multiplies across its resources:

    P_accept(i) = prod_{j in R_i} (1 - B_j)   (independence approximation)

This module provides the fixed point as a refinement layer over the
paper's model: same inputs, strictly more faithful blocking estimates,
validated against the discrete-event loss network in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .erlang import erlang_b

__all__ = ["FixedPointResult", "erlang_fixed_point", "fixed_point_for_inputs"]

_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class FixedPointResult:
    """Converged reduced-load approximation."""

    per_resource_blocking: Mapping[str, float]
    per_service_loss: Mapping[str, float]
    reduced_loads: Mapping[str, float]
    iterations: int
    converged: bool

    @property
    def worst_service_loss(self) -> float:
        return max(self.per_service_loss.values(), default=0.0)


def erlang_fixed_point(
    offered_loads: Mapping[str, Mapping[str, float]],
    capacities: Mapping[str, int],
    tol: float = 1e-10,
    damping: float = 0.5,
) -> FixedPointResult:
    """Solve the Erlang fixed point.

    Parameters
    ----------
    offered_loads:
        ``offered_loads[service][resource] = rho_ij`` (only resources the
        service actually uses; zero entries are allowed and ignored).
    capacities:
        ``capacities[resource] = n_j`` units (servers) of each resource.
    tol:
        Convergence threshold on the max blocking change per sweep.
    damping:
        Under-relaxation factor in (0, 1]; 1 = plain successive
        substitution.  Damping guarantees progress on oscillatory
        instances (the fixed point is unique for loss networks, but plain
        iteration can ping-pong).
    """
    if not offered_loads:
        raise ValueError("at least one service required")
    if not capacities:
        raise ValueError("at least one resource required")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping}")
    for resource, n in capacities.items():
        if n < 0:
            raise ValueError(f"capacity[{resource}] must be non-negative, got {n}")
    for service, loads in offered_loads.items():
        for resource, rho in loads.items():
            if rho < 0.0:
                raise ValueError(
                    f"offered load for {service}/{resource} must be >= 0, got {rho}"
                )
            if rho > 0.0 and resource not in capacities:
                raise KeyError(
                    f"service {service!r} loads unknown resource {resource!r}"
                )

    resources = list(capacities)
    blocking = {j: 0.0 for j in resources}
    iterations = 0
    converged = False
    while iterations < _MAX_ITERATIONS:
        iterations += 1
        max_delta = 0.0
        for j in resources:
            reduced = 0.0
            for service, loads in offered_loads.items():
                rho = loads.get(j, 0.0)
                if rho <= 0.0:
                    continue
                thin = 1.0
                for k, rho_k in loads.items():
                    if k != j and rho_k > 0.0:
                        thin *= 1.0 - blocking[k]
                reduced += rho * thin
            new_b = erlang_b(capacities[j], reduced)
            updated = blocking[j] + damping * (new_b - blocking[j])
            max_delta = max(max_delta, abs(updated - blocking[j]))
            blocking[j] = updated
        if max_delta < tol:
            converged = True
            break

    reduced_loads = {}
    for j in resources:
        reduced = 0.0
        for service, loads in offered_loads.items():
            rho = loads.get(j, 0.0)
            if rho <= 0.0:
                continue
            thin = 1.0
            for k, rho_k in loads.items():
                if k != j and rho_k > 0.0:
                    thin *= 1.0 - blocking[k]
            reduced += rho * thin
        reduced_loads[j] = reduced

    per_service = {}
    for service, loads in offered_loads.items():
        accept = 1.0
        for j, rho in loads.items():
            if rho > 0.0:
                accept *= 1.0 - blocking[j]
        per_service[service] = 1.0 - accept

    return FixedPointResult(
        per_resource_blocking=dict(blocking),
        per_service_loss=per_service,
        reduced_loads=reduced_loads,
        iterations=iterations,
        converged=converged,
    )


def fixed_point_for_inputs(inputs, servers: int, virtualized: bool = True):
    """Fixed-point blocking of the consolidated pool described by ``inputs``.

    Builds the loss-network description directly from a
    :class:`~repro.core.inputs.ModelInputs`: every resource of the pool has
    ``servers`` units; service ``i`` offers ``lambda_i/(mu_ij a_ij)``
    erlangs to resource ``j`` (native rates when ``virtualized=False``).
    This is the refinement of the paper's per-resource max sizing.
    """
    import math

    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    offered: dict[str, dict[str, float]] = {}
    resources: dict[str, int] = {}
    for service in inputs.services:
        loads: dict[str, float] = {}
        for kind in service.service_rates:
            mu = service.effective_mu(kind) if virtualized else service.mu(kind)
            if math.isinf(mu):
                continue
            loads[str(kind)] = service.arrival_rate / mu
            resources[str(kind)] = servers
        if loads:
            offered[service.name] = loads
    if not offered:
        raise ValueError("no finite resource demands in inputs")
    return erlang_fixed_point(offered, resources)
