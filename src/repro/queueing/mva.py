"""Exact Mean Value Analysis for closed queueing networks.

TPC-W — the paper's DB workload — is a *closed* benchmark: a fixed
population of emulated browsers cycles between think time and service.
The right analytic tool for such systems is MVA (Reiser & Lavenberg):
for a product-form closed network of single-server FIFO stations plus a
delay (think) station, exact MVA computes throughput and per-station
response times by recursion over the population:

    R_k(n) = D_k * (1 + Q_k(n-1))          (queueing station)
    X(n)   = n / (Z + sum_k R_k(n))
    Q_k(n) = X(n) * R_k(n)

Also provided: the classical operational-law *asymptotic bounds*
(``X(n) <= min(n/(Z + D), 1/D_max)``) that the TPC-W throughput curves
(Fig. 8's "wips upper limit") saturate against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["MvaResult", "exact_mva", "throughput_bounds"]


@dataclass(frozen=True)
class MvaResult:
    """Exact MVA solution at one population size."""

    population: int
    throughput: float
    response_times: Mapping[str, float]
    queue_lengths: Mapping[str, float]
    think_time: float

    @property
    def cycle_time(self) -> float:
        """Mean time around the loop (think + all stations)."""
        return self.think_time + sum(self.response_times.values())

    @property
    def bottleneck(self) -> str:
        """Station with the largest response time."""
        return max(self.response_times, key=lambda k: self.response_times[k])

    def utilization(self, demands: Mapping[str, float]) -> dict[str, float]:
        """Per-station utilization ``X * D_k`` (utilization law)."""
        return {k: self.throughput * d for k, d in demands.items()}


def exact_mva(
    service_demands: Mapping[str, float],
    think_time: float,
    population: int,
) -> MvaResult:
    """Exact MVA for single-server stations + one delay station.

    ``service_demands[k]`` is station ``k``'s total service demand per
    interaction (seconds); ``think_time`` the delay-station demand ``Z``;
    ``population`` the number of circulating customers (EBs).
    """
    if not service_demands:
        raise ValueError("at least one station required")
    for name, d in service_demands.items():
        if d <= 0.0:
            raise ValueError(f"demand for {name!r} must be positive, got {d}")
    if think_time < 0.0:
        raise ValueError(f"think time must be non-negative, got {think_time}")
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population}")

    names = list(service_demands)
    demands = [service_demands[k] for k in names]
    queues = [0.0] * len(names)
    throughput = 0.0
    responses = [0.0] * len(names)
    for n in range(1, population + 1):
        responses = [d * (1.0 + q) for d, q in zip(demands, queues)]
        cycle = think_time + sum(responses)
        throughput = n / cycle
        queues = [throughput * r for r in responses]

    return MvaResult(
        population=population,
        throughput=throughput,
        response_times=dict(zip(names, responses)),
        queue_lengths=dict(zip(names, queues)),
        think_time=think_time,
    )


def throughput_bounds(
    service_demands: Mapping[str, float],
    think_time: float,
    population: int,
) -> tuple[float, float]:
    """Operational-law bounds ``(lower-ish optimistic, hard upper)``.

    Returns ``(n/(Z + D_total), 1/D_max)``; the true closed-network
    throughput never exceeds the min of the two, and approaches each in
    its regime (light load / saturation).
    """
    if not service_demands:
        raise ValueError("at least one station required")
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population}")
    d_total = sum(service_demands.values())
    d_max = max(service_demands.values())
    if d_max <= 0.0:
        raise ValueError("demands must be positive")
    light = population / (think_time + d_total) if population else 0.0
    saturation = 1.0 / d_max
    return light, saturation
