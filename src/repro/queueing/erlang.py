"""Erlang loss (Erlang B) and delay (Erlang C) formulas — scalar surface.

This is the mathematical heart of the paper: the utility analytic model
computes, for every (service, resource) pair, the minimum number of servers
``n`` such that the Erlang-B blocking probability ``E_n(rho)`` drops to the
target loss probability ``B``.  Section III.A of the paper gives the
iterative recurrence (their Eq. 2)::

    E_0(rho) = 1
    E_n(rho) = rho * E_{n-1}(rho) / (n + rho * E_{n-1}(rho))

The implementations live in :mod:`repro.queueing.vectorized`, which solves
whole (rho, B) grids in one call.  This module keeps the historical scalar
API as thin wrappers over the vectorized core's scalar fast path.

Compatibility contract (see DESIGN.md): every function here accepts and
returns plain Python scalars, executes the exact float64 operation sequence
the pre-vectorization code executed (so golden pins and the jobs∈{1,2,4}
determinism suite stay bit-identical), and raises ``ValueError`` with text
identical to the batched entry points.
"""

from __future__ import annotations

import warnings

from . import vectorized as _vec
from .vectorized import (  # noqa: F401  (re-exported for compatibility)
    _MAX_SERVERS,
    _record_inversion,
    _validate_load,
    _validate_target,
)

__all__ = [
    "offered_load",
    "erlang_b",
    "erlang_b_recurrence",
    "erlang_b_log",
    "erlang_b_continuous",
    "erlang_b_derivative_n",
    "erlang_c",
    "min_servers",
    "min_servers_continuous",
    "max_load_for_blocking",
]


def offered_load(arrival_rate: float, service_rate: float) -> float:
    """Traffic intensity ``rho = lambda / mu`` (paper Eq. 3).

    ``service_rate = inf`` (a resource the service barely touches, like the
    DB service's disk I/O in the paper, ``mu_di ~ inf``) yields zero load.
    """
    return _vec.offered_load(float(arrival_rate), float(service_rate))


def erlang_b(n: int, rho: float) -> float:
    """Blocking probability of an M/G/n/n loss system via the recurrence.

    A verbatim implementation of the paper's Eq. (2).  Exact and numerically
    stable (every iterate lies in ``(0, 1]``), cost ``O(n)``.  For whole
    grids, pass arrays to :func:`repro.queueing.vectorized.erlang_b`.
    """
    return _vec.erlang_b(int(n), float(rho))


def erlang_b_recurrence(n: int, rho: float) -> float:
    """Deprecated alias of :func:`erlang_b` (the recurrence *is* erlang_b).

    Kept as a shim for pre-vectorization callers; use :func:`erlang_b`
    directly (scalar) or :func:`repro.queueing.vectorized.erlang_b` (grids).
    """
    warnings.warn(
        "erlang_b_recurrence is deprecated; use erlang_b "
        "(or repro.queueing.vectorized.erlang_b for grids)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _vec.erlang_b(int(n), float(rho))


def erlang_b_log(n: int, rho: float) -> float:
    """Erlang B evaluated in the log domain.

    Mathematically identical to :func:`erlang_b` but computed as
    ``exp(log(rho^n/n!) - logsumexp_k log(rho^k/k!))``, which is robust for
    enormous ``rho``/``n`` (millions of servers) where naive term-by-term
    summation of ``rho^k/k!`` would overflow long before the recurrence
    finishes.  Used for cross-validation and the very-large-scale planner.
    """
    return _vec.erlang_b_log(int(n), float(rho))


def erlang_b_continuous(n: float, rho: float) -> float:
    """Continuous extension of Erlang B to real ``n >= 0``.

    ``E_n(rho) = g / Q`` where ``g = exp(n log rho - rho - gammaln(n+1))``
    is the Poisson(rho) "pmf" at ``n`` and ``Q = gammaincc(n+1, rho)`` —
    the survival function of a Gamma(n+1) variate at ``rho`` equals
    ``P(Poisson(rho) <= n)``.
    """
    return _vec.erlang_b_continuous(float(n), float(rho))


def erlang_b_derivative_n(n: float, rho: float, eps: float = 1e-6) -> float:
    """Central-difference derivative of the continuous Erlang B in ``n``.

    Negative everywhere (adding capacity reduces blocking); exposed for the
    sensitivity analyses in the ablation benchmarks.
    """
    lo = max(0.0, n - eps)
    return (erlang_b_continuous(n + eps, rho) - erlang_b_continuous(lo, rho)) / (
        n + eps - lo
    )


def erlang_c(n: int, rho: float) -> float:
    """Erlang C: probability of queueing in an M/M/n delay system.

    Defined for ``rho < n`` (stability); related to Erlang B by
    ``C = n*B / (n - rho*(1-B))``.  Not used by the headline model (which is
    a loss system) but needed by the response-time estimates in the
    data-center simulation's sanity checks.
    """
    if n <= 0:
        raise ValueError(f"number of servers must be positive, got {n}")
    _validate_load(rho)
    if rho >= n:
        return 1.0
    b = erlang_b(n, rho)
    return n * b / (n - rho * (1.0 - b))


def min_servers(rho: float, blocking_target: float) -> int:
    """Smallest ``n`` with ``E_n(rho) <= blocking_target``.

    The inner loop of the paper's Fig. 4 algorithm: iterate the recurrence,
    incrementing ``n`` until the target is first met.  ``O(n_final)``
    overall since each step reuses the previous blocking value.  For whole
    grids, pass arrays to :func:`repro.queueing.vectorized.min_servers`.

    When observability is enabled (:mod:`repro.obs`) each call records the
    iteration count and elapsed time under the ``erlang_inversion_*``
    metrics with ``method="recurrence"``.
    """
    return _vec.min_servers(float(rho), float(blocking_target))


def min_servers_continuous(rho: float, blocking_target: float) -> int:
    """Inversion via bisection on the continuous extension.

    Produces the same integer answer as :func:`min_servers` but in
    ``O(log n)`` Erlang evaluations; preferred when ``rho`` is huge.
    Records ``erlang_inversion_*`` metrics with ``method="bisection"``
    when observability is enabled.
    """
    return _vec.min_servers_continuous(float(rho), float(blocking_target))


def max_load_for_blocking(n: int, blocking_target: float, tol: float = 1e-10) -> float:
    """Largest offered load ``rho`` such that ``E_n(rho) <= blocking_target``.

    The dual of :func:`min_servers`; used when answering "how much workload
    can a fixed consolidated pool of N servers absorb at loss <= B?" —
    e.g. to regenerate Table I rows from a fixed (M, N) pair.
    """
    if n <= 0:
        raise ValueError(f"number of servers must be positive, got {n}")
    _validate_target(blocking_target)
    lo, hi = 0.0, float(n)
    # E_n is increasing in rho; expand hi until blocking exceeds the target.
    while erlang_b(n, hi) <= blocking_target:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - defensive
            raise RuntimeError("max_load_for_blocking failed to bracket")
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if erlang_b(n, mid) <= blocking_target:
            lo = mid
        else:
            hi = mid
    return lo
