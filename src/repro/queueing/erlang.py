"""Erlang loss (Erlang B) and delay (Erlang C) formulas.

This is the mathematical heart of the paper: the utility analytic model
computes, for every (service, resource) pair, the minimum number of servers
``n`` such that the Erlang-B blocking probability ``E_n(rho)`` drops to the
target loss probability ``B``.  Section III.A of the paper gives the
iterative recurrence (their Eq. 2)::

    E_0(rho) = 1
    E_n(rho) = rho * E_{n-1}(rho) / (n + rho * E_{n-1}(rho))

which we implement directly (:func:`erlang_b`), plus a log-domain variant
that stays finite for very large ``rho`` (:func:`erlang_b_log`), a
continuous extension in ``n`` via the regularised incomplete gamma function
(:func:`erlang_b_continuous`) used for cross-validation, and the inversion
:func:`min_servers` implementing the paper's Fig. 4 inner loop.
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np
from scipy import special

from ..obs import get_registry

__all__ = [
    "offered_load",
    "erlang_b",
    "erlang_b_recurrence",
    "erlang_b_log",
    "erlang_b_continuous",
    "erlang_b_derivative_n",
    "erlang_c",
    "min_servers",
    "min_servers_continuous",
    "max_load_for_blocking",
]

_MAX_SERVERS = 50_000_000


def _validate_load(rho: float) -> None:
    """Reject loads the formulas cannot answer sensibly.

    A NaN load slips through ``rho < 0`` comparisons and silently turns
    every downstream answer into nonsense (``min_servers`` used to return
    0 for it); an infinite load sends the inversion scanning toward the
    50M-server ceiling.  Both are caller bugs — fail loudly.
    """
    if not math.isfinite(rho):
        raise ValueError(f"offered load must be finite, got {rho}")
    if rho < 0.0:
        raise ValueError(f"offered load must be non-negative, got {rho}")


def _validate_target(blocking_target: float) -> None:
    """Blocking targets are probabilities strictly inside (0, 1).

    ``B = 0`` has no finite answer (blocking is positive for every finite
    ``n`` when ``rho > 0``) and ``B = 1`` makes every ``n`` a solution;
    NaN fails the chained comparison too, but gets its own message.
    """
    if not math.isfinite(blocking_target):
        raise ValueError(f"blocking target must be finite, got {blocking_target}")
    if not 0.0 < blocking_target < 1.0:
        raise ValueError(
            f"blocking target must lie in (0, 1), got {blocking_target}"
        )


def offered_load(arrival_rate: float, service_rate: float) -> float:
    """Traffic intensity ``rho = lambda / mu`` (paper Eq. 3).

    ``service_rate = inf`` (a resource the service barely touches, like the
    DB service's disk I/O in the paper, ``mu_di ~ inf``) yields zero load.
    """
    if not math.isfinite(arrival_rate):
        raise ValueError(f"arrival rate must be finite, got {arrival_rate}")
    if arrival_rate < 0.0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate}")
    if math.isnan(service_rate):
        raise ValueError(f"service rate must not be NaN, got {service_rate}")
    if service_rate <= 0.0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    if math.isinf(service_rate):
        return 0.0
    return arrival_rate / service_rate


def erlang_b_recurrence(n: int, rho: float) -> float:
    """Blocking probability of an M/G/n/n loss system via the recurrence.

    This is a verbatim implementation of the paper's Eq. (2).  Exact and
    numerically stable (every iterate lies in ``(0, 1]``), cost ``O(n)``.
    """
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    b = 1.0
    for k in range(1, n + 1):
        b = rho * b / (k + rho * b)
    return b


def erlang_b(n: int, rho: float) -> float:
    """Blocking probability ``E_n(rho)``; alias of the recurrence form."""
    return erlang_b_recurrence(n, rho)


def erlang_b_log(n: int, rho: float) -> float:
    """Erlang B evaluated in the log domain.

    Mathematically identical to :func:`erlang_b` but computed as
    ``exp(log(rho^n/n!) - logsumexp_k log(rho^k/k!))``, which is robust for
    enormous ``rho``/``n`` (millions of servers) where naive term-by-term
    summation of ``rho^k/k!`` would overflow long before the recurrence
    finishes.  Used for cross-validation and the very-large-scale planner.
    """
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    k = np.arange(n + 1)
    log_terms = k * math.log(rho) - special.gammaln(k + 1)
    return float(np.exp(log_terms[-1] - special.logsumexp(log_terms)))


def erlang_b_continuous(n: float, rho: float) -> float:
    """Continuous extension of Erlang B to real ``n >= 0``.

    Uses the classical identity ``1/E_n(rho) = rho^{-n} e^{rho} Gamma(n+1)
    Q(n+1, rho) * ...`` expressed via the regularised upper incomplete gamma
    function::

        E_n(rho) = rho^n e^{-rho} / Gamma(n+1) / Q(n+1, rho)... (equivalent)

    computed here through the numerically robust form

        E_n(rho) = pdf / (pdf + P(n+1, rho) * 0 + Q ... )

    Concretely we use ``E_n(rho) = g / Q`` where ``g = exp(n log rho - rho -
    gammaln(n+1))`` is the Poisson(rho) "pmf" at ``n`` and ``Q =
    gammaincc(n+1, rho) + g * 0`` — the survival function of a Gamma(n+1)
    variate at ``rho`` equals ``P(Poisson(rho) <= n)``.
    """
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    log_g = n * math.log(rho) - rho - special.gammaln(n + 1.0)
    # P(Poisson(rho) <= n) == gammaincc(n+1, rho)  (regularised upper gamma).
    cdf = special.gammaincc(n + 1.0, rho)
    if cdf <= 0.0:
        return 1.0
    return float(min(1.0, math.exp(log_g) / cdf))


def erlang_b_derivative_n(n: float, rho: float, eps: float = 1e-6) -> float:
    """Central-difference derivative of the continuous Erlang B in ``n``.

    Negative everywhere (adding capacity reduces blocking); exposed for the
    sensitivity analyses in the ablation benchmarks.
    """
    lo = max(0.0, n - eps)
    return (erlang_b_continuous(n + eps, rho) - erlang_b_continuous(lo, rho)) / (
        n + eps - lo
    )


def erlang_c(n: int, rho: float) -> float:
    """Erlang C: probability of queueing in an M/M/n delay system.

    Defined for ``rho < n`` (stability); related to Erlang B by
    ``C = n*B / (n - rho*(1-B))``.  Not used by the headline model (which is
    a loss system) but needed by the response-time estimates in the
    data-center simulation's sanity checks.
    """
    if n <= 0:
        raise ValueError(f"number of servers must be positive, got {n}")
    _validate_load(rho)
    if rho >= n:
        return 1.0
    b = erlang_b(n, rho)
    return n * b / (n - rho * (1.0 - b))


def min_servers(rho: float, blocking_target: float) -> int:
    """Smallest ``n`` with ``E_n(rho) <= blocking_target``.

    This is the inner loop of the paper's Fig. 4 algorithm: iterate the
    recurrence, incrementing ``n`` until the target is first met.  The
    recurrence makes the scan ``O(n_final)`` overall since each step reuses
    the previous blocking value.

    When observability is enabled (:mod:`repro.obs`) each call records the
    iteration count and elapsed time under the ``erlang_inversion_*``
    metrics with ``method="recurrence"``.
    """
    _validate_target(blocking_target)
    _validate_load(rho)
    if rho == 0.0:
        return 0
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    b = 1.0  # E_0(rho) = 1 for rho > 0
    n = 0
    while b > blocking_target:
        n += 1
        b = rho * b / (n + rho * b)
        if n > _MAX_SERVERS:  # pragma: no cover - defensive
            raise RuntimeError(
                f"min_servers did not converge below {blocking_target} "
                f"within {_MAX_SERVERS} servers (rho={rho})"
            )
    if registry.enabled:
        _record_inversion(registry, "recurrence", n, perf_counter() - t0)
    return n


def _record_inversion(registry, method: str, iterations: int, elapsed: float) -> None:
    """Account one Erlang inversion on an enabled registry."""
    labels = {"method": method}
    registry.counter(
        "erlang_inversion_calls_total",
        help="Erlang-B inversions solved",
        labels=labels,
    ).inc()
    registry.counter(
        "erlang_inversion_iterations_total",
        help="recurrence steps / bisection evaluations spent inverting",
        labels=labels,
    ).inc(iterations)
    registry.timer(
        "erlang_inversion_seconds",
        help="wall time per Erlang-B inversion",
        labels=labels,
    ).observe(elapsed)


def min_servers_continuous(rho: float, blocking_target: float) -> int:
    """Inversion via bisection on the continuous extension.

    Produces the same integer answer as :func:`min_servers` but in
    ``O(log n)`` Erlang evaluations; preferred when ``rho`` is huge.
    Records ``erlang_inversion_*`` metrics with ``method="bisection"``
    when observability is enabled.
    """
    _validate_target(blocking_target)
    _validate_load(rho)
    if rho == 0.0:
        return 0
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    evaluations = 0
    # Bracket: blocking at n=0 is 1; grow hi geometrically until below target.
    hi = max(1, int(rho))
    while erlang_b_continuous(hi, rho) > blocking_target:
        evaluations += 1
        hi *= 2
        if hi > _MAX_SERVERS:  # pragma: no cover - defensive
            raise RuntimeError("min_servers_continuous failed to bracket")
    lo = 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        evaluations += 1
        if erlang_b_continuous(mid, rho) > blocking_target:
            lo = mid
        else:
            hi = mid
    # The continuous extension agrees with the discrete formula at integers,
    # but guard against floating-point skew at the boundary.
    while hi > 0 and erlang_b(hi - 1, rho) <= blocking_target:
        evaluations += 1
        hi -= 1
    while erlang_b(hi, rho) > blocking_target:
        evaluations += 1
        hi += 1
    if registry.enabled:
        _record_inversion(registry, "bisection", evaluations, perf_counter() - t0)
    return hi


def max_load_for_blocking(n: int, blocking_target: float, tol: float = 1e-10) -> float:
    """Largest offered load ``rho`` such that ``E_n(rho) <= blocking_target``.

    The dual of :func:`min_servers`; used when answering "how much workload
    can a fixed consolidated pool of N servers absorb at loss <= B?" —
    e.g. to regenerate Table I rows from a fixed (M, N) pair.
    """
    if n <= 0:
        raise ValueError(f"number of servers must be positive, got {n}")
    _validate_target(blocking_target)
    lo, hi = 0.0, float(n)
    # E_n is increasing in rho; expand hi until blocking exceeds the target.
    while erlang_b(n, hi) <= blocking_target:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - defensive
            raise RuntimeError("max_load_for_blocking failed to bracket")
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if erlang_b(n, mid) <= blocking_target:
            lo = mid
        else:
            hi = mid
    return lo
