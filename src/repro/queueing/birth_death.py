"""General birth–death chain steady-state solver.

An independent route to the Erlang-B result: the M/M/n/n loss system is the
birth–death chain with births ``lambda`` (states 0..n-1) and deaths
``k * mu`` (state k).  Solving the balance equations numerically and reading
off ``pi_n`` must agree with the closed-form recurrence — the tests use this
as a cross-check that is derivation-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BirthDeathChain", "loss_system_chain"]


@dataclass(frozen=True)
class BirthDeathChain:
    """A finite birth–death chain on states ``0..n``.

    ``birth_rates[k]`` is the transition rate ``k -> k+1`` (length n);
    ``death_rates[k]`` is the rate ``k+1 -> k`` (length n).
    """

    birth_rates: np.ndarray
    death_rates: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.birth_rates, dtype=float)
        d = np.asarray(self.death_rates, dtype=float)
        if b.ndim != 1 or b.shape != d.shape:
            raise ValueError("birth and death rate vectors must be 1-D, equal length")
        if (b < 0).any() or (d <= 0).any():
            raise ValueError("birth rates must be >= 0 and death rates > 0")
        object.__setattr__(self, "birth_rates", b)
        object.__setattr__(self, "death_rates", d)

    @property
    def num_states(self) -> int:
        return self.birth_rates.size + 1

    def stationary_distribution(self) -> np.ndarray:
        """Steady-state probabilities via detailed balance.

        ``pi_{k+1} = pi_k * b_k / d_k``; computed in the log domain so very
        long chains with extreme rate ratios do not overflow.
        """
        with np.errstate(divide="ignore"):
            log_ratios = np.log(self.birth_rates) - np.log(self.death_rates)
        log_pi = np.concatenate(([0.0], np.cumsum(log_ratios)))
        log_pi -= log_pi.max()
        pi = np.exp(log_pi)
        return pi / pi.sum()

    def stationary_distribution_linear(self) -> np.ndarray:
        """Steady state by solving the generator's null space directly.

        O(n^3); retained as a second, numerically independent method for the
        validation tests (it does not assume detailed balance).
        """
        n = self.num_states
        q = np.zeros((n, n))
        for k in range(n - 1):
            q[k, k + 1] = self.birth_rates[k]
            q[k + 1, k] = self.death_rates[k]
        np.fill_diagonal(q, -q.sum(axis=1))
        # Replace one balance equation with the normalisation constraint.
        a = q.T.copy()
        a[-1, :] = 1.0
        rhs = np.zeros(n)
        rhs[-1] = 1.0
        pi = np.linalg.solve(a, rhs)
        if (pi < -1e-9).any():
            raise ArithmeticError("negative stationary probability; singular chain?")
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def mean_state(self) -> float:
        """Expected state value in steady state (mean busy servers)."""
        pi = self.stationary_distribution()
        return float(np.arange(self.num_states) @ pi)


def loss_system_chain(arrival_rate: float, service_rate: float, servers: int) -> BirthDeathChain:
    """Birth–death chain of the M/M/n/n loss system.

    ``pi_n`` of the returned chain equals the Erlang-B blocking probability
    ``E_n(lambda/mu)`` — the PASTA property makes the time-stationary
    all-busy probability coincide with the arriving-request loss fraction,
    which is the equivalence Section III.A of the paper leans on.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if arrival_rate <= 0.0 or service_rate <= 0.0:
        raise ValueError("rates must be positive")
    births = np.full(servers, arrival_rate)
    deaths = service_rate * np.arange(1, servers + 1)
    return BirthDeathChain(births, deaths)
