"""Batched (numpy-vectorized) Erlang-B core: whole grids in one call.

This module is the canonical implementation of the Erlang loss formula and
its inversions for the whole package.  Every function accepts either plain
Python scalars — in which case it runs the exact same float64 operation
sequence the historical scalar code ran and returns a Python scalar — or
numpy arrays (any broadcastable shapes, including 0-d), in which case the
computation is vectorized over the full broadcast grid:

- :func:`erlang_b` — the paper's Eq. (2) recurrence, run in *lockstep*
  over the whole grid: iteration ``k`` applies ``b = rho*b/(k + rho*b)``
  simultaneously to every grid point still needing it, with the active
  set compacted as points finish.  Each element therefore executes
  bit-for-bit the same IEEE-754 sequence as the scalar recurrence, so
  scalar and vectorized results are **identical**, not merely close.
- :func:`min_servers` — the Fig. 4 inner loop as a lockstep scan: grow
  ``n`` once per step for every unsatisfied point at once.  Bit-identical
  to the scalar scan for the same reason, and the workhorse behind the
  million-point sweeps (see ``benchmarks``/``vectorized_grid``).
- :func:`erlang_b_log` / :func:`erlang_b_continuous` — log-domain /
  continuous extension via vectorized ``gammaincc``; the batched
  ``erlang_b_log`` agrees with the scalar logsumexp form to ~1e-10
  relative (they are the same identity, ``sum_k rho^k/k! = e^rho *
  P(Poisson(rho) <= n)``, evaluated two ways).
- :func:`min_servers_continuous` — batched geometric bracketing plus
  bisection on the continuous extension, polished at the boundary with
  exact recurrence evaluations so the integer answer always equals
  :func:`min_servers`'s.

Validation is shared with the scalar wrappers in
:mod:`repro.queueing.erlang`: non-finite or out-of-range inputs raise
``ValueError`` with *identical* message text on both entry points; for
arrays the message reports the first offending element in C order.

Shape contract: scalar inputs (Python or numpy scalars) return Python
``float``/``int``; any ``ndarray`` input (including 0-d) returns an
``ndarray`` of the broadcast shape.
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np
from scipy import special

from ..obs import get_registry

__all__ = [
    "erlang_b",
    "erlang_b_log",
    "erlang_b_continuous",
    "min_servers",
    "min_servers_continuous",
    "offered_load",
]

_MAX_SERVERS = 50_000_000

_SCALAR_TYPES = (int, float, np.integer, np.floating)


# ---------------------------------------------------------------------------
# validation (single source of truth for scalar AND vectorized messages)
# ---------------------------------------------------------------------------


def _validate_load(rho: float) -> None:
    """Reject loads the formulas cannot answer sensibly.

    A NaN load slips through ``rho < 0`` comparisons and silently turns
    every downstream answer into nonsense (``min_servers`` used to return
    0 for it); an infinite load sends the inversion scanning toward the
    50M-server ceiling.  Both are caller bugs — fail loudly.
    """
    if not math.isfinite(rho):
        raise ValueError(f"offered load must be finite, got {rho}")
    if rho < 0.0:
        raise ValueError(f"offered load must be non-negative, got {rho}")


def _validate_target(blocking_target: float) -> None:
    """Blocking targets are probabilities strictly inside (0, 1).

    ``B = 0`` has no finite answer (blocking is positive for every finite
    ``n`` when ``rho > 0``) and ``B = 1`` makes every ``n`` a solution;
    NaN fails the chained comparison too, but gets its own message.
    """
    if not math.isfinite(blocking_target):
        raise ValueError(f"blocking target must be finite, got {blocking_target}")
    if not 0.0 < blocking_target < 1.0:
        raise ValueError(
            f"blocking target must lie in (0, 1), got {blocking_target}"
        )


def _first(arr: np.ndarray, mask: np.ndarray) -> float:
    """First offending element in C order (for array error messages)."""
    flat_mask = np.ravel(mask)
    return float(np.ravel(arr)[int(np.argmax(flat_mask))])


def _validate_load_array(rho: np.ndarray) -> None:
    """Array counterpart of :func:`_validate_load`; same message text."""
    bad = ~np.isfinite(rho)
    if bad.any():
        raise ValueError(f"offered load must be finite, got {_first(rho, bad)}")
    neg = rho < 0.0
    if neg.any():
        raise ValueError(
            f"offered load must be non-negative, got {_first(rho, neg)}"
        )


def _validate_target_array(target: np.ndarray) -> None:
    """Array counterpart of :func:`_validate_target`; same message text."""
    bad = ~np.isfinite(target)
    if bad.any():
        raise ValueError(
            f"blocking target must be finite, got {_first(target, bad)}"
        )
    out = ~((0.0 < target) & (target < 1.0))
    if out.any():
        raise ValueError(
            f"blocking target must lie in (0, 1), got {_first(target, out)}"
        )


def _validate_servers_array(n: np.ndarray) -> np.ndarray:
    """Coerce a server-count array to int64, rejecting negatives/fractions."""
    if n.dtype.kind not in "iu":
        if not np.isfinite(n).all():
            raise ValueError(
                f"number of servers must be finite, got {_first(n, ~np.isfinite(n))}"
            )
        if (n != np.floor(n)).any():
            raise ValueError(
                "number of servers must be an integer, "
                f"got {_first(n, n != np.floor(n))}"
            )
    out = n.astype(np.int64)
    neg = out < 0
    if neg.any():
        raise ValueError(
            f"number of servers must be non-negative, got {int(_first(out, neg))}"
        )
    return out


def _is_scalar(x) -> bool:
    return isinstance(x, _SCALAR_TYPES)


def _broadcast(*arrays: np.ndarray) -> tuple[tuple[int, ...], list[np.ndarray]]:
    """Broadcast to a common shape; returns (shape, flattened float copies)."""
    broadcast = np.broadcast_arrays(*arrays)
    shape = broadcast[0].shape
    return shape, [np.ascontiguousarray(a).reshape(-1) for a in broadcast]


# ---------------------------------------------------------------------------
# scalar kernels (the historical reference implementations, verbatim)
# ---------------------------------------------------------------------------


def _erlang_b_scalar(n: int, rho: float) -> float:
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    b = 1.0
    for k in range(1, n + 1):
        b = rho * b / (k + rho * b)
    return b


def _erlang_b_log_scalar(n: int, rho: float) -> float:
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    k = np.arange(n + 1)
    log_terms = k * math.log(rho) - special.gammaln(k + 1)
    return float(np.exp(log_terms[-1] - special.logsumexp(log_terms)))


def _erlang_b_continuous_scalar(n: float, rho: float) -> float:
    if n < 0:
        raise ValueError(f"number of servers must be non-negative, got {n}")
    _validate_load(rho)
    if rho == 0.0:
        return 1.0 if n == 0 else 0.0
    log_g = n * math.log(rho) - rho - special.gammaln(n + 1.0)
    # P(Poisson(rho) <= n) == gammaincc(n+1, rho)  (regularised upper gamma).
    cdf = special.gammaincc(n + 1.0, rho)
    if cdf <= 0.0:
        return 1.0
    return float(min(1.0, math.exp(log_g) / cdf))


def _min_servers_scalar(rho: float, blocking_target: float) -> int:
    _validate_target(blocking_target)
    _validate_load(rho)
    if rho == 0.0:
        return 0
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    b = 1.0  # E_0(rho) = 1 for rho > 0
    n = 0
    while b > blocking_target:
        n += 1
        b = rho * b / (n + rho * b)
        if n > _MAX_SERVERS:  # pragma: no cover - defensive
            raise RuntimeError(
                f"min_servers did not converge below {blocking_target} "
                f"within {_MAX_SERVERS} servers (rho={rho})"
            )
    if registry.enabled:
        _record_inversion(registry, "recurrence", n, perf_counter() - t0)
    return n


def _min_servers_continuous_scalar(rho: float, blocking_target: float) -> int:
    _validate_target(blocking_target)
    _validate_load(rho)
    if rho == 0.0:
        return 0
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    evaluations = 0
    # Bracket: blocking at n=0 is 1; grow hi geometrically until below target.
    hi = max(1, int(rho))
    while _erlang_b_continuous_scalar(hi, rho) > blocking_target:
        evaluations += 1
        hi *= 2
        if hi > _MAX_SERVERS:  # pragma: no cover - defensive
            raise RuntimeError("min_servers_continuous failed to bracket")
    lo = 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        evaluations += 1
        if _erlang_b_continuous_scalar(mid, rho) > blocking_target:
            lo = mid
        else:
            hi = mid
    # The continuous extension agrees with the discrete formula at integers,
    # but guard against floating-point skew at the boundary.
    while hi > 0 and _erlang_b_scalar(hi - 1, rho) <= blocking_target:
        evaluations += 1
        hi -= 1
    while _erlang_b_scalar(hi, rho) > blocking_target:
        evaluations += 1
        hi += 1
    if registry.enabled:
        _record_inversion(registry, "bisection", evaluations, perf_counter() - t0)
    return hi


def _record_inversion(registry, method: str, iterations: int, elapsed: float) -> None:
    """Account one Erlang inversion (or one batch) on an enabled registry."""
    labels = {"method": method}
    registry.counter(
        "erlang_inversion_calls_total",
        help="Erlang-B inversions solved",
        labels=labels,
    ).inc()
    registry.counter(
        "erlang_inversion_iterations_total",
        help="recurrence steps / bisection evaluations spent inverting",
        labels=labels,
    ).inc(iterations)
    registry.timer(
        "erlang_inversion_seconds",
        help="wall time per Erlang-B inversion",
        labels=labels,
    ).observe(elapsed)


# ---------------------------------------------------------------------------
# array kernels (lockstep recurrences over compacting active sets)
# ---------------------------------------------------------------------------


def _erlang_b_array(n: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Exact lockstep Eq. (2) over aligned 1-D ``(n, rho)`` arrays."""
    out = np.empty(rho.shape, dtype=np.float64)
    zero = rho == 0.0
    if zero.any():
        out[zero] = np.where(n[zero] == 0, 1.0, 0.0)
    active = np.flatnonzero(~zero)
    if active.size:
        done0 = n[active] == 0
        out[active[done0]] = 1.0  # E_0(rho) = 1 for rho > 0
        active = active[~done0]
    b = np.ones(active.size)
    rho_a = rho[active]
    n_a = n[active]
    k = 0
    while active.size:
        k += 1
        num = rho_a * b
        b = num / (k + num)
        finished = n_a == k
        if finished.any():
            out[active[finished]] = b[finished]
            keep = ~finished
            active, b, rho_a, n_a = (
                active[keep],
                b[keep],
                rho_a[keep],
                n_a[keep],
            )
    return out


def _erlang_b_at(n: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Alias of the exact kernel, used by the bisection boundary polish."""
    return _erlang_b_array(n, rho)


def _min_servers_array(rho: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Exact lockstep Fig. 4 scan over aligned 1-D ``(rho, target)`` arrays.

    Every element runs exactly the scalar scan's float sequence; elements
    are retired from the active set the step their blocking first drops to
    the target, so total arithmetic equals the scalar path's but executes
    as a handful of numpy ops per step.
    """
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    out = np.zeros(rho.shape, dtype=np.int64)
    active = np.flatnonzero(rho > 0.0)
    b = np.ones(active.size)
    rho_a = rho[active].copy()
    tgt_a = target[active].copy()
    alive = np.ones(active.size, dtype=bool)
    remaining = active.size
    num = np.empty(active.size)
    newly = np.empty(active.size, dtype=bool)
    n = 0
    iterations = 0
    while remaining:
        n += 1
        iterations += remaining
        # In-place b = rho*b / (n + rho*b): the same two IEEE-754 ops per
        # lane the scalar loop performs, so lane k's trajectory is the
        # scalar trajectory bit for bit.  Lanes that already crossed the
        # target keep iterating harmlessly (b only shrinks further); only
        # the first-crossing step is recorded, so their extra updates
        # cannot change any output.
        np.multiply(rho_a, b, out=num)
        np.add(num, n, out=b)
        np.divide(num, b, out=b)
        np.less_equal(b, tgt_a, out=newly)
        newly &= alive
        if newly.any():
            out[active[newly]] = n
            alive &= ~newly
            remaining = int(alive.sum())
            # Compact only when at least half the lanes are dead: the
            # boolean bookkeeping between compactions is far cheaper than
            # reslicing five arrays every step.
            if remaining and remaining <= alive.size // 2:
                active = active[alive]
                b = b[alive]
                rho_a = rho_a[alive]
                tgt_a = tgt_a[alive]
                num = np.empty(active.size)
                newly = np.empty(active.size, dtype=bool)
                alive = np.ones(active.size, dtype=bool)
        if n > _MAX_SERVERS:  # pragma: no cover - defensive
            raise RuntimeError(
                f"min_servers did not converge within {_MAX_SERVERS} servers"
            )
    if registry.enabled:
        _record_inversion(registry, "vectorized", iterations, perf_counter() - t0)
    return out


def _erlang_b_continuous_array(n: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Vectorized continuous extension; ``rho`` must be strictly positive."""
    nf = n.astype(np.float64)
    log_g = nf * np.log(rho) - rho - special.gammaln(nf + 1.0)
    cdf = special.gammaincc(nf + 1.0, rho)
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        ratio = np.exp(log_g) / cdf
    return np.where(cdf <= 0.0, 1.0, np.minimum(1.0, ratio))


def _min_servers_continuous_array(
    rho: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Batched bracket + bisection on the continuous extension.

    The boundary polish evaluates the *exact* recurrence (lockstep), so
    the returned integers always equal :func:`min_servers`'s.
    """
    registry = get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    out = np.zeros(rho.shape, dtype=np.int64)
    act = np.flatnonzero(rho > 0.0)
    if not act.size:
        return out
    rho_a = rho[act]
    tgt_a = target[act]
    evaluations = 0
    hi = np.maximum(1, rho_a.astype(np.int64))
    while True:
        above = _erlang_b_continuous_array(hi, rho_a) > tgt_a
        if not above.any():
            break
        evaluations += int(above.sum())
        hi[above] *= 2
        if (hi > _MAX_SERVERS).any():  # pragma: no cover - defensive
            raise RuntimeError("min_servers_continuous failed to bracket")
    lo = np.zeros_like(hi)
    while True:
        open_ = hi - lo > 1
        if not open_.any():
            break
        evaluations += int(open_.sum())
        mid = (lo + hi) // 2
        gt = _erlang_b_continuous_array(mid, rho_a) > tgt_a
        lo = np.where(open_ & gt, mid, lo)
        hi = np.where(open_ & ~gt, mid, hi)
    # Boundary polish against the exact recurrence, exactly as the scalar
    # inversion does — restricted to the (rare) elements still moving.
    moving = np.arange(hi.size)
    while moving.size:
        can = hi[moving] > 0
        idx = moving[can]
        if not idx.size:
            break
        lower = _erlang_b_at(hi[idx] - 1, rho_a[idx]) <= tgt_a[idx]
        evaluations += idx.size
        if not lower.any():
            break
        hi[idx[lower]] -= 1
        moving = idx[lower]
    moving = np.arange(hi.size)
    while moving.size:
        above = _erlang_b_at(hi[moving], rho_a[moving]) > tgt_a[moving]
        evaluations += moving.size
        if not above.any():
            break
        hi[moving[above]] += 1
        moving = moving[above]
    out[act] = hi
    if registry.enabled:
        _record_inversion(registry, "vectorized", evaluations, perf_counter() - t0)
    return out


def _erlang_b_log_array(n: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Vectorized log-domain Erlang B (gamma-function form).

    Same identity as the scalar logsumexp form — ``sum_{k<=n} rho^k/k! =
    e^rho * P(Poisson(rho) <= n)`` — so the two agree to ~1e-10 relative;
    robust for millions of servers where term-by-term sums overflow.
    """
    out = np.empty(rho.shape, dtype=np.float64)
    zero = rho == 0.0
    if zero.any():
        out[zero] = np.where(n[zero] == 0, 1.0, 0.0)
    act = ~zero
    if act.any():
        nf = n[act].astype(np.float64)
        rho_a = rho[act]
        log_g = nf * np.log(rho_a) - rho_a - special.gammaln(nf + 1.0)
        cdf = special.gammaincc(nf + 1.0, rho_a)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_cdf = np.log(cdf)
            vals = np.exp(log_g - log_cdf)
        out[act] = np.where(cdf <= 0.0, 1.0, np.minimum(1.0, vals))
    return out


# ---------------------------------------------------------------------------
# public API (scalar in -> scalar out; array in -> array out)
# ---------------------------------------------------------------------------


def offered_load(arrival_rate, service_rate):
    """Traffic intensity ``rho = lambda / mu`` (paper Eq. 3), broadcasting.

    ``service_rate = inf`` (a resource the service barely touches) yields
    zero load, exactly as the scalar form does.
    """
    if _is_scalar(arrival_rate) and _is_scalar(service_rate):
        arrival_rate = float(arrival_rate)
        service_rate = float(service_rate)
        if not math.isfinite(arrival_rate):
            raise ValueError(f"arrival rate must be finite, got {arrival_rate}")
        if arrival_rate < 0.0:
            raise ValueError(
                f"arrival rate must be non-negative, got {arrival_rate}"
            )
        if math.isnan(service_rate):
            raise ValueError(f"service rate must not be NaN, got {service_rate}")
        if service_rate <= 0.0:
            raise ValueError(f"service rate must be positive, got {service_rate}")
        if math.isinf(service_rate):
            return 0.0
        return arrival_rate / service_rate
    lam = np.asarray(arrival_rate, dtype=np.float64)
    mu = np.asarray(service_rate, dtype=np.float64)
    bad = ~np.isfinite(lam)
    if bad.any():
        raise ValueError(f"arrival rate must be finite, got {_first(lam, bad)}")
    neg = lam < 0.0
    if neg.any():
        raise ValueError(
            f"arrival rate must be non-negative, got {_first(lam, neg)}"
        )
    nan = np.isnan(mu)
    if nan.any():
        raise ValueError(f"service rate must not be NaN, got {_first(mu, nan)}")
    nonpos = mu <= 0.0
    if nonpos.any():
        raise ValueError(
            f"service rate must be positive, got {_first(mu, nonpos)}"
        )
    shape, (lam_f, mu_f) = _broadcast(lam, mu)
    out = np.zeros(lam_f.shape, dtype=np.float64)
    finite = np.isfinite(mu_f)
    out[finite] = lam_f[finite] / mu_f[finite]
    return out.reshape(shape)


def erlang_b(n, rho):
    """Blocking probability ``E_n(rho)`` over a broadcast ``(n, rho)`` grid.

    Scalar inputs run the classic recurrence and return ``float``; array
    inputs run the lockstep kernel and return an array of the broadcast
    shape.  The two paths are bit-identical element for element.
    """
    if _is_scalar(n) and _is_scalar(rho):
        return _erlang_b_scalar(int(n), float(rho))
    n_arr = _validate_servers_array(np.asarray(n))
    rho_arr = np.asarray(rho, dtype=np.float64)
    _validate_load_array(rho_arr)
    shape, (n_f, rho_f) = _broadcast(n_arr, rho_arr)
    return _erlang_b_array(n_f.astype(np.int64), rho_f).reshape(shape)


def erlang_b_log(n, rho):
    """Log-domain Erlang B over a broadcast grid; finite for huge ``rho``.

    Scalar inputs reproduce the historical logsumexp evaluation exactly;
    array inputs use the vectorized gamma-function form of the same
    identity (agreement ~1e-10 relative).
    """
    if _is_scalar(n) and _is_scalar(rho):
        return _erlang_b_log_scalar(int(n), float(rho))
    n_arr = _validate_servers_array(np.asarray(n))
    rho_arr = np.asarray(rho, dtype=np.float64)
    _validate_load_array(rho_arr)
    shape, (n_f, rho_f) = _broadcast(n_arr, rho_arr)
    return _erlang_b_log_array(n_f.astype(np.int64), rho_f).reshape(shape)


def erlang_b_continuous(n, rho):
    """Continuous extension of Erlang B to real ``n >= 0``, broadcasting."""
    if _is_scalar(n) and _is_scalar(rho):
        return _erlang_b_continuous_scalar(float(n), float(rho))
    n_arr = np.asarray(n, dtype=np.float64)
    bad = ~np.isfinite(n_arr)
    if bad.any():
        raise ValueError(
            f"number of servers must be finite, got {_first(n_arr, bad)}"
        )
    neg = n_arr < 0.0
    if neg.any():
        raise ValueError(
            f"number of servers must be non-negative, got {_first(n_arr, neg)}"
        )
    rho_arr = np.asarray(rho, dtype=np.float64)
    _validate_load_array(rho_arr)
    shape, (n_f, rho_f) = _broadcast(n_arr, rho_arr)
    out = np.empty(n_f.shape, dtype=np.float64)
    zero = rho_f == 0.0
    if zero.any():
        out[zero] = np.where(n_f[zero] == 0.0, 1.0, 0.0)
    act = ~zero
    if act.any():
        out[act] = _erlang_b_continuous_array(n_f[act], rho_f[act])
    return out.reshape(shape)


def min_servers(rho, blocking_target):
    """Smallest ``n`` with ``E_n(rho) <= blocking_target``, broadcasting.

    The Fig. 4 inner loop.  Scalar inputs return ``int``; arrays return an
    ``int64`` array of the broadcast shape, computed by a lockstep scan
    that is bit-identical to the scalar recurrence at every point.  This
    is the entry point for million-point capacity grids: one call sizes
    the whole ``(rho, B)`` plane.
    """
    if _is_scalar(rho) and _is_scalar(blocking_target):
        return _min_servers_scalar(float(rho), float(blocking_target))
    rho_arr = np.asarray(rho, dtype=np.float64)
    tgt_arr = np.asarray(blocking_target, dtype=np.float64)
    _validate_target_array(tgt_arr)
    _validate_load_array(rho_arr)
    shape, (rho_f, tgt_f) = _broadcast(rho_arr, tgt_arr)
    return _min_servers_array(rho_f, tgt_f).reshape(shape)


def min_servers_continuous(rho, blocking_target):
    """Inversion via batched bisection on the continuous extension.

    Same integer answers as :func:`min_servers` (the boundary is polished
    with exact recurrence evaluations) in ``O(log n)`` gamma evaluations
    per point; preferred when ``rho`` spans the mega-datacenter range.
    """
    if _is_scalar(rho) and _is_scalar(blocking_target):
        return _min_servers_continuous_scalar(float(rho), float(blocking_target))
    rho_arr = np.asarray(rho, dtype=np.float64)
    tgt_arr = np.asarray(blocking_target, dtype=np.float64)
    _validate_target_array(tgt_arr)
    _validate_load_array(rho_arr)
    shape, (rho_f, tgt_f) = _broadcast(rho_arr, tgt_arr)
    return _min_servers_continuous_array(rho_f, tgt_f).reshape(shape)
