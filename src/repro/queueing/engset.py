"""Engset loss model: finite-source refinement of the Erlang analysis.

The Erlang-B model assumes an infinite customer population (Poisson
arrivals whose rate never depends on how many requests are in service).
TPC-W's emulated browsers are a *finite* population: an EB waiting on a
response generates no new requests, so offered load self-throttles and
blocking is *lower* than Erlang-B predicts at the same nominal load.

The Engset formula gives the exact blocking for ``S`` sources, each idle
for mean ``1/alpha`` then requesting service of mean ``1/mu``, against
``n`` servers (time congestion ``E``; what an *arriving customer* sees is
the call congestion ``B``, computed with S-1 sources):

    E_n = C(S, n) a^n / sum_k C(S, k) a^k,   a = alpha/mu

This module provides both congestion measures (stable log-domain
evaluation), the Erlang-B limit as S -> inf, and the server inversion —
letting the planner quantify when the infinite-source approximation the
paper uses is safe (S >> n) and when it over-provisions.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "engset_time_congestion",
    "engset_call_congestion",
    "engset_min_servers",
]


def _log_weights(sources: int, servers: int, a: float) -> np.ndarray:
    k = np.arange(servers + 1)
    # log[ C(S, k) a^k ]
    return (
        special.gammaln(sources + 1)
        - special.gammaln(k + 1)
        - special.gammaln(sources - k + 1)
        + k * math.log(a)
    )


def engset_time_congestion(servers: int, sources: int, a: float) -> float:
    """Probability all ``servers`` are busy (time average).

    ``a = alpha/mu`` is each idle source's offered intensity.  Defined for
    ``sources >= servers`` (otherwise blocking is impossible: 0).
    """
    if servers < 0:
        raise ValueError(f"servers must be non-negative, got {servers}")
    if sources < 1:
        raise ValueError(f"sources must be >= 1, got {sources}")
    if a < 0.0:
        raise ValueError(f"intensity must be non-negative, got {a}")
    if a == 0.0:
        return 1.0 if servers == 0 else 0.0
    if servers == 0:
        return 1.0
    if sources < servers:
        return 0.0
    logs = _log_weights(sources, servers, a)
    return float(np.exp(logs[-1] - special.logsumexp(logs)))


def engset_call_congestion(servers: int, sources: int, a: float) -> float:
    """Probability an *arriving request* is blocked.

    By the arrival theorem for finite-source systems, an arriving customer
    sees the system as if it had one fewer source:
    ``B(n, S, a) = E(n, S-1, a)``.  For ``sources <= servers`` no arrival
    can ever be blocked.
    """
    if sources < 1:
        raise ValueError(f"sources must be >= 1, got {sources}")
    if sources <= servers:
        return 0.0
    return engset_time_congestion(servers, sources - 1, a)


def engset_min_servers(
    sources: int, a: float, blocking_target: float
) -> int:
    """Smallest ``n`` with Engset call congestion <= the target.

    Call congestion is decreasing in ``n``; at ``n = sources`` it is zero,
    so the scan always terminates.
    """
    if not 0.0 < blocking_target < 1.0:
        raise ValueError(
            f"blocking target must lie in (0, 1), got {blocking_target}"
        )
    if sources < 1:
        raise ValueError(f"sources must be >= 1, got {sources}")
    if a < 0.0:
        raise ValueError(f"intensity must be non-negative, got {a}")
    n = 0
    while engset_call_congestion(n, sources, a) > blocking_target:
        n += 1
    return n
