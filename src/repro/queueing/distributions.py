"""Probability distributions used throughout the queueing substrate.

The utility analytic model of the paper assumes Poisson arrivals and a
"general steady distribution" for service times (an M/G/n/n loss system,
for which the Erlang loss formula is insensitive to the service-time
distribution beyond its mean).  To exercise that insensitivity property in
simulation — and to drive the synthetic workload generators — this module
provides a small family of service-time distributions behind one uniform
interface.

All distributions are parameterised so that their *mean* is explicit, which
is the only moment the analytic model consumes.  Sampling is vectorised on
top of :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "ErlangK",
    "HyperExponential",
    "LogNormal",
    "ParetoBounded",
    "Empirical",
    "as_distribution",
]


class Distribution(abc.ABC):
    """A non-negative random variable with known mean and variance.

    Subclasses implement :meth:`sample`, :attr:`mean` and :attr:`variance`.
    The squared coefficient of variation (:attr:`scv`) is derived and is the
    quantity most relevant to queueing behaviour.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one sample (``size=None``) or a vector of ``size`` samples."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Second central moment."""

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def scv(self) -> float:
        """Squared coefficient of variation, ``Var/E[X]^2``."""
        m = self.mean
        if m == 0.0:
            raise ZeroDivisionError("SCV undefined for zero-mean distribution")
        return self.variance / (m * m)

    @property
    def rate(self) -> float:
        """Rate (1/mean); the ``mu`` of a service-time distribution."""
        return 1.0 / self.mean

    def scaled(self, factor: float) -> "Scaled":
        """Return this distribution with all samples multiplied by ``factor``.

        Used to apply virtualization impact factors to service times:
        degrading the serving *rate* by ``a`` stretches every service *time*
        by ``1/a``.
        """
        return Scaled(self, factor)


@dataclass(frozen=True)
class Scaled(Distribution):
    """A distribution whose samples are linearly scaled by ``factor``."""

    base: Distribution
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {self.factor}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.base.sample(rng, size) * self.factor

    @property
    def mean(self) -> float:
        return self.base.mean * self.factor

    @property
    def variance(self) -> float:
        return self.base.variance * self.factor * self.factor


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given ``rate`` (so mean = 1/rate)."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam <= 0.0:
            raise ValueError(f"rate must be positive, got {self.lam}")

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        return cls(1.0 / mean)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(1.0 / self.lam, size)

    @property
    def mean(self) -> float:
        return 1.0 / self.lam

    @property
    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Constant service time (SCV = 0); the M/D/n/n extreme."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0.0:
            raise ValueError(f"value must be non-negative, got {self.value}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


@dataclass(frozen=True)
class ErlangK(Distribution):
    """Erlang-k distribution: sum of ``k`` iid exponentials (SCV = 1/k).

    Interpolates between exponential (k=1) and deterministic (k→∞) service,
    useful to demonstrate the Erlang-loss insensitivity property.
    """

    k: int
    lam: float  # rate of each exponential phase; mean = k / lam

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.lam <= 0.0:
            raise ValueError(f"rate must be positive, got {self.lam}")

    @classmethod
    def from_mean(cls, mean: float, k: int) -> "ErlangK":
        return cls(k=k, lam=k / mean)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(shape=self.k, scale=1.0 / self.lam, size=size)

    @property
    def mean(self) -> float:
        return self.k / self.lam

    @property
    def variance(self) -> float:
        return self.k / (self.lam * self.lam)


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Mixture of exponentials (SCV > 1); models bursty service demands.

    ``probs[i]`` selects phase ``i`` whose rate is ``rates[i]``.
    """

    probs: tuple[float, ...]
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.probs) != len(self.rates) or not self.probs:
            raise ValueError("probs and rates must be equal-length, non-empty")
        if any(p < 0 for p in self.probs) or abs(sum(self.probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must be a distribution, got {self.probs}")
        if any(r <= 0 for r in self.rates):
            raise ValueError(f"rates must be positive, got {self.rates}")

    @classmethod
    def balanced_two_phase(cls, mean: float, scv: float) -> "HyperExponential":
        """Two-phase H2 with balanced means matching ``mean`` and ``scv >= 1``."""
        if scv < 1.0:
            raise ValueError(f"H2 requires scv >= 1, got {scv}")
        # Standard balanced-means fit (Allen): p = (1 + sqrt((c-1)/(c+1)))/2.
        p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        r1 = 2.0 * p / mean
        r2 = 2.0 * (1.0 - p) / mean
        return cls(probs=(p, 1.0 - p), rates=(r1, r2))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else size
        phase = rng.choice(len(self.probs), size=n, p=self.probs)
        rates = np.asarray(self.rates)[phase]
        out = rng.exponential(1.0, n) / rates
        return out[0] if size is None else out

    @property
    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probs, self.rates))

    @property
    def variance(self) -> float:
        m2 = sum(2.0 * p / (r * r) for p, r in zip(self.probs, self.rates))
        return m2 - self.mean**2


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal distribution parameterised directly by mean and SCV.

    Commonly fitted to web object service times; heavy-ish right tail.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @classmethod
    def from_mean_scv(cls, mean: float, scv: float) -> "LogNormal":
        if mean <= 0.0 or scv < 0.0:
            raise ValueError("mean must be positive and scv non-negative")
        sigma2 = math.log(1.0 + scv)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu=mu, sigma=math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self.mu, self.sigma, size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)


@dataclass(frozen=True)
class ParetoBounded(Distribution):
    """Bounded Pareto on ``[low, high]`` with shape ``alpha``.

    The classic heavy-tailed model for web file sizes (Crovella et al.);
    used by the SPECweb-like file-set generator.
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if not 0.0 < self.low < self.high:
            raise ValueError(f"need 0 < low < high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        u = rng.uniform(0.0, 1.0, size)
        a, l, h = self.alpha, self.low, self.high
        # Inverse-CDF of the bounded Pareto.
        la, ha = l**a, h**a
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / a)

    def _raw_moment(self, k: int) -> float:
        a, l, h = self.alpha, self.low, self.high
        if abs(a - k) < 1e-12:
            return a * l**a * (math.log(h) - math.log(l)) / (1.0 - (l / h) ** a)
        c = a * l**a / (1.0 - (l / h) ** a)
        return c * (h ** (k - a) - l ** (k - a)) / (k - a)

    @property
    def mean(self) -> float:
        return self._raw_moment(1)

    @property
    def variance(self) -> float:
        return self._raw_moment(2) - self.mean**2


class Empirical(Distribution):
    """Resampling distribution over an observed sample (trace playback)."""

    def __init__(self, values) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("values must be a non-empty 1-D array")
        if (arr < 0).any():
            raise ValueError("values must be non-negative")
        self._values = arr

    def sample(self, rng: np.random.Generator, size: int | None = None):
        idx = rng.integers(0, self._values.size, size)
        return self._values[idx]

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def mean(self) -> float:
        return float(self._values.mean())

    @property
    def variance(self) -> float:
        return float(self._values.var())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Empirical(n={self._values.size}, mean={self.mean:.4g})"


def as_distribution(spec) -> Distribution:
    """Coerce ``spec`` into a :class:`Distribution`.

    Accepts an existing distribution (returned unchanged), a number
    (interpreted as the *mean* of an exponential — the queueing-theory
    default), or a 1-D sequence (wrapped as :class:`Empirical`).
    """
    if isinstance(spec, Distribution):
        return spec
    if isinstance(spec, (int, float)):
        return Exponential.from_mean(float(spec))
    return Empirical(spec)
