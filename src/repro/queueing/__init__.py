"""Queueing-theory substrate: distributions, Poisson processes, Erlang formulas.

Everything the paper's Section III derivation consumes from "the queuing
theory" is implemented here from first principles:

- :mod:`repro.queueing.distributions` — service-time laws (M/G/n/n works
  for any of them by insensitivity);
- :mod:`repro.queueing.poisson` — arrival processes and superposition;
- :mod:`repro.queueing.vectorized` — the Erlang loss formula, its
  recurrence (paper Eq. 2), continuous extension, and inversions, batched:
  every function broadcasts over numpy ``(rho, B)`` / ``(n, rho)`` grids
  and returns plain scalars for plain-scalar input;
- :mod:`repro.queueing.erlang` — the historical scalar surface, now thin
  wrappers over the vectorized core (same values bit for bit, same
  ``ValueError`` text);
- :mod:`repro.queueing.mmn` — packaged loss/delay system metrics, delay
  sizing, and waiting-time percentiles;
- :mod:`repro.queueing.birth_death` — derivation-independent cross-check;
- :mod:`repro.queueing.fixed_point` — reduced-load Erlang fixed point for
  multi-resource loss networks;
- :mod:`repro.queueing.mva` — exact MVA for closed networks (TPC-W's
  structure);
- :mod:`repro.queueing.engset` — finite-source loss (Engset) refinement.
"""

from .distributions import (
    Deterministic,
    Distribution,
    Empirical,
    ErlangK,
    Exponential,
    HyperExponential,
    LogNormal,
    ParetoBounded,
    Uniform,
    as_distribution,
)
from .engset import (
    engset_call_congestion,
    engset_min_servers,
    engset_time_congestion,
)
from . import vectorized
from .erlang import (
    erlang_b_derivative_n,
    erlang_b_recurrence,
    erlang_c,
    max_load_for_blocking,
)

# The canonical Erlang entry points are the batched (polymorphic) forms:
# scalars in -> scalars out, arrays in -> arrays of the broadcast shape.
# Scalar callers see the exact historical behaviour (see DESIGN.md).
from .vectorized import (
    erlang_b,
    erlang_b_continuous,
    erlang_b_log,
    min_servers,
    min_servers_continuous,
    offered_load,
)
from .mva import MvaResult, exact_mva, throughput_bounds
from .mmn import (
    DelaySystemMetrics,
    LossSystemMetrics,
    min_servers_for_wait,
    mmn_delay_metrics,
    mmnn_loss_metrics,
    wait_percentile,
    wait_tail_probability,
)
from .birth_death import BirthDeathChain, loss_system_chain
from .fixed_point import FixedPointResult, erlang_fixed_point, fixed_point_for_inputs
from .poisson import (
    MarkedArrivals,
    interarrival_times,
    piecewise_poisson_arrivals,
    poisson_arrivals,
    superpose,
    superpose_marked,
    thinned_poisson_arrivals,
)

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "ErlangK",
    "HyperExponential",
    "LogNormal",
    "ParetoBounded",
    "Empirical",
    "as_distribution",
    "vectorized",
    "erlang_b",
    "erlang_b_recurrence",
    "erlang_b_log",
    "erlang_b_continuous",
    "erlang_b_derivative_n",
    "erlang_c",
    "min_servers",
    "min_servers_continuous",
    "max_load_for_blocking",
    "offered_load",
    "LossSystemMetrics",
    "mmnn_loss_metrics",
    "DelaySystemMetrics",
    "mmn_delay_metrics",
    "min_servers_for_wait",
    "wait_tail_probability",
    "wait_percentile",
    "MvaResult",
    "exact_mva",
    "throughput_bounds",
    "engset_time_congestion",
    "engset_call_congestion",
    "engset_min_servers",
    "BirthDeathChain",
    "loss_system_chain",
    "FixedPointResult",
    "erlang_fixed_point",
    "fixed_point_for_inputs",
    "poisson_arrivals",
    "piecewise_poisson_arrivals",
    "thinned_poisson_arrivals",
    "superpose",
    "superpose_marked",
    "MarkedArrivals",
    "interarrival_times",
]
