"""Workload substrate: the paper's benchmark stand-ins.

- :mod:`repro.workloads.traces` — diurnal service traces (Fig. 2);
- :mod:`repro.workloads.specweb` — SPECweb2005-like Web model (Figs. 5/6);
- :mod:`repro.workloads.tpcw` — TPC-W-like DB model (Figs. 7/8);
- :mod:`repro.workloads.httperf` — open-loop rate-sweep driver.
"""

from .httperf import RateSweep, SweepResult
from .sessions import SessionProfile, generate_session_arrivals, index_of_dispersion
from .specweb import SINGLE_FILE_8KB, SPECWEB_FILESET, WebFileSet, WebServiceModel
from .tpcw import DbServiceModel, TpcwWorkload
from .traces import DiurnalProfile, TraceBundle, consolidation_headroom
from .wan_traffic import MMPP2, hurst_rs, on_off_pareto_arrivals

__all__ = [
    "DiurnalProfile",
    "TraceBundle",
    "consolidation_headroom",
    "WebFileSet",
    "WebServiceModel",
    "SPECWEB_FILESET",
    "SINGLE_FILE_8KB",
    "DbServiceModel",
    "TpcwWorkload",
    "RateSweep",
    "SweepResult",
    "SessionProfile",
    "generate_session_arrivals",
    "index_of_dispersion",
    "MMPP2",
    "on_off_pareto_arrivals",
    "hurst_rs",
]
