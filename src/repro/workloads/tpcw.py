"""TPC-W-like e-book database workload model.

Substitutes the paper's TPC-W + MySQL stack.  TPC-W is *closed-loop*: a
fixed population of emulated browsers (EBs) cycles through think time and
web interactions; throughput is reported in WIPS (Web Interactions Per
Second).  The closed-loop law gives the offered rate, capacity the ceiling:

    WIPS(EBs) = min( EBs / (think + response),  capacity )

Two testbed phenomena the paper measured are built in:

- **software bottleneck** (Fig. 8): native Linux and a single VM reach only
  about *half* the throughput of several concurrent VMs — one OS image
  serialises the DB service, so the impact factor *exceeds 1* for v >= 2
  (saturating model, asymptote ~1.85x native);
- **vCPU allocation and pinning** (Fig. 7): the DB VM's capacity scales
  with the vCPUs it is granted, and pinning those vCPUs to physical cores
  beats leaving placement to the Xen scheduler by a measurable margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..virtualization.hypervisor import FLOATING_EFFICIENCY
from ..virtualization.impact import DB_CPU_IMPACT, ImpactModel

__all__ = ["TpcwWorkload", "DbServiceModel"]


@dataclass(frozen=True)
class TpcwWorkload:
    """Closed-loop emulated-browser population description."""

    emulated_browsers: int
    think_time: float = 7.0       # TPC-W spec mean think time (seconds)
    response_time: float = 0.1    # uncongested mean interaction latency

    def __post_init__(self) -> None:
        if self.emulated_browsers < 0:
            raise ValueError(
                f"EB count must be non-negative, got {self.emulated_browsers}"
            )
        if self.think_time <= 0.0 or self.response_time < 0.0:
            raise ValueError("think time must be positive, response non-negative")

    @property
    def offered_wips(self) -> float:
        """Closed-loop offered rate (interactive response law)."""
        return self.emulated_browsers / (self.think_time + self.response_time)


@dataclass(frozen=True)
class DbServiceModel:
    """Throughput response of the DB service on one host.

    ``native_capacity`` is the WIPS ceiling of native Linux (the paper's
    ``mu_dc = 100`` — CPU is the bottleneck, "the demand on disk I/O by
    requests accessing DB service is close to zero").  ``vms = 0`` denotes
    native Linux; ``vms >= 1`` a Xen host whose ceiling is
    ``native_capacity * a(v)`` with the saturating impact model.
    """

    native_capacity: float = 100.0
    impact_model: ImpactModel = DB_CPU_IMPACT
    db_vcpus: int = 6          # the paper allocates six vCPUs per DB VM
    database_gb: float = 2.7   # TPC-W e-book database size

    def __post_init__(self) -> None:
        if self.native_capacity <= 0.0:
            raise ValueError("native capacity must be positive")
        if self.db_vcpus < 1:
            raise ValueError(f"db_vcpus must be >= 1, got {self.db_vcpus}")
        if self.database_gb <= 0.0:
            raise ValueError("database size must be positive")

    def capacity(
        self, vms: int, vcpus: int | None = None, pinned: bool = True
    ) -> float:
        """WIPS ceiling for ``vms`` VMs (0 = native Linux).

        ``vcpus`` (default: the paper's six) scales capacity linearly up to
        the full allocation — the DB engine is embarrassingly parallel over
        query streams at this scale; ``pinned=False`` applies the floating-
        vCPU scheduling penalty of Fig. 7.
        """
        if vms < 0:
            raise ValueError(f"vms must be non-negative, got {vms}")
        if vms == 0:
            return self.native_capacity
        v_alloc = self.db_vcpus if vcpus is None else vcpus
        if v_alloc < 1:
            raise ValueError(f"vcpus must be >= 1, got {v_alloc}")
        base = self.native_capacity * self.impact_model.impact(vms)
        scale = min(v_alloc, self.db_vcpus) / self.db_vcpus
        if not pinned:
            scale *= FLOATING_EFFICIENCY
        return base * scale

    def wips(
        self,
        workload: TpcwWorkload,
        vms: int = 0,
        vcpus: int | None = None,
        pinned: bool = True,
    ) -> float:
        """Delivered WIPS: closed-loop offered rate capped by capacity."""
        return min(workload.offered_wips, self.capacity(vms, vcpus, pinned))

    def wips_curve(
        self,
        eb_counts,
        vms: int = 0,
        vcpus: int | None = None,
        pinned: bool = True,
    ) -> np.ndarray:
        """WIPS vs EB population (the Fig. 7/8 x-axis sweep)."""
        ebs = np.atleast_1d(np.asarray(eb_counts, dtype=int))
        return np.array(
            [
                self.wips(TpcwWorkload(int(n)), vms, vcpus, pinned)
                for n in ebs
            ]
        )

    def measure_wips_curve(
        self,
        eb_counts,
        vms: int,
        rng: np.random.Generator,
        rel_noise: float = 0.02,
        vcpus: int | None = None,
        pinned: bool = True,
    ) -> np.ndarray:
        """Noisy WIPS observations (what the TPC-W harness would report)."""
        if rel_noise < 0.0:
            raise ValueError("noise must be non-negative")
        clean = self.wips_curve(eb_counts, vms, vcpus, pinned)
        noisy = clean * (1.0 + rel_noise * rng.standard_normal(clean.shape))
        return np.clip(noisy, 0.0, None)

    def measured_impact_factors(
        self,
        vm_counts,
        rng: np.random.Generator | None = None,
        rel_noise: float = 0.0,
        saturating_ebs: int = 3000,
    ) -> np.ndarray:
        """Impact factors from saturated-throughput ratios (Fig. 8b).

        Measures each configuration deep in saturation (offered rate far
        above any ceiling) and normalises by the native ceiling.
        """
        workload = TpcwWorkload(saturating_ebs)
        native = self.wips(workload, 0)
        out = []
        for v in np.atleast_1d(vm_counts):
            value = self.wips(workload, int(v))
            if rng is not None and rel_noise > 0.0:
                value *= 1.0 + rel_noise * float(rng.standard_normal())
            out.append(max(value, 0.0) / native)
        return np.array(out)
