"""Synthetic diurnal workload traces (the paper's Fig. 2 motivation).

Fig. 2 argues the case for consolidation: services peak at different times,
so the peak of the *summed* workload is lower than the sum of per-service
peaks — fewer machines cover the consolidated load at the same assurance
level.  These generators produce the classic Internet-service diurnal shape
(sinusoid + weekly modulation + Poisson-ish noise) with controllable phase,
so experiments can sweep how phase alignment affects the consolidation
dividend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlashCrowd", "DiurnalProfile", "TraceBundle", "consolidation_headroom"]

_DAY = 24.0


@dataclass(frozen=True)
class FlashCrowd:
    """A transient surge multiplier on top of a diurnal profile.

    Models the slashdot-effect bursts the diurnal shape cannot: a raised-
    cosine bump centred at ``hour`` lifting the rate by up to ``magnitude``×
    over a ``duration``-hour window.  The multiplier is exactly 1 outside
    the window and peaks at ``magnitude`` in the centre, so it is bounded
    in ``[1, magnitude]`` everywhere.
    """

    hour: float
    magnitude: float
    duration: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hour < _DAY:
            raise ValueError(f"flash-crowd hour must lie in [0, 24), got {self.hour}")
        if self.magnitude < 1.0:
            raise ValueError(
                f"flash-crowd magnitude must be >= 1, got {self.magnitude}"
            )
        if not 0.0 < self.duration <= _DAY:
            raise ValueError(
                f"flash-crowd duration must lie in (0, 24], got {self.duration}"
            )

    def multiplier(self, hours: np.ndarray) -> np.ndarray:
        """Rate multiplier at the given times (hours mod 24, vectorised)."""
        t = np.asarray(hours, dtype=float) % _DAY
        # Signed offset from the burst centre, wrapped into (-12, 12].
        offset = (t - self.hour + _DAY / 2.0) % _DAY - _DAY / 2.0
        inside = np.abs(offset) <= self.duration / 2.0
        bump = 0.5 * (1.0 + np.cos(2.0 * np.pi * offset / self.duration))
        return np.where(inside, 1.0 + (self.magnitude - 1.0) * bump, 1.0)


@dataclass(frozen=True)
class DiurnalProfile:
    """One service's deterministic daily rate profile plus noise level.

    ``base`` is the off-peak rate, ``peak`` the daily maximum, reached at
    hour ``peak_hour``; ``noise`` is the relative std of multiplicative
    noise applied on sampling.
    """

    name: str
    base: float
    peak: float
    peak_hour: float = 14.0
    noise: float = 0.05
    flash: FlashCrowd | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.base < 0.0 or self.peak < self.base:
            raise ValueError(
                f"{self.name}: need 0 <= base <= peak, got base={self.base} peak={self.peak}"
            )
        if not 0.0 <= self.peak_hour < _DAY:
            raise ValueError(f"{self.name}: peak hour must lie in [0, 24)")
        if self.noise < 0.0:
            raise ValueError(f"{self.name}: noise must be non-negative")

    def rate(self, hours: np.ndarray) -> np.ndarray:
        """Deterministic rate at the given times (hours, vectorised)."""
        t = np.asarray(hours, dtype=float)
        phase = 2.0 * np.pi * (t - self.peak_hour) / _DAY
        # Raised cosine: 1 at the peak hour, 0 at the antipode.
        shape = 0.5 * (1.0 + np.cos(phase))
        rate = self.base + (self.peak - self.base) * shape
        if self.flash is not None:
            rate = rate * self.flash.multiplier(t)
        return rate

    def sample(self, hours: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Noisy observation of the profile (never negative)."""
        clean = self.rate(hours)
        noisy = clean * (1.0 + self.noise * rng.standard_normal(clean.shape))
        return np.clip(noisy, 0.0, None)


@dataclass(frozen=True)
class TraceBundle:
    """Sampled traces of several services on a common time grid."""

    hours: np.ndarray
    traces: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for name, tr in self.traces.items():
            if tr.shape != self.hours.shape:
                raise ValueError(f"trace {name!r} does not match the time grid")

    @classmethod
    def sample(
        cls,
        profiles: list[DiurnalProfile],
        days: float,
        samples_per_hour: int,
        rng: np.random.Generator,
    ) -> "TraceBundle":
        if not profiles:
            raise ValueError("at least one profile required")
        if days <= 0.0 or samples_per_hour < 1:
            raise ValueError("days must be positive, samples_per_hour >= 1")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate profile names: {names}")
        n = int(round(days * _DAY * samples_per_hour))
        hours = np.linspace(0.0, days * _DAY, n, endpoint=False)
        return cls(
            hours=hours,
            traces={p.name: p.sample(hours, rng) for p in profiles},
        )

    @property
    def combined(self) -> np.ndarray:
        """Point-wise sum — the consolidated workload trace."""
        return np.sum(list(self.traces.values()), axis=0)

    def per_service_peaks(self, quantile: float = 1.0) -> dict[str, float]:
        """Per-service peak (or quantile) rates — dedicated sizing drivers."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {quantile}")
        return {
            name: float(np.quantile(tr, quantile)) for name, tr in self.traces.items()
        }

    def combined_peak(self, quantile: float = 1.0) -> float:
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {quantile}")
        return float(np.quantile(self.combined, quantile))


def consolidation_headroom(bundle: TraceBundle, quantile: float = 1.0) -> float:
    """Fig. 2's claim as a number: ``1 - peak(sum) / sum(peaks)``.

    Positive whenever peaks do not align perfectly; 0 when all services
    peak simultaneously (no statistical multiplexing gain in the peak).
    """
    sum_of_peaks = sum(bundle.per_service_peaks(quantile).values())
    if sum_of_peaks == 0.0:
        return 0.0
    return 1.0 - bundle.combined_peak(quantile) / sum_of_peaks
