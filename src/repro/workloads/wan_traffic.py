"""Wide-area traffic models beyond Poisson.

The paper's assumption 2 leans on the finding that *user-initiated TCP
sessions* arrive as Poisson — while explicitly citing Paxson & Floyd's
"Wide Area Traffic: The Failure of Poisson Modeling" [11], which shows
that packet/request-level WAN traffic is *not* Poisson: it is bursty
across timescales (long-range dependent, Hurst parameter H > 0.5).

To let the test suite and ablations probe exactly where the model's
assumption bends, this module implements the two standard non-Poisson
traffic constructions:

- :class:`MMPP2` — a two-state Markov-modulated Poisson process (bursty at
  one timescale; index of dispersion > 1, but H = 0.5 asymptotically);
- :func:`on_off_pareto_arrivals` — superposition of on/off sources with
  heavy-tailed (Pareto) on/off periods, the classical construction that
  *does* produce long-range dependence (Willinger et al.);

plus :func:`hurst_rs` — rescaled-range (R/S) estimation of the Hurst
parameter, so the generators' burstiness claims are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queueing.poisson import poisson_arrivals, superpose

__all__ = ["MMPP2", "on_off_pareto_arrivals", "hurst_rs"]


@dataclass(frozen=True)
class MMPP2:
    """Two-state Markov-modulated Poisson process.

    The modulating chain alternates between a *calm* state (rate
    ``rate_calm``, mean sojourn ``sojourn_calm``) and a *burst* state
    (``rate_burst``, ``sojourn_burst``).  Exponential sojourns keep the
    process Markovian; arrivals within a state are Poisson at that state's
    rate.
    """

    rate_calm: float
    rate_burst: float
    sojourn_calm: float
    sojourn_burst: float

    def __post_init__(self) -> None:
        if self.rate_calm < 0.0 or self.rate_burst < 0.0:
            raise ValueError("rates must be non-negative")
        if self.sojourn_calm <= 0.0 or self.sojourn_burst <= 0.0:
            raise ValueError("sojourn times must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate (sojourn-weighted state mixture)."""
        total = self.sojourn_calm + self.sojourn_burst
        return (
            self.rate_calm * self.sojourn_calm
            + self.rate_burst * self.sojourn_burst
        ) / total

    def sample(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival times on ``[0, horizon)``."""
        if horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        segments = []
        t = 0.0
        # Start in the state proportional to its stationary probability.
        in_burst = rng.uniform() < self.sojourn_burst / (
            self.sojourn_calm + self.sojourn_burst
        )
        while t < horizon:
            sojourn = rng.exponential(
                self.sojourn_burst if in_burst else self.sojourn_calm
            )
            end = min(t + sojourn, horizon)
            rate = self.rate_burst if in_burst else self.rate_calm
            if rate > 0.0 and end > t:
                segments.append(poisson_arrivals(rate, end - t, rng) + t)
            t = end
            in_burst = not in_burst
        return superpose(*segments) if segments else np.empty(0)


def on_off_pareto_arrivals(
    sources: int,
    peak_rate: float,
    horizon: float,
    rng: np.random.Generator,
    alpha: float = 1.5,
    mean_on: float = 1.0,
    mean_off: float = 2.0,
) -> np.ndarray:
    """Superposed on/off sources with Pareto on/off periods.

    Each source alternates between an *on* period (emitting Poisson
    arrivals at ``peak_rate``) and a silent *off* period; period lengths
    are Pareto with shape ``alpha`` in (1, 2), which has finite mean but
    infinite variance — the heavy tail that makes the aggregate long-range
    dependent with ``H = (3 - alpha)/2``.
    """
    if sources < 1:
        raise ValueError(f"sources must be >= 1, got {sources}")
    if peak_rate <= 0.0 or horizon <= 0.0:
        raise ValueError("peak rate and horizon must be positive")
    if not 1.0 < alpha < 2.0:
        raise ValueError(f"alpha must lie in (1, 2) for LRD, got {alpha}")
    if mean_on <= 0.0 or mean_off <= 0.0:
        raise ValueError("mean periods must be positive")

    def pareto_periods(mean: float, count: int) -> np.ndarray:
        # Pareto with shape alpha, scale chosen for the requested mean:
        # E[X] = scale * alpha / (alpha - 1).
        scale = mean * (alpha - 1.0) / alpha
        return scale * (1.0 + rng.pareto(alpha, count))

    streams = []
    for _ in range(sources):
        t = 0.0
        on = rng.uniform() < mean_on / (mean_on + mean_off)
        bursts = []
        while t < horizon:
            period = float(
                pareto_periods(mean_on if on else mean_off, 1)[0]
            )
            end = min(t + period, horizon)
            if on and end > t:
                bursts.append(poisson_arrivals(peak_rate, end - t, rng) + t)
            t = end
            on = not on
        if bursts:
            streams.append(np.concatenate(bursts))
    if not streams:
        return np.empty(0)
    return superpose(*streams)


def hurst_rs(
    arrivals: np.ndarray,
    horizon: float,
    base_window: float = 1.0,
    min_blocks: int = 8,
) -> float:
    """Hurst parameter of an arrival process via rescaled-range analysis.

    Bins arrivals into counts at ``base_window`` resolution, computes the
    R/S statistic over a geometric ladder of block sizes, and fits
    ``log(R/S) ~ H log(n)``.  H ~ 0.5 for Poisson/short-range processes;
    H > 0.5 indicates long-range dependence.  Estimator bias is real
    (tests use generous bands), but it cleanly separates the regimes.
    """
    arr = np.asarray(arrivals, dtype=float)
    if horizon <= 0.0 or base_window <= 0.0:
        raise ValueError("horizon and base_window must be positive")
    edges = np.arange(0.0, horizon + base_window, base_window)
    counts, _ = np.histogram(arr, bins=edges)
    n_total = counts.size
    if n_total < min_blocks * 4:
        raise ValueError(
            f"too few windows ({n_total}) for R/S analysis; lower base_window"
        )

    sizes = []
    size = max(8, n_total // 256)
    while size * min_blocks <= n_total:
        sizes.append(size)
        size *= 2
    if len(sizes) < 3:
        raise ValueError("not enough block-size scales; lengthen the trace")

    log_n, log_rs = [], []
    for n in sizes:
        blocks = counts[: (n_total // n) * n].reshape(-1, n)
        rs_values = []
        for block in blocks:
            mean = block.mean()
            dev = np.cumsum(block - mean)
            r = dev.max() - dev.min()
            s = block.std()
            if s > 0.0 and r > 0.0:
                rs_values.append(r / s)
        if rs_values:
            log_n.append(np.log(n))
            log_rs.append(np.log(np.mean(rs_values)))
    if len(log_n) < 3:
        raise ValueError("R/S statistic degenerate; trace too uniform")
    slope, _ = np.polyfit(log_n, log_rs, 1)
    return float(slope)
