"""SPECweb2005-like e-commerce Web workload model.

Substitutes the paper's SPECweb2005 + Apache + httperf stack.  Two pieces:

- :class:`WebFileSet` — a synthetic static file population with the
  heavy-tailed (bounded-Pareto) size distribution and Zipf popularity that
  characterise web content.  Whether the working set fits the server's page
  cache decides the bottleneck resource: the paper's Fig. 5 sweeps a 5.1 GB
  file set (disk-I/O-bound) while Fig. 6 hammers a single cached 8 KB file
  (CPU-bound).

- :class:`WebServiceModel` — the open-loop throughput response surface.
  Native capacity on the bottleneck resource comes from the paper's
  measured serving rates (1420 req/s I/O-bound, 3360 req/s CPU-bound);
  hosting the service in ``v`` VMs rescales capacity by the impact model
  ``a(v)``.  The reply-rate curve follows the shape every curve in
  Figs. 5a/6a shares: linear rise while the server keeps up, a peak at
  capacity, degradation under overload (connection management burns
  capacity), and a stable plateau.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.inputs import ResourceKind
from ..queueing.distributions import ParetoBounded
from ..virtualization.impact import (
    WEB_CPU_IMPACT,
    WEB_DISK_IO_IMPACT,
    ConstantImpactModel,
    ImpactModel,
)

__all__ = ["WebFileSet", "WebServiceModel", "SPECWEB_FILESET", "SINGLE_FILE_8KB"]


@dataclass(frozen=True)
class WebFileSet:
    """Synthetic static content population.

    ``total_bytes`` and ``files`` fix the population; sizes follow a
    bounded Pareto (rescaled to hit the requested total), popularity a Zipf
    law.  ``cache_bytes`` models the server's page cache: a working set
    larger than the cache forces disk reads, making disk I/O the
    bottleneck.
    """

    total_bytes: float
    files: int
    cache_bytes: float = 4.0 * 2**30  # what an 8 GB box leaves for page cache
    zipf_s: float = 0.8
    pareto_alpha: float = 1.2
    #: The paper's Fig. 5 drives httperf to access the file set *orderly*
    #: (cyclic scan); a cyclic scan over a set larger than the cache gets
    #: zero LRU hits — the classic sequential-flooding pathology.
    sequential_access: bool = False

    def __post_init__(self) -> None:
        if self.total_bytes <= 0.0 or self.files < 1:
            raise ValueError("need positive total size and at least one file")
        if self.cache_bytes < 0.0:
            raise ValueError("cache size must be non-negative")
        if self.zipf_s <= 0.0 or self.pareto_alpha <= 0.0:
            raise ValueError("zipf_s and pareto_alpha must be positive")

    def sample_sizes(self, rng: np.random.Generator) -> np.ndarray:
        """File sizes (bytes) summing to ``total_bytes`` (after rescale)."""
        mean = self.total_bytes / self.files
        dist = ParetoBounded(alpha=self.pareto_alpha, low=mean / 50.0, high=mean * 200.0)
        raw = np.atleast_1d(dist.sample(rng, self.files))
        return raw * (self.total_bytes / raw.sum())

    def popularity(self) -> np.ndarray:
        """Zipf access probabilities over the file population."""
        ranks = np.arange(1, self.files + 1, dtype=float)
        weights = ranks**-self.zipf_s
        return weights / weights.sum()

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of requests absorbed by the page cache.

        The cache holds the most popular files; with Zipf popularity the
        hit fraction is the popularity mass of the cached prefix.  A
        closed-form continuous approximation keeps this deterministic.
        """
        if self.total_bytes <= self.cache_bytes:
            return 1.0
        if self.sequential_access:
            return 0.0  # cyclic scan beyond cache size: LRU never hits
        cached_files = self.files * self.cache_bytes / self.total_bytes
        # Zipf mass of the top-k prefix ~ H_k(s) / H_n(s); harmonic sums
        # approximated by the integral (k^(1-s) - 1)/(1-s) for s != 1.
        s = self.zipf_s
        if abs(s - 1.0) < 1e-9:
            top = math.log(max(cached_files, 1.0))
            total = math.log(self.files)
        else:
            top = (max(cached_files, 1.0) ** (1.0 - s) - 1.0) / (1.0 - s)
            total = (self.files ** (1.0 - s) - 1.0) / (1.0 - s)
        return min(1.0, top / total) if total > 0.0 else 1.0

    @property
    def bottleneck(self) -> ResourceKind:
        """Disk I/O when misses are frequent, CPU when content is cached."""
        return (
            ResourceKind.CPU
            if self.cache_hit_fraction > 0.95
            else ResourceKind.DISK_IO
        )


#: Fig. 5's population: SPECweb2005 file set, ~5.1 GB, ordered access.
SPECWEB_FILESET = WebFileSet(
    total_bytes=5.1 * 2**30, files=120_000, sequential_access=True
)

#: Fig. 6's population: one 8 KB file, always cached.
SINGLE_FILE_8KB = WebFileSet(total_bytes=8.0 * 2**10, files=1)


@dataclass(frozen=True)
class WebServiceModel:
    """Open-loop throughput response of the Web service on one host.

    Parameters follow the paper's measurements: ``native_capacity`` is the
    serving rate of the bottleneck resource on native Linux; ``vms = 0``
    denotes native Linux, ``vms >= 1`` a Xen host with that many Web VMs
    (capacity scaled by the impact model).
    """

    fileset: WebFileSet
    native_capacity: float
    impact_model: ImpactModel | None = None
    #: Stable overload plateau relative to peak (curves "finally remain
    #: stable" in Figs. 5a/6a).
    stable_fraction: float = 0.82
    #: Overload width: how many req/s past capacity the degradation takes.
    overload_width_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.native_capacity <= 0.0:
            raise ValueError("native capacity must be positive")
        if not 0.0 < self.stable_fraction <= 1.0:
            raise ValueError("stable fraction must lie in (0, 1]")
        if self.overload_width_fraction <= 0.0:
            raise ValueError("overload width must be positive")

    @classmethod
    def for_fileset(cls, fileset: WebFileSet) -> "WebServiceModel":
        """Pick capacity and impact model from the file set's bottleneck."""
        if fileset.bottleneck is ResourceKind.DISK_IO:
            return cls(
                fileset=fileset, native_capacity=1420.0, impact_model=WEB_DISK_IO_IMPACT
            )
        return cls(fileset=fileset, native_capacity=3360.0, impact_model=WEB_CPU_IMPACT)

    def _impact(self, vms: int) -> float:
        if vms == 0:
            return 1.0  # native Linux
        model = self.impact_model or ConstantImpactModel(1.0)
        return model.impact(vms)

    def capacity(self, vms: int) -> float:
        """Peak sustainable reply rate with ``vms`` VMs (0 = native)."""
        if vms < 0:
            raise ValueError(f"vms must be non-negative, got {vms}")
        return self.native_capacity * self._impact(vms)

    def reply_rate(self, request_rate: np.ndarray, vms: int = 0) -> np.ndarray:
        """Deterministic throughput curve (replies/s vs requests/s)."""
        r = np.asarray(request_rate, dtype=float)
        if (r < 0).any():
            raise ValueError("request rates must be non-negative")
        cap = self.capacity(vms)
        width = cap * self.overload_width_fraction
        stable = cap * self.stable_fraction
        under = np.minimum(r, cap)
        overload_depth = np.clip((r - cap) / width, 0.0, 1.0)
        over = cap - (cap - stable) * overload_depth
        return np.where(r <= cap, under, over)

    def measure(
        self,
        request_rate: np.ndarray,
        vms: int,
        rng: np.random.Generator,
        rel_noise: float = 0.02,
    ) -> np.ndarray:
        """Noisy throughput observations (what httperf would report)."""
        if rel_noise < 0.0:
            raise ValueError("noise must be non-negative")
        clean = self.reply_rate(request_rate, vms)
        noisy = clean * (1.0 + rel_noise * rng.standard_normal(clean.shape))
        return np.clip(noisy, 0.0, None)

    def stable_mean_throughput(
        self,
        vms: int,
        rng: np.random.Generator | None = None,
        rel_noise: float = 0.0,
    ) -> float:
        """Mean throughput over the stable overload region.

        The paper computes impact factors from "the stable mean throughput"
        of each curve; we average the plateau (requests from 1.5x to 2.5x
        native capacity, mirroring their 700–1200 req/s window for Fig. 5).
        """
        rates = np.linspace(1.5 * self.native_capacity, 2.5 * self.native_capacity, 24)
        if rng is None or rel_noise == 0.0:
            values = self.reply_rate(rates, vms)
        else:
            values = self.measure(rates, vms, rng, rel_noise)
        return float(values.mean())

    def measured_impact_factors(
        self,
        vm_counts,
        rng: np.random.Generator | None = None,
        rel_noise: float = 0.0,
    ) -> np.ndarray:
        """Impact factors a(v) = stable VM throughput / stable native throughput.

        This reproduces the paper's Figs. 5b/6b measurement procedure; the
        experiments refit the regression lines from these values.
        """
        native = self.stable_mean_throughput(0, rng, rel_noise)
        return np.array(
            [
                self.stable_mean_throughput(int(v), rng, rel_noise) / native
                for v in np.atleast_1d(vm_counts)
            ]
        )
