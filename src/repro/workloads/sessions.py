"""Session-structured workload generation.

SPECweb2005 and TPC-W do not fire independent requests: a *session*
arrives (user-initiated TCP sessions are Poisson — the model's assumption
and the paper's citation of Paxson & Floyd), then issues a burst of
requests separated by think times until the session ends.  Request-level
arrivals are therefore *burstier* than Poisson (index of dispersion > 1),
which is exactly why the paper models QoS at the session-acceptance level
and why its loss-system framing is the right abstraction.

This module generates session-structured arrival streams so the test suite
can quantify that burstiness and the experiments can stress the model's
Poisson assumption (the ablation: how wrong is the Erlang sizing when
arrivals are session-bursty?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queueing.distributions import Distribution, Exponential, as_distribution
from ..queueing.poisson import poisson_arrivals

__all__ = ["SessionProfile", "generate_session_arrivals", "index_of_dispersion"]


@dataclass(frozen=True)
class SessionProfile:
    """Statistical description of one service's sessions.

    ``requests_per_session`` is the mean of a geometric law (memoryless
    session length, the standard fit); ``think_time`` the distribution of
    gaps between a session's consecutive requests.
    """

    session_rate: float
    requests_per_session: float
    think_time: Distribution | float = 7.0

    def __post_init__(self) -> None:
        if self.session_rate < 0.0:
            raise ValueError(f"session rate must be >= 0, got {self.session_rate}")
        if self.requests_per_session < 1.0:
            raise ValueError(
                f"mean requests/session must be >= 1, got {self.requests_per_session}"
            )
        object.__setattr__(self, "think_time", as_distribution(self.think_time))

    @property
    def request_rate(self) -> float:
        """Long-run request arrival rate ``lambda_sessions * E[requests]``."""
        return self.session_rate * self.requests_per_session


def generate_session_arrivals(
    profile: SessionProfile,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Request-level arrival times on ``[0, horizon)``.

    Sessions arrive Poisson; each issues ``1 + Geometric`` requests with
    iid think-time gaps.  Requests beyond the horizon are dropped (their
    sessions straddle the boundary).
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    starts = poisson_arrivals(profile.session_rate, horizon, rng)
    if starts.size == 0:
        return starts
    # Geometric with mean m has success prob 1/m, support {1, 2, ...}.
    p = 1.0 / profile.requests_per_session
    lengths = rng.geometric(p, starts.size)
    total = int(lengths.sum())
    out = np.empty(total)
    pos = 0
    for start, length in zip(starts, lengths):
        out[pos] = start
        if length > 1:
            gaps = np.atleast_1d(
                np.asarray(profile.think_time.sample(rng, length - 1), dtype=float)
            )
            out[pos + 1 : pos + length] = start + np.cumsum(gaps)
        pos += length
    out = out[out < horizon]
    out.sort()
    return out


def index_of_dispersion(
    arrivals: np.ndarray, horizon: float, window: float
) -> float:
    """Variance-to-mean ratio of per-window arrival counts.

    1 for Poisson; > 1 for session-bursty streams.  The tests use this to
    certify the generator actually produces the burstiness the module
    docstring promises.
    """
    if window <= 0.0 or horizon <= window:
        raise ValueError("need 0 < window < horizon")
    edges = np.arange(0.0, horizon + window, window)
    counts, _ = np.histogram(np.asarray(arrivals, dtype=float), bins=edges)
    mean = counts.mean()
    if mean == 0.0:
        return 0.0
    return float(counts.var(ddof=1) / mean)
