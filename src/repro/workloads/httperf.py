"""httperf-style open-loop sweep driver.

The paper uses httperf to sweep request rates against the Web server and
record reply rates.  :class:`RateSweep` packages that procedure against any
callable throughput surface: a grid of target request rates, per-point
measurement with sampling noise (real httperf runs are finite, so measured
reply rates carry Poisson counting error), and summary extraction (peak
throughput, saturation point, stable plateau) — the ingredients of the
Fig. 5/6 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["SweepResult", "RateSweep"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one rate sweep against one configuration."""

    request_rates: np.ndarray
    reply_rates: np.ndarray

    def __post_init__(self) -> None:
        if self.request_rates.shape != self.reply_rates.shape:
            raise ValueError("request and reply arrays must align")
        if self.request_rates.ndim != 1 or self.request_rates.size == 0:
            raise ValueError("sweep must contain at least one point")

    @property
    def peak_throughput(self) -> float:
        return float(self.reply_rates.max())

    @property
    def saturation_rate(self) -> float:
        """Request rate at which throughput peaked."""
        return float(self.request_rates[int(np.argmax(self.reply_rates))])

    def stable_mean(self, from_rate: float | None = None) -> float:
        """Mean reply rate over the plateau beyond ``from_rate``.

        Defaults to everything past 1.25x the saturation point, echoing the
        paper's "stable mean throughput" windows.
        """
        threshold = 1.25 * self.saturation_rate if from_rate is None else from_rate
        mask = self.request_rates >= threshold
        if not mask.any():
            # Sweep never reached overload; the peak is the best estimate.
            return self.peak_throughput
        return float(self.reply_rates[mask].mean())

    def goodput_fraction(self) -> np.ndarray:
        """Replies per request at each point (1 under capacity)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(
                self.request_rates > 0.0,
                self.reply_rates / self.request_rates,
                1.0,
            )
        return np.clip(frac, 0.0, None)


class RateSweep:
    """Open-loop load generator sweeping a throughput surface.

    Parameters
    ----------
    throughput_fn:
        Callable ``(request_rates, rng) -> reply_rates`` for one
        configuration; typically a closure over a
        :class:`~repro.workloads.specweb.WebServiceModel` and a VM count.
    duration_per_point:
        Virtual seconds each measurement point runs; reply counts are
        Poisson with mean ``reply_rate * duration``, so longer points mean
        tighter measurements — matching httperf's ``--num-conns`` effect.
    """

    def __init__(
        self,
        throughput_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray],
        duration_per_point: float = 30.0,
    ) -> None:
        if duration_per_point <= 0.0:
            raise ValueError("duration per point must be positive")
        self.throughput_fn = throughput_fn
        self.duration_per_point = duration_per_point

    def run(
        self,
        rates: np.ndarray,
        rng: np.random.Generator,
        counting_noise: bool = True,
    ) -> SweepResult:
        """Measure every rate point."""
        r = np.asarray(rates, dtype=float)
        if r.ndim != 1 or r.size == 0:
            raise ValueError("need a non-empty 1-D rate grid")
        if (r < 0).any():
            raise ValueError("request rates must be non-negative")
        clean = np.asarray(self.throughput_fn(r, rng), dtype=float)
        if clean.shape != r.shape:
            raise ValueError("throughput_fn must return one reply rate per request rate")
        if not counting_noise:
            return SweepResult(request_rates=r, reply_rates=clean)
        counts = rng.poisson(np.clip(clean, 0.0, None) * self.duration_per_point)
        return SweepResult(
            request_rates=r, reply_rates=counts / self.duration_per_point
        )

    @staticmethod
    def default_grid(capacity_estimate: float, points: int = 25) -> np.ndarray:
        """Rate grid from light load to deep overload around a capacity."""
        if capacity_estimate <= 0.0:
            raise ValueError("capacity estimate must be positive")
        if points < 2:
            raise ValueError("need at least two grid points")
        return np.linspace(0.05 * capacity_estimate, 2.5 * capacity_estimate, points)
