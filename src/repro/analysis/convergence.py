"""Sequential run-length control for simulations.

Fixed-horizon simulation either wastes time (horizon too long) or delivers
sloppy estimates (too short).  The standard remedy is sequential
estimation: keep extending the run until the confidence interval of the
target statistic is tight enough.  This module implements that loop for
any replication-style estimator — the experiment harness's ``--full`` mode
uses it to choose horizons honestly instead of hard-coding them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps

__all__ = ["SequentialEstimate", "run_until_precise"]


@dataclass(frozen=True)
class SequentialEstimate:
    """Converged (or budget-capped) sequential estimate."""

    mean: float
    half_width: float
    replications: int
    converged: bool

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    @property
    def relative_precision(self) -> float:
        """Half-width over |mean| (inf when the mean is ~0)."""
        if abs(self.mean) < 1e-300:
            return math.inf
        return self.half_width / abs(self.mean)


def run_until_precise(
    replicate: Callable[[int], float],
    rel_precision: float = 0.05,
    abs_precision: float | None = None,
    confidence: float = 0.95,
    min_replications: int = 5,
    max_replications: int = 200,
) -> SequentialEstimate:
    """Replicate until the CI half-width meets the precision target.

    Parameters
    ----------
    replicate:
        ``replicate(i) -> float`` runs replication ``i`` (the index is the
        caller's seed hook) and returns the statistic.
    rel_precision:
        Target half-width relative to the running mean.  Ignored when the
        mean is ~0 — supply ``abs_precision`` for near-zero statistics
        (e.g. loss probabilities around 1e-3).
    abs_precision:
        Optional absolute half-width target; satisfying *either* target
        stops the loop.
    """
    if not 0.0 < rel_precision < 1.0:
        raise ValueError(f"rel_precision must lie in (0, 1), got {rel_precision}")
    if abs_precision is not None and abs_precision <= 0.0:
        raise ValueError(f"abs_precision must be positive, got {abs_precision}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if min_replications < 2:
        raise ValueError(f"need at least 2 replications, got {min_replications}")
    if max_replications < min_replications:
        raise ValueError("max_replications must be >= min_replications")

    values: list[float] = []
    for i in range(max_replications):
        values.append(float(replicate(i)))
        n = len(values)
        if n < min_replications:
            continue
        arr = np.asarray(values)
        mean = float(arr.mean())
        se = float(arr.std(ddof=1)) / math.sqrt(n)
        t = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
        half = t * se
        ok_abs = abs_precision is not None and half <= abs_precision
        ok_rel = abs(mean) > 1e-300 and half <= rel_precision * abs(mean)
        if ok_abs or ok_rel:
            return SequentialEstimate(
                mean=mean, half_width=half, replications=n, converged=True
            )
    arr = np.asarray(values)
    n = len(values)
    mean = float(arr.mean())
    se = float(arr.std(ddof=1)) / math.sqrt(n) if n > 1 else float("inf")
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=max(n - 1, 1)))
    return SequentialEstimate(
        mean=mean, half_width=t * se, replications=n, converged=False
    )
