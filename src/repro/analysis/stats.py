"""Statistical helpers for simulation output analysis.

Simulation measurements are autocorrelated (a busy period spans many
requests), so naive per-observation CIs understate the error.  The batch-
means method — the standard workhorse for steady-state simulation output —
plus a couple of distribution checks used by the generator tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["BatchMeansResult", "batch_means", "exponential_ks_test", "poisson_dispersion"]


@dataclass(frozen=True)
class BatchMeansResult:
    """Mean estimate with a batch-means confidence interval."""

    mean: float
    half_width: float
    batches: int
    batch_size: int

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        lo, hi = self.interval
        return lo <= value <= hi


def batch_means(
    observations, batches: int = 20, confidence: float = 0.95
) -> BatchMeansResult:
    """Batch-means CI for the steady-state mean of a correlated series.

    Splits the series into ``batches`` contiguous batches, treats batch
    averages as approximately iid normal, and builds a Student-t interval.
    Observations that do not divide evenly lose their tail remainder.
    """
    obs = np.asarray(observations, dtype=float)
    if obs.ndim != 1:
        raise ValueError("observations must be 1-D")
    if batches < 2:
        raise ValueError(f"need at least 2 batches, got {batches}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    batch_size = obs.size // batches
    if batch_size < 1:
        raise ValueError(
            f"too few observations ({obs.size}) for {batches} batches"
        )
    trimmed = obs[: batch_size * batches].reshape(batches, batch_size)
    means = trimmed.mean(axis=1)
    grand = float(means.mean())
    if batches > 1:
        se = float(means.std(ddof=1)) / math.sqrt(batches)
    else:  # pragma: no cover - guarded above
        se = 0.0
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=batches - 1))
    return BatchMeansResult(
        mean=grand, half_width=t * se, batches=batches, batch_size=batch_size
    )


def exponential_ks_test(samples, rate: float) -> float:
    """KS-test p-value for samples against Exponential(rate).

    Used to verify the Poisson generators' interarrival gaps.
    """
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    result = sps.kstest(arr, "expon", args=(0.0, 1.0 / rate))
    return float(result.pvalue)


def poisson_dispersion(counts) -> float:
    """Index of dispersion (variance/mean) of count data.

    ~1 for Poisson counts; the trace tests use it to confirm the diurnal
    generators are locally Poisson-like, and the MMPP-style burst tests to
    confirm they are *not*.
    """
    arr = np.asarray(counts, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two counts")
    mean = arr.mean()
    if mean == 0.0:
        return 0.0
    return float(arr.var(ddof=1) / mean)
