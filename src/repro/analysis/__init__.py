"""Analysis helpers: regression, simulation-output statistics, reporting."""

from .convergence import SequentialEstimate, run_until_precise
from .regression import LinearFit, fit_line, r_squared, residuals
from .report import format_kv, format_series, format_table
from .stats import (
    BatchMeansResult,
    batch_means,
    exponential_ks_test,
    poisson_dispersion,
)

__all__ = [
    "LinearFit",
    "fit_line",
    "r_squared",
    "residuals",
    "format_table",
    "format_series",
    "format_kv",
    "batch_means",
    "BatchMeansResult",
    "exponential_ks_test",
    "poisson_dispersion",
    "SequentialEstimate",
    "run_until_precise",
]
