"""Plain-text table and series rendering for the experiment harness.

Every bench regenerates a paper table or figure; since this is a terminal
library, "regenerating a figure" means printing its data series in a
readable aligned layout.  One renderer keeps all experiment output uniform.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_kv"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    ``columns`` fixes order and selection; defaults to the union of keys in
    first-seen order.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        cols: list[str] = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    else:
        cols = list(columns)
    rendered = [[_cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x: Iterable[float],
    series: Mapping[str, Iterable[float]],
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render one x-axis against several named y-series (a printed figure)."""
    xs = np.asarray(list(x), dtype=float)
    table_rows = []
    data = {name: np.asarray(list(ys), dtype=float) for name, ys in series.items()}
    for name, ys in data.items():
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} does not match the x grid")
    for i, xv in enumerate(xs):
        row: dict[str, object] = {x_label: float(xv)}
        for name, ys in data.items():
            row[name] = float(ys[i])
        table_rows.append(row)
    return format_table(table_rows, columns=[x_label, *data], title=title)


def format_kv(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Aligned key/value block for scalar summaries."""
    if not pairs:
        return (title + "\n" if title else "") + "(empty)"
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)
