"""Regression utilities used by the impact-factor analysis.

The paper fits its measured impact factors with linear regression (Figs.
5b/6b) and a saturating curve (Fig. 8b).  Beyond the fits themselves
(delegated to :mod:`repro.virtualization.impact` for the model objects),
experiments need goodness-of-fit numbers and prediction helpers, which live
here so the benches can report R^2 alongside the recovered coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "fit_line", "r_squared", "residuals"]


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r2: float
    n: int

    def predict(self, x) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.intercept >= 0 else "-"
        return (
            f"y = {self.slope:.4f} x {sign} {abs(self.intercept):.4f}"
            f"  (R^2 = {self.r2:.4f}, n = {self.n})"
        )


def fit_line(x, y) -> LinearFit:
    """OLS fit with R^2, via the normal equations on a 2-column design."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or xa.shape != ya.shape or xa.size < 2:
        raise ValueError("need matching 1-D arrays with at least two points")
    design = np.column_stack([xa, np.ones_like(xa)])
    coef, *_ = np.linalg.lstsq(design, ya, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    pred = slope * xa + intercept
    return LinearFit(
        slope=slope,
        intercept=intercept,
        r2=r_squared(ya, pred),
        n=int(xa.size),
    )


def r_squared(observed, predicted) -> float:
    """Coefficient of determination; 1.0 for a perfect fit.

    Degenerate (zero-variance) observations yield 1.0 when matched exactly
    and 0.0 otherwise, avoiding a 0/0.
    """
    obs = np.asarray(observed, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if obs.shape != pred.shape or obs.ndim != 1 or obs.size == 0:
        raise ValueError("need matching non-empty 1-D arrays")
    ss_res = float(((obs - pred) ** 2).sum())
    ss_tot = float(((obs - obs.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def residuals(observed, predicted) -> np.ndarray:
    """Observed minus predicted, as a plain array."""
    obs = np.asarray(observed, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if obs.shape != pred.shape:
        raise ValueError("arrays must align")
    return obs - pred
