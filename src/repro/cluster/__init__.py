"""Physical-infrastructure substrate: servers, pools, dispatchers, metering.

- :mod:`repro.cluster.server` — normalized physical machines with linear
  power models and on/off state;
- :mod:`repro.cluster.pool` — fleet-level capacity/power queries and the
  shrink/grow reconfiguration consolidation pays off through;
- :mod:`repro.cluster.dispatcher` — LVS-style request dispatchers (the
  paper uses round robin);
- :mod:`repro.cluster.power_meter` — simulated electric parameter tester
  separating idle from workload-attributed energy (Figs. 12–13).
"""

from .availability import (
    ServerReliability,
    expected_loss_with_failures,
    fleet_up_probability,
    servers_with_redundancy,
)
from .dispatcher import (
    Dispatcher,
    LeastConnectionsDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    WeightedRoundRobinDispatcher,
    make_dispatcher,
)
from .pool import ServerPool
from .power_meter import EnergyReading, PowerMeter, apply_platform_effect
from .server import PhysicalServer

__all__ = [
    "PhysicalServer",
    "ServerPool",
    "Dispatcher",
    "RoundRobinDispatcher",
    "WeightedRoundRobinDispatcher",
    "RandomDispatcher",
    "LeastConnectionsDispatcher",
    "make_dispatcher",
    "PowerMeter",
    "EnergyReading",
    "apply_platform_effect",
    "ServerReliability",
    "fleet_up_probability",
    "servers_with_redundancy",
    "expected_loss_with_failures",
]
