"""Physical server abstraction.

A :class:`PhysicalServer` bundles the per-resource capacity of one machine
(in normalized units, per the model's homogeneity assumption) with its
power model and an on/off state.  The paper's energy-management related
work dims clusters by powering off spare nodes; the pool (next module)
exposes exactly that operation so the power benchmarks can count idle
versus powered-off machines separately.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from ..core.inputs import ResourceKind
from ..core.power import ServerPowerModel

__all__ = ["PhysicalServer"]

_ids = itertools.count()


@dataclass
class PhysicalServer:
    """One normalized physical machine.

    ``capacity`` maps resource kinds to normalized capability (1.0 = the
    reference machine of the paper's normalization example).  Utilization
    is tracked per resource for the power meter.
    """

    capacity: Mapping[ResourceKind, float] = field(
        default_factory=lambda: {ResourceKind.CPU: 1.0, ResourceKind.DISK_IO: 1.0}
    )
    power_model: ServerPowerModel = field(default_factory=ServerPowerModel)
    name: str = ""
    powered_on: bool = True

    def __post_init__(self) -> None:
        caps = dict(self.capacity)
        if not caps:
            raise ValueError("server must expose at least one resource")
        for kind, cap in caps.items():
            if not isinstance(kind, ResourceKind):
                raise TypeError(f"capacity keys must be ResourceKind, got {kind!r}")
            if cap <= 0.0:
                raise ValueError(f"capacity[{kind}] must be positive, got {cap}")
        self.capacity = caps
        if not self.name:
            self.name = f"server-{next(_ids)}"
        self._utilization: dict[ResourceKind, float] = {k: 0.0 for k in caps}

    # -- state ------------------------------------------------------------

    def power_on(self) -> None:
        self.powered_on = True

    def power_off(self) -> None:
        """Shut the machine down; a powered-off server draws nothing and
        serves nothing (its utilization is forced to zero)."""
        self.powered_on = False
        for k in self._utilization:
            self._utilization[k] = 0.0

    def set_utilization(self, resource: ResourceKind, value: float) -> None:
        if resource not in self.capacity:
            raise KeyError(f"{self.name} has no resource {resource}")
        if not 0.0 <= value <= 1.0 + 1e-9:
            raise ValueError(f"utilization must lie in [0, 1], got {value}")
        if not self.powered_on:
            raise RuntimeError(f"{self.name} is powered off")
        self._utilization[resource] = min(value, 1.0)

    def utilization(self, resource: ResourceKind) -> float:
        return self._utilization.get(resource, 0.0)

    @property
    def dominant_utilization(self) -> float:
        """Highest per-resource utilization — drives the power draw."""
        return max(self._utilization.values(), default=0.0)

    # -- power --------------------------------------------------------------

    def power_draw(self) -> float:
        """Instantaneous draw in watts (0 when powered off)."""
        if not self.powered_on:
            return 0.0
        return self.power_model.draw(self.dominant_utilization)

    def idle_draw(self) -> float:
        """Draw the machine would have if idle but on."""
        if not self.powered_on:
            return 0.0
        return self.power_model.base_watts
