"""Server availability and N+k redundancy planning.

The utility analytic model sizes for *load*; a production plan must also
size for *failures*.  This module adds the standard availability layer:

- each server is a two-state Markov process (up/down) with mean time
  between failures ``mtbf`` and mean time to repair ``mttr``, giving
  steady-state availability ``A = mtbf / (mtbf + mttr)``;
- a fleet of ``n`` independent servers has ``Binomial(n, A)`` machines up;
- :func:`servers_with_redundancy` finds the smallest fleet ``n`` such that
  at least ``required`` machines are up with probability at least
  ``assurance`` — the "N + k" sizing on top of the model's N.

Combined with the Erlang sizing this answers the full planning question:
"how many machines do I rack so that, despite failures, enough are up to
keep request loss below B?"
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as sps

__all__ = [
    "ServerReliability",
    "fleet_up_probability",
    "servers_with_redundancy",
    "expected_loss_with_failures",
]


@dataclass(frozen=True)
class ServerReliability:
    """Up/down Markov model of one machine (hours)."""

    mtbf: float = 4380.0  # ~6 months between failures
    mttr: float = 8.0     # one working day to repair/replace

    def __post_init__(self) -> None:
        if self.mtbf <= 0.0 or self.mttr <= 0.0:
            raise ValueError("mtbf and mttr must be positive")

    @property
    def availability(self) -> float:
        """Steady-state probability the machine is up."""
        return self.mtbf / (self.mtbf + self.mttr)

    @property
    def annual_failures(self) -> float:
        """Expected failures per year (8766 h)."""
        return 8766.0 / self.mtbf


def fleet_up_probability(
    fleet: int, required: int, reliability: ServerReliability
) -> float:
    """P(at least ``required`` of ``fleet`` independent machines are up)."""
    if fleet < 0 or required < 0:
        raise ValueError("fleet and required must be non-negative")
    if required > fleet:
        return 0.0
    if required == 0:
        return 1.0
    a = reliability.availability
    # P(X >= required) with X ~ Binomial(fleet, a).
    return float(sps.binom.sf(required - 1, fleet, a))


def servers_with_redundancy(
    required: int,
    reliability: ServerReliability,
    assurance: float = 0.999,
    max_extra: int | None = None,
) -> int:
    """Smallest fleet covering ``required`` up-machines with ``assurance``.

    ``fleet_up_probability`` is monotone in the fleet size and tends to 1
    as the fleet grows (any availability > 0), so a geometric expansion
    followed by bisection always terminates — even for pathologically
    unreliable servers where the answer is thousands of spares beyond
    ``required``.  Pass ``max_extra`` to cap the spares an operator is
    willing to consider; past the cap this raises ``RuntimeError``.
    """
    if required < 0:
        raise ValueError(f"required must be non-negative, got {required}")
    if not 0.0 < assurance < 1.0:
        raise ValueError(f"assurance must lie in (0, 1), got {assurance}")
    if required == 0:
        return 0

    def feasible(n: int) -> bool:
        return fleet_up_probability(n, required, reliability) >= assurance

    lo = required
    if feasible(lo):
        return lo
    hi = max(2 * lo, lo + 1)
    while not feasible(hi):
        if max_extra is not None and hi - required > max_extra:
            raise RuntimeError(
                f"no fleet within {max_extra} spares reaches assurance {assurance}"
            )
        lo = hi
        hi *= 2
    # Invariant: lo infeasible, hi feasible; bisect to the boundary.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    if max_extra is not None and hi - required > max_extra:
        raise RuntimeError(
            f"no fleet within {max_extra} spares reaches assurance {assurance}"
        )
    return hi


def expected_loss_with_failures(
    fleet: int,
    offered_load: float,
    reliability: ServerReliability,
) -> float:
    """Failure-averaged Erlang blocking of a fleet.

    Conditions the Erlang-B loss on the number of machines currently up
    (Binomial mixture):  ``E[B] = sum_k P(K = k) E_k(rho)``.  This is the
    quantity the bare model under-reports by assuming a always-healthy
    fleet; the tests quantify the gap.
    """
    if fleet < 0:
        raise ValueError(f"fleet must be non-negative, got {fleet}")
    if offered_load < 0.0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    from ..queueing.erlang import erlang_b

    a = reliability.availability
    total = 0.0
    for k in range(fleet + 1):
        p = float(sps.binom.pmf(k, fleet, a))
        if p > 0.0:
            total += p * erlang_b(k, offered_load)
    return total
