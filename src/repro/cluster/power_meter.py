"""Simulated electric parameter tester (the paper's power measurement rig).

The paper measures fleet power "by an electric parameter tester, which
measures the power consumed by one or more servers switching in it".  Our
substitute samples :class:`~repro.cluster.pool.ServerPool` draw over a
simulated run and integrates it into energy, separating the idle baseline
from the workload-attributed remainder — exactly the decomposition behind
Figs. 12 and 13.

Platform effects the paper measured but could not explain (Xen idling 9%
lower than Linux; workload power 30% lower on consolidated Xen) are applied
by wrapping the pool's power models, not by post-hoc arithmetic, so the
integration path is identical for both platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pool import ServerPool

__all__ = ["EnergyReading", "PowerMeter", "apply_platform_effect"]


@dataclass(frozen=True)
class EnergyReading:
    """Integrated measurement over one metering window."""

    duration: float
    total_energy: float       # watt-seconds (joules)
    idle_energy: float        # what the same powered-on fleet would draw idle
    samples: int

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {self.duration}")
        if self.samples < 0:
            raise ValueError(f"samples must be non-negative, got {self.samples}")

    @property
    def mean_power(self) -> float:
        """Average draw in watts over the window."""
        if self.duration == 0.0:
            return 0.0
        return self.total_energy / self.duration

    @property
    def workload_energy(self) -> float:
        """Energy attributable to the workload (total minus idle baseline).

        This is the quantity Fig. 13 plots after "taking out the power
        consumed by idle servers".
        """
        return self.total_energy - self.idle_energy

    @property
    def busy_over_idle(self) -> float:
        """Fractional increase of measured draw over the idle baseline.

        The paper's Fig. 12 observation: hosting the services raises draw by
        at most ~17% over the same servers idling.
        """
        if self.idle_energy == 0.0:
            return 0.0
        return self.total_energy / self.idle_energy - 1.0


class PowerMeter:
    """Integrates a pool's power draw across explicit samples.

    The discrete-event simulation calls :meth:`sample` whenever fleet
    utilization changes (piecewise-constant draw makes trapezoidal and
    rectangular integration coincide); batch experiments can instead call
    :meth:`integrate_profile` with a utilization time-series.
    """

    def __init__(self, pool: ServerPool):
        self.pool = pool
        self.reset()

    def reset(self) -> None:
        self._last_time: float | None = None
        self._total = 0.0
        self._idle = 0.0
        self._samples = 0

    def sample(self, time: float) -> None:
        """Record that the pool's *current* state held until ``time``.

        The first call only establishes the window start.  Draw between two
        samples is taken from the pool state at the *first* of the two
        (left-continuous step function), so callers should sample *before*
        mutating utilization.
        """
        if self._last_time is None:
            self._last_time = time
            self._window_start = time
            self._draw = self.pool.total_draw()
            self._idle_draw = self.pool.total_idle_draw()
            self._samples = 1
            return
        if time < self._last_time:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._last_time}"
            )
        dt = time - self._last_time
        self._total += self._draw * dt
        self._idle += self._idle_draw * dt
        self._last_time = time
        self._draw = self.pool.total_draw()
        self._idle_draw = self.pool.total_idle_draw()
        self._samples += 1

    def reading(self) -> EnergyReading:
        """Close the window and return the integrated measurement."""
        if self._last_time is None:
            return EnergyReading(duration=0.0, total_energy=0.0, idle_energy=0.0, samples=0)
        return EnergyReading(
            duration=self._last_time - self._window_start,
            total_energy=self._total,
            idle_energy=self._idle,
            samples=self._samples,
        )

    def integrate_profile(
        self, times: np.ndarray, utilizations: np.ndarray, resource=None
    ) -> EnergyReading:
        """Meter a utilization time-series applied uniformly to the pool.

        ``times`` are sample instants (len k), ``utilizations`` the fleet
        utilization holding from each instant to the next (len k; the last
        entry is unused, as is conventional for step functions).
        """
        from ..core.inputs import ResourceKind

        t = np.asarray(times, dtype=float)
        u = np.asarray(utilizations, dtype=float)
        if t.ndim != 1 or t.shape != u.shape or t.size < 2:
            raise ValueError("need matching 1-D arrays with >= 2 samples")
        if (np.diff(t) < 0).any():
            raise ValueError("times must be non-decreasing")
        if (u < 0).any() or (u > 1.0 + 1e-9).any():
            raise ValueError("utilizations must lie in [0, 1]")
        res = resource or ResourceKind.CPU
        self.reset()
        self.pool.apply_uniform_load(res, float(min(u[0], 1.0)))
        self.sample(float(t[0]))
        for i in range(1, t.size):
            # Close the previous interval at the old draw, then register the
            # new utilization as a second zero-width sample at the same time.
            self.sample(float(t[i]))
            if i < t.size - 1:
                self.pool.apply_uniform_load(res, float(min(u[i], 1.0)))
                self.sample(float(t[i]))
        return self.reading()


def apply_platform_effect(
    pool: ServerPool, idle_factor: float = 1.0, dynamic_factor: float = 1.0
) -> None:
    """Rescale every server's power model in place.

    ``idle_factor`` scales the baseline draw (the Xen platform's ~0.91) and
    ``dynamic_factor`` the utilization-proportional part (~0.70 measured
    per-workload on consolidated Xen).
    """
    from ..core.power import ServerPowerModel

    if idle_factor <= 0.0 or dynamic_factor <= 0.0:
        raise ValueError("platform factors must be positive")
    for server in pool:
        pm = server.power_model
        base = pm.base_watts * idle_factor
        dynamic = (pm.max_watts - pm.base_watts) * dynamic_factor
        server.power_model = ServerPowerModel(base, base + dynamic)
