"""Server pool: the fleet the planner sizes and the power meter watches."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..core.inputs import ResourceKind
from ..core.power import ServerPowerModel
from .server import PhysicalServer

__all__ = ["ServerPool"]


class ServerPool:
    """An ordered collection of physical servers.

    Provides fleet-level queries (total capacity, aggregate draw) and the
    dynamic shrink/grow operation the energy-management literature the
    paper cites performs ("dynamically reconfiguring the cluster to operate
    with fewer nodes under light load").
    """

    def __init__(self, servers: Sequence[PhysicalServer]):
        servers = list(servers)
        if not servers:
            raise ValueError("pool must contain at least one server")
        names = [s.name for s in servers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate server names in pool: {names}")
        self._servers = servers

    @classmethod
    def homogeneous(
        cls,
        count: int,
        capacity: dict[ResourceKind, float] | None = None,
        power_model: ServerPowerModel | None = None,
        name_prefix: str = "node",
    ) -> "ServerPool":
        """Build a pool of ``count`` identical normalized servers."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        cap = capacity or {ResourceKind.CPU: 1.0, ResourceKind.DISK_IO: 1.0}
        pm = power_model or ServerPowerModel()
        return cls(
            [
                PhysicalServer(capacity=dict(cap), power_model=pm, name=f"{name_prefix}-{i}")
                for i in range(count)
            ]
        )

    # -- collection protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[PhysicalServer]:
        return iter(self._servers)

    def __getitem__(self, index: int) -> PhysicalServer:
        return self._servers[index]

    def by_name(self, name: str) -> PhysicalServer:
        for s in self._servers:
            if s.name == name:
                return s
        raise KeyError(f"no server named {name!r}")

    # -- fleet queries ----------------------------------------------------------

    @property
    def powered_on(self) -> list[PhysicalServer]:
        return [s for s in self._servers if s.powered_on]

    def total_capacity(self, resource: ResourceKind) -> float:
        """Aggregate powered-on capacity for one resource kind."""
        return sum(s.capacity.get(resource, 0.0) for s in self.powered_on)

    def total_draw(self) -> float:
        """Instantaneous fleet power draw in watts."""
        return sum(s.power_draw() for s in self._servers)

    def total_idle_draw(self) -> float:
        """Fleet draw if every powered-on machine idled."""
        return sum(s.idle_draw() for s in self._servers)

    def mean_utilization(self, resource: ResourceKind) -> float:
        """Average utilization across powered-on servers (0 if none)."""
        on = self.powered_on
        if not on:
            return 0.0
        return sum(s.utilization(resource) for s in on) / len(on)

    # -- reconfiguration ---------------------------------------------------------

    def shrink_to(self, count: int) -> int:
        """Power off servers beyond the first ``count`` powered-on ones.

        Returns the number of machines switched off.  This is the
        consolidation dividend: the model says N < M machines suffice, so
        the operator powers the rest down.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        switched = 0
        seen_on = 0
        for s in self._servers:
            if not s.powered_on:
                continue
            seen_on += 1
            if seen_on > count:
                s.power_off()
                switched += 1
        return switched

    def grow_to(self, count: int) -> int:
        """Power servers back on until ``count`` are running."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        switched = 0
        on = len(self.powered_on)
        for s in self._servers:
            if on >= count:
                break
            if not s.powered_on:
                s.power_on()
                on += 1
                switched += 1
        return switched

    def apply_uniform_load(self, resource: ResourceKind, utilization: float) -> None:
        """Spread a fleet-level utilization evenly over powered-on servers."""
        for s in self.powered_on:
            s.set_utilization(resource, utilization)
