"""Request dispatchers (the testbed's LVS stand-in).

The paper fronts both services with Linux Virtual Server using round robin.
The simulation needs the same role: pick which backend (server or VM
replica) receives each arriving request.  Besides round robin we provide
the classic alternatives so the dispatcher ablation bench can show the
loss-probability consequences of the choice.

Dispatchers are deliberately oblivious to service time — they see only the
backend set and (for least-connections) the in-flight counts supplied by
the caller, mirroring what a real L4 balancer can observe.

Observability: with a real metrics registry installed at construction time
(see :mod:`repro.obs`) every dispatcher exports per-backend pick counters
and a live imbalance gauge (max picks over mean picks — 1.0 is a perfectly
even spread).  With the default null registry the per-pick cost is one
cached boolean check.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import numpy as np

from ..obs import get_bus, get_registry, get_trace

__all__ = [
    "Dispatcher",
    "RoundRobinDispatcher",
    "WeightedRoundRobinDispatcher",
    "RandomDispatcher",
    "LeastConnectionsDispatcher",
    "make_dispatcher",
]


class Dispatcher(abc.ABC):
    """Chooses a backend index for each incoming request."""

    def __init__(self, backends: int):
        if backends < 1:
            raise ValueError(f"need at least one backend, got {backends}")
        self.backends = backends
        registry = get_registry()
        self._instrumented = registry.enabled
        if self._instrumented:
            policy = type(self).__name__
            self._pick_counts = [0] * backends
            self._pick_counters = [
                registry.counter(
                    "dispatcher_picks_total",
                    help="requests routed per backend",
                    labels={"policy": policy, "backend": str(i)},
                )
                for i in range(backends)
            ]
            self._imbalance = registry.gauge(
                "dispatcher_imbalance_ratio",
                help="max per-backend picks over mean picks (1.0 = even)",
                labels={"policy": policy},
            )
        # Virtual-time pick series (construct-time-bound like the registry;
        # the bus clock reads a simulator only after bus.attach_simulator).
        bus = get_bus()
        self._bus_instrumented = bus.enabled
        if self._bus_instrumented:
            self._bus = bus
            self._pick_series = bus.counter(
                "dispatcher.picks", {"policy": type(self).__name__}
            )

    def _record(self, chosen: int) -> int:
        """Account the pick; concrete ``pick`` implementations route
        their return value through this."""
        if self._instrumented:
            counts = self._pick_counts
            counts[chosen] += 1
            self._pick_counters[chosen].inc()
            total = sum(counts)
            self._imbalance.set(max(counts) * len(counts) / total)
        if self._bus_instrumented:
            self._pick_series.add(self._bus.now)
        return chosen

    @abc.abstractmethod
    def pick(self, in_flight: Sequence[int] | None = None) -> int:
        """Index of the backend to receive the next request.

        ``in_flight`` (current connection count per backend) is consulted
        only by load-aware policies.
        """

    def _check_in_flight(self, in_flight: Sequence[int] | None) -> None:
        if in_flight is not None and len(in_flight) != self.backends:
            raise ValueError(
                f"in_flight has {len(in_flight)} entries for {self.backends} backends"
            )


class RoundRobinDispatcher(Dispatcher):
    """LVS ``rr``: strict rotation (the paper's configuration)."""

    def __init__(self, backends: int):
        super().__init__(backends)
        self._next = 0

    def pick(self, in_flight: Sequence[int] | None = None) -> int:
        self._check_in_flight(in_flight)
        chosen = self._next
        self._next = (self._next + 1) % self.backends
        return self._record(chosen)


class WeightedRoundRobinDispatcher(Dispatcher):
    """LVS ``wrr``: rotation proportional to integer weights.

    Uses the smooth-WRR algorithm (nginx-style): each round adds the weight
    to a per-backend credit, picks the largest, then subtracts the total —
    produces an evenly interleaved schedule rather than bursts.
    """

    def __init__(self, weights: Sequence[int]):
        super().__init__(len(weights))
        if any(w < 1 for w in weights):
            raise ValueError(f"weights must be positive integers, got {list(weights)}")
        self.weights = list(weights)
        self._credits = [0] * len(weights)
        self._total = sum(weights)

    def pick(self, in_flight: Sequence[int] | None = None) -> int:
        self._check_in_flight(in_flight)
        for i, w in enumerate(self.weights):
            self._credits[i] += w
        chosen = max(range(self.backends), key=lambda i: self._credits[i])
        self._credits[chosen] -= self._total
        return self._record(chosen)


class RandomDispatcher(Dispatcher):
    """Uniform random backend choice.

    Callers inside ``repro.simulation`` must pass an explicit seeded
    ``rng`` — the engine's reproducibility guarantee (same seed, same run)
    is silently void otherwise.  Constructing the unseeded fallback emits a
    ``dispatcher.unseeded_rng`` warning on the active trace log so the
    breach shows up in exported traces.
    """

    def __init__(self, backends: int, rng: np.random.Generator | None = None):
        super().__init__(backends)
        if rng is None:
            get_trace().warning(
                "dispatcher.unseeded_rng",
                policy="random",
                backends=backends,
                message="RandomDispatcher built without an explicit rng; "
                "runs are not reproducible",
            )
            rng = np.random.default_rng()
        self.rng = rng

    def pick(self, in_flight: Sequence[int] | None = None) -> int:
        self._check_in_flight(in_flight)
        return self._record(int(self.rng.integers(0, self.backends)))


class LeastConnectionsDispatcher(Dispatcher):
    """LVS ``lc``: pick the backend with the fewest in-flight requests.

    Ties break round-robin so a fresh system does not hammer backend 0.
    """

    def __init__(self, backends: int):
        super().__init__(backends)
        self._tiebreak = 0

    def pick(self, in_flight: Sequence[int] | None = None) -> int:
        if in_flight is None:
            raise ValueError("least-connections requires in_flight counts")
        self._check_in_flight(in_flight)
        best = min(in_flight)
        candidates = [i for i, c in enumerate(in_flight) if c == best]
        chosen = candidates[self._tiebreak % len(candidates)]
        self._tiebreak += 1
        return self._record(chosen)


def make_dispatcher(
    policy: str,
    backends: int,
    weights: Sequence[int] | None = None,
    rng: np.random.Generator | None = None,
) -> Dispatcher:
    """Factory keyed on LVS-style policy names: rr, wrr, lc, random."""
    policy = policy.lower()
    if policy == "rr":
        return RoundRobinDispatcher(backends)
    if policy == "wrr":
        if weights is None:
            raise ValueError("wrr requires weights")
        return WeightedRoundRobinDispatcher(weights)
    if policy == "lc":
        return LeastConnectionsDispatcher(backends)
    if policy == "random":
        return RandomDispatcher(backends, rng)
    raise ValueError(f"unknown dispatcher policy {policy!r} (rr|wrr|lc|random)")
