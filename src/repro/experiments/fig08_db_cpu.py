"""Fig. 8 — DB WIPS vs emulated browsers, native and 1–9 VMs.

TPC-W drives the 2.7 GB e-book database; the workload is CPU-intensive.
Panel (a): WIPS curves — native Linux and a *single* VM deliver only about
half the throughput of several concurrent VMs (the OS software serialises
the DB service; with multiple VMs, CPU rather than software becomes the
bottleneck).  Panel (b): the saturating impact-factor curve with asymptote
~1.85, refit from measurements as the paper did.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_series
from ..obs import fidelity
from ..virtualization.impact import DB_CPU_IMPACT, fit_saturating_impact
from ..workloads.tpcw import DbServiceModel
from .base import ExperimentResult, register

__all__ = ["run", "VM_COUNTS"]

VM_COUNTS = tuple(range(1, 10))


@register("fig8")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    model = DbServiceModel()
    ebs = np.arange(100, 2600, 250 if fast else 100)

    curves: dict[str, np.ndarray] = {}
    for vms in (0, *VM_COUNTS):
        label = "native" if vms == 0 else f"{vms}vm"
        curves[label] = model.measure_wips_curve(
            ebs, vms, rng, rel_noise=0.015
        )

    measured_a = model.measured_impact_factors(
        VM_COUNTS, rng=rng, rel_noise=0.01
    )
    fit = fit_saturating_impact(np.array(VM_COUNTS, dtype=float), measured_a)
    published = DB_CPU_IMPACT

    rows = [
        {
            "vms": v,
            "impact_measured": round(float(a), 4),
            "impact_fit": round(fit.impact(v), 4),
            "impact_published": round(published.impact(v), 4),
        }
        for v, a in zip(VM_COUNTS, measured_a)
    ]
    multi_vm_peak = float(curves["4vm"].max())
    single_ratio = float(curves["1vm"].max()) / multi_vm_peak
    native_ratio = float(curves["native"].max()) / multi_vm_peak
    summary = {
        "fit_ceiling": round(fit.ceiling, 4),
        "fit_half_v2": round(fit.half_v2, 4),
        "published_ceiling": published.ceiling,
        "published_half_v2": published.half_v2,
        "ceiling_abs_error": round(abs(fit.ceiling - published.ceiling), 4),
        "native_over_multivm": round(native_ratio, 3),
        "one_vm_over_multivm": round(single_ratio, 3),
        "software_bottleneck_confirmed": bool(single_ratio < 0.65),
    }
    text = (
        format_series(
            ebs,
            curves,
            x_label="EBs",
            title="Fig. 8(a) — DB WIPS vs emulated browsers (2.7 GB database)",
        )
        + "\n\n"
        + format_kv(
            summary, title="Fig. 8(b) — saturating impact factor (CPU & software)"
        )
    )
    return ExperimentResult(
        experiment="fig8",
        title="DB service: WIPS curves and the >1 impact factor of multi-VM hosting",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the saturating impact fit and the
# software-bottleneck diagnosis behind it.
fidelity.declare_expectations(
    "fig8",
    fidelity.Expectation(
        "fit_ceiling",
        1.85,
        abs_tol=0.05,
        source="Fig. 8: saturating fit ceiling ~1.85x",
    ),
    fidelity.Expectation(
        "native_over_multivm",
        0.5,
        abs_tol=0.1,
        source="Fig. 8: one native DB peaks near half the multi-VM peak",
    ),
    fidelity.Expectation(
        "software_bottleneck_confirmed",
        True,
        op="bool",
        source="Fig. 8: single VM <65% of multi-VM implies a software bottleneck",
    ),
)
