"""Fig. 2 — the consolidation motivation.

Three services with staggered diurnal peaks are offered to dedicated
servers versus consolidated servers; the figure's message is that the peak
of the summed workload stays below the sum of per-service peaks, so the
consolidated pool needs fewer machines at the same assurance level.

This experiment regenerates the figure's data: per-service traces, the
combined trace, peak statistics, the headroom fraction, and the server
counts the utility analytic model assigns to both deployments of the same
three services.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..core import ModelInputs, ResourceKind, ServiceSpec, UtilityAnalyticModel
from ..obs import fidelity
from ..workloads.traces import DiurnalProfile, TraceBundle, consolidation_headroom
from .base import ExperimentResult, register

__all__ = ["run"]

#: Three services with distinct peak hours (the figure's colored curves):
#: an office-hours business app, an evening consumer site, an overnight
#: batch-facing API.  Rates in requests/s against a mu=100 server.
PROFILES = (
    DiurnalProfile(name="business", base=30.0, peak=260.0, peak_hour=10.0),
    DiurnalProfile(name="consumer", base=40.0, peak=300.0, peak_hour=20.0),
    DiurnalProfile(name="batch-api", base=60.0, peak=200.0, peak_hour=3.0),
)

_SERVICE_MU = 100.0
_IMPACT = 0.9


@register("fig2")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    days = 2.0 if fast else 14.0
    bundle = TraceBundle.sample(
        list(PROFILES), days=days, samples_per_hour=4 if fast else 12, rng=rng
    )
    peaks = bundle.per_service_peaks()
    combined_peak = bundle.combined_peak()
    headroom = consolidation_headroom(bundle)

    # Size both deployments at the respective peak rates (worst case the
    # figure's dashed "servers needed" line represents).
    services = tuple(
        ServiceSpec(
            name=p.name,
            arrival_rate=peaks[p.name],
            service_rates={ResourceKind.CPU: _SERVICE_MU},
            impact_factors={ResourceKind.CPU: _IMPACT},
        )
        for p in PROFILES
    )
    solution = UtilityAnalyticModel(
        ModelInputs(services, loss_probability=0.01)
    ).solve()

    rows = []
    for p in PROFILES:
        rows.append(
            {
                "service": p.name,
                "peak_hour": p.peak_hour,
                "peak_rate": round(peaks[p.name], 1),
                "dedicated_servers": solution.dedicated_for(p.name).servers,
            }
        )
    rows.append(
        {
            "service": "CONSOLIDATED",
            "peak_hour": "-",
            "peak_rate": round(combined_peak, 1),
            "dedicated_servers": solution.consolidated_servers,
        }
    )
    summary = {
        "sum_of_peaks": round(sum(peaks.values()), 1),
        "peak_of_sum": round(combined_peak, 1),
        "headroom_fraction": round(headroom, 4),
        "dedicated_servers_M": solution.dedicated_servers,
        "consolidated_servers_N": solution.consolidated_servers,
        "infrastructure_saving": round(solution.infrastructure_saving, 4),
    }
    text = (
        format_table(rows, title="Fig. 2 — workload peaks and server needs")
        + "\n\n"
        + format_kv(summary, title="Consolidation headroom")
    )
    return ExperimentResult(
        experiment="fig2",
        title="Workload consolidation motivation (peak-of-sum < sum-of-peaks)",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations (graded by `repro.obs.fidelity`).  N moves by
# one server between fast and full horizons, hence the one-server band.
fidelity.declare_expectations(
    "fig2",
    fidelity.Expectation(
        "dedicated_servers_M", 24, source="Fig. 2: 24 dedicated servers"
    ),
    fidelity.Expectation(
        "consolidated_servers_N",
        18,
        abs_tol=1,
        source="Fig. 2: consolidated fleet size",
        note="fast horizons land on 17, full on 18",
    ),
    fidelity.Expectation(
        "headroom_fraction",
        0.42,
        abs_tol=0.03,
        source="Fig. 2: peak-of-sum vs sum-of-peaks headroom",
    ),
    fidelity.Expectation(
        "infrastructure_saving",
        0.2,
        op="ge",
        source="Fig. 2: consolidation must save infrastructure",
    ),
)
