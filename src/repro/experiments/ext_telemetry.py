"""Extension experiment: telemetry + alarms over a simulated diurnal day.

The paper's planning model is static; the ROADMAP's dynamic-consolidation
control loop needs interval-level telemetry to act on.  This experiment
exercises that substrate end to end: three diurnal services (one hit by an
evening flash crowd) drive a consolidated pool as nonhomogeneous Poisson
streams (thinning against a :class:`~repro.workloads.traces.TraceBundle`
sample), the virtual-time telemetry bus records per-pool occupancy /
arrivals / losses / power series, and an OpenStack-Neat-style
:class:`~repro.obs.alarms.AlarmManager` detects the overnight underload
trough and the peak/flash overload windows.

Fidelity hook: inside the peak 3-hour window the offered load is roughly
stationary, so the measured window loss should track the Erlang-B loss at
the window's mean offered load — the same quasi-stationary argument the
paper uses to size pools for the busy hour.

The recorded series and alarm events ride out through
``ExperimentResult.artifacts`` (key ``"timeseries"``, schema
``repro.timeseries/v1``), which is what keeps ``--timeseries-out``
bit-identical across ``--jobs``: worker-process global state never merges
back, the picklable result does.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..core.inputs import ResourceKind
from ..core.power import ServerPowerModel
from ..obs import fidelity
from ..obs.alarms import AlarmManager, AlarmRule
from ..obs.timeseries import TelemetryBus, scoped_bus
from ..queueing.erlang import erlang_b, min_servers
from ..simulation.loss_network import LossNetwork, ServiceTraffic
from ..workloads.traces import DiurnalProfile, FlashCrowd, TraceBundle
from .base import ExperimentResult, register

__all__ = ["run"]

_MU = 2.0  # service rate per server (mean holding 0.5 h)
_TARGET_B = 0.02
_BUCKET_H = 0.5
_SAMPLES_PER_HOUR = 2
_PEAK_WINDOW_H = 3.0

_PROFILES = (
    DiurnalProfile(
        "web", base=2.0, peak=16.0, peak_hour=14.0, noise=0.05,
        flash=FlashCrowd(hour=20.0, magnitude=2.2, duration=2.0),
    ),
    DiurnalProfile("api", base=1.5, peak=9.0, peak_hour=11.0, noise=0.05),
    DiurnalProfile("batch", base=1.0, peak=5.0, peak_hour=18.0, noise=0.05),
)


def _window_counts(bus: TelemetryBus, name: str, t_lo: float, t_hi: float) -> float:
    """Sum a counter family's events with bucket start in ``[t_lo, t_hi)``."""
    total = 0.0
    for series in bus.series():
        if series.name != name:
            continue
        width = series.bucket_width
        for idx, value in enumerate(series.values()):
            if t_lo <= idx * width < t_hi:
                total += value
    return total


@register("ext-telemetry")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    days = 2 if fast else 7
    horizon = days * 24.0

    bundle = TraceBundle.sample(
        list(_PROFILES), days=days, samples_per_hour=_SAMPLES_PER_HOUR, rng=rng
    )
    hours = bundle.hours
    rate_schedule = {
        name: list(zip(hours.tolist(), trace.tolist()))
        for name, trace in bundle.traces.items()
    }

    # Size the pool for the *mean* offered load at the paper's 2% target —
    # deliberately not the peak, so the diurnal swing produces both alarm
    # regimes: overnight underload and busy-hour/flash overload.
    mean_rho = float(bundle.combined.mean()) / _MU
    servers = min_servers(mean_rho, _TARGET_B)

    bus = TelemetryBus(bucket_width=_BUCKET_H, max_buckets=256)
    with scoped_bus(bus):
        traffics = [
            ServiceTraffic.exponential(p.name, 0.0, {ResourceKind.CPU: _MU})
            for p in _PROFILES
        ]
        network = LossNetwork(
            servers, traffics, pool="diurnal", power_model=ServerPowerModel()
        )
        result = network.run(horizon, rng, rate_schedule=rate_schedule)

    manager = AlarmManager(
        [
            AlarmRule(
                "pool-overload",
                "pool.busy_servers",
                "overload",
                threshold=0.80 * servers,
                clear=0.65 * servers,
                window=2,
                debounce=2,
                labels={"pool": "diurnal"},
            ),
            AlarmRule(
                "pool-underload",
                "pool.busy_servers",
                "underload",
                threshold=0.35 * servers,
                clear=0.45 * servers,
                window=2,
                debounce=2,
                labels={"pool": "diurnal"},
            ),
        ]
    )
    events = manager.emit(manager.evaluate(bus))
    # Alarms still firing when the simulated day ends would otherwise leave
    # no record; they ride the artifact stream as state="open_at_exit" docs
    # (summary keys stay untouched — they are golden-pinned).
    open_events = manager.emit(manager.open_alarms(bus))
    alarm_counts = manager.summarize(events)

    # Quasi-stationary fidelity check: mean offered load and measured loss
    # inside the busiest _PEAK_WINDOW_H-hour window of the sampled trace.
    combined = bundle.combined
    win = int(_PEAK_WINDOW_H * _SAMPLES_PER_HOUR)
    rolling = np.convolve(combined, np.ones(win) / win, mode="valid")
    peak_start = float(hours[int(np.argmax(rolling))])
    peak_end = peak_start + _PEAK_WINDOW_H
    peak_rho = float(rolling.max()) / _MU
    erlang_peak = erlang_b(servers, peak_rho)
    win_arrivals = _window_counts(bus, "pool.arrivals", peak_start, peak_end)
    win_losses = _window_counts(bus, "pool.losses", peak_start, peak_end)
    peak_loss = win_losses / win_arrivals if win_arrivals else 0.0

    rows = [
        {
            "series": s.name,
            "labels": ",".join(f"{k}={v}" for k, v in s.labels),
            "agg": s.agg,
            "buckets": s.buckets,
            "bucket_h": s.bucket_width,
            "total_or_mean": round(
                s.total if s.agg == "counter" else float(np.mean(s.values())), 3
            ),
        }
        for s in bus.series()
    ]

    summary = {
        "servers": servers,
        "mean_offered_load": round(mean_rho, 3),
        "peak_offered_load": round(peak_rho, 3),
        "peak_window_start_h": round(peak_start, 2),
        "overall_loss": round(result.overall_loss, 4),
        "peak_window_loss": round(peak_loss, 4),
        "erlang_peak_prediction": round(erlang_peak, 4),
        "peak_loss_vs_erlang": round(peak_loss / erlang_peak, 3)
        if erlang_peak > 0.0
        else 0.0,
        "overload_fires": alarm_counts["overload_fires"],
        "underload_fires": alarm_counts["underload_fires"],
        "alarm_clears": alarm_counts["clears"],
        "telemetry_series": len(bus),
        "both_alarm_kinds_fired": bool(
            alarm_counts["overload_fires"] >= 1
            and alarm_counts["underload_fires"] >= 1
        ),
        "note": "pool sized for the mean load; diurnal swing drives both "
        "alarm regimes",
    }
    text = (
        format_table(rows, title="Extension — virtual-time telemetry over a diurnal day")
        + "\n\n"
        + format_kv(summary, title="Telemetry + threshold alarms")
    )
    return ExperimentResult(
        experiment="ext-telemetry",
        title="Diurnal telemetry bus + threshold alarms on a consolidated pool",
        rows=tuple(rows),
        summary=summary,
        text=text,
        artifacts={
            "timeseries": bus.to_docs()
            + [e.to_doc() for e in events]
            + [e.to_doc() for e in open_events],
        },
    )


# Paper-fidelity expectations: quasi-stationary Erlang-B at the busy-hour
# window, and the diurnal swing exercising both alarm regimes.
fidelity.declare_expectations(
    "ext-telemetry",
    fidelity.Expectation(
        "both_alarm_kinds_fired",
        True,
        op="bool",
        source="Extension: Neat-style thresholds detect trough and peak",
    ),
    fidelity.Expectation(
        "peak_loss_vs_erlang",
        1.0,
        op="approx",
        abs_tol=0.5,
        drift_factor=2.0,
        source="Extension: busy-hour loss tracks Erlang B at the window's "
        "mean offered load (quasi-stationary)",
        note="ratio of measured peak-window loss to the Erlang-B prediction",
    ),
)
