"""Fig. 12 — total power: eight dedicated vs four consolidated servers.

The paper meters the whole fleets with an electric parameter tester, busy
and idle, and reports:

- consolidation saves up to ~53% of total power (roughly tracking the 50%
  server reduction, amplified by the Xen platform's lower draw);
- servers hosting services draw at most ~17% more than the same servers
  idle (the Barroso & Hölzle energy-proportionality observation);
- the idle Xen platform draws ~9% less than idle Linux.

The simulated meter integrates both fleets' draw over the Group 2
case-study run with the measured platform effects applied to the
consolidated (Xen) side.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..obs import fidelity
from ..parallel import sweep_grid
from ..simulation.datacenter import CaseStudyResult, DataCenterSimulation
from .base import ExperimentResult, ParamGrid, register
from .casestudy import GROUP2

__all__ = ["run", "group2_case_study"]


def _fleet_point(fleet: str, horizon: float, seed: int):
    """Meter one Group 2 fleet.

    Each fleet gets its own grid-index-derived RNG stream so the pair can
    be metered on separate cores without perturbing either measurement.
    """
    sim = DataCenterSimulation(GROUP2.inputs())
    rng = np.random.default_rng(seed)
    if fleet == "dedicated":
        return sim.run_dedicated(GROUP2.island_sizes, horizon, rng)
    return sim.run_consolidated(GROUP2.expected_consolidated, horizon, rng)


def _fleet_block(block: ParamGrid, *, seeds: list[int]) -> list:
    """One column block of fleet meterings (sweep-engine worker)."""
    return [
        _fleet_point(row["fleet"], row["horizon"], seed)
        for row, seed in zip(block.rows(), seeds)
    ]


def group2_case_study(seed: int, fast: bool, jobs: int = 1) -> CaseStudyResult:
    """Shared Group 2 run for the two power figures (engine-routed)."""
    horizon = 150.0 if fast else 2000.0
    grid = ParamGrid(
        {
            "fleet": ["dedicated", "consolidated"],
            "horizon": [horizon, horizon],
        }
    )
    dedicated, consolidated = sweep_grid(
        _fleet_block,
        grid,
        jobs=jobs,
        base_seed=seed,
        name="power:group2",
    )
    return CaseStudyResult(dedicated=dedicated, consolidated=consolidated)


@register("fig12")
def run(seed: int = 2009, fast: bool = True, jobs: int = 1) -> ExperimentResult:
    case = group2_case_study(seed, fast, jobs=jobs)
    ded, con = case.dedicated.energy, case.consolidated.energy

    rows = [
        {
            "fleet": "dedicated (8, Linux)",
            "state": "busy",
            "mean_power_W": round(ded.mean_power, 1),
        },
        {
            "fleet": "dedicated (8, Linux)",
            "state": "idle",
            "mean_power_W": round(ded.idle_energy / ded.duration, 1),
        },
        {
            "fleet": "consolidated (4, Xen)",
            "state": "busy",
            "mean_power_W": round(con.mean_power, 1),
        },
        {
            "fleet": "consolidated (4, Xen)",
            "state": "idle",
            "mean_power_W": round(con.idle_energy / con.duration, 1),
        },
    ]
    idle_linux_per_server = ded.idle_energy / ded.duration / case.dedicated.servers
    idle_xen_per_server = con.idle_energy / con.duration / case.consolidated.servers
    summary = {
        # Absolute energy block: the fleet audit layer (repro.obs.fleet)
        # prices these numbers in $/kWh and gCO2/kWh, so the summary must
        # carry watts and joules, not just saving fractions.
        "dedicated_servers": case.dedicated.servers,
        "consolidated_servers": case.consolidated.servers,
        "dedicated_mean_power_W": round(ded.mean_power, 1),
        "consolidated_mean_power_W": round(con.mean_power, 1),
        "dedicated_energy_Wh": round(ded.total_energy / 3600.0, 2),
        "consolidated_energy_Wh": round(con.total_energy / 3600.0, 2),
        "metering_duration_s": round(ded.duration, 1),
        "power_saving_fraction": round(case.power_saving, 3),
        "paper_power_saving": 0.53,
        "server_reduction_fraction": round(
            1.0 - case.consolidated.servers / case.dedicated.servers, 3
        ),
        "dedicated_busy_over_idle": round(ded.busy_over_idle, 3),
        "consolidated_busy_over_idle": round(con.busy_over_idle, 3),
        "busy_increase_below_17pct": bool(
            max(ded.busy_over_idle, con.busy_over_idle) <= 0.17 + 0.02
        ),
        "xen_idle_saving_per_server": round(
            1.0 - idle_xen_per_server / idle_linux_per_server, 3
        ),
        "paper_xen_idle_saving": 0.09,
    }
    text = (
        format_table(
            rows,
            title="Fig. 12 — fleet power: 8 dedicated vs 4 consolidated, busy & idle",
        )
        + "\n\n"
        + format_kv(summary, title="Power savings and platform effects")
    )
    return ExperimentResult(
        experiment="fig12",
        title="Total power comparison (up to 53% saving)",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the 53%-power and 50%-server headlines,
# plus the measured Xen idle-power discount behind the model.
fidelity.declare_expectations(
    "fig12",
    fidelity.Expectation(
        "power_saving_fraction",
        0.53,
        rel_tol=0.05,
        source="Headline: total power drops ~53%",
    ),
    fidelity.Expectation(
        "server_reduction_fraction",
        0.5,
        source="Headline: 50% fewer servers",
    ),
    fidelity.Expectation(
        "xen_idle_saving_per_server",
        0.09,
        abs_tol=0.01,
        source="Fig. 12: Xen idles ~9% below native Linux",
    ),
    fidelity.Expectation(
        "busy_increase_below_17pct",
        True,
        op="bool",
        source="Fig. 12: busy draw stays within ~17% of idle",
    ),
)
