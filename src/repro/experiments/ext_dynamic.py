"""Extension experiment: dynamic consolidation control loop over a week.

The ROADMAP's dynamic-consolidation item asks what *reactivity* costs: the
paper sizes a fleet once for the busy hour, while a live controller can
follow the diurnal valley down and power servers off.  This experiment
runs three strategies over the same sampled week of diurnal traffic
(three staggered services, one evening flash crowd) and compares servers-
on hours, energy, migrations, and loss:

- **static** — the paper's answer: the peak QoS-critical fleet, always on;
- **oracle** — :meth:`DynamicCapacityPlanner.plan` with hindsight (exact
  per-period rates, hysteresis + boot energy, no detection lag);
- **reactive** — the :class:`~repro.control.controller
  .ConsolidationController`: pressure alarms, safety headroom, draining
  shutdowns with an explicit live-migration cost model.

The comparison runs in **fluid mode** at data-center scale (~a thousand
hosts): per-tick offered loads drive the batched Erlang-B core, so the
full week costs seconds, not hours.  A second, small-pool phase replays
the same controller inside the discrete-event simulator
(:meth:`LossNetwork.run(control=...) <repro.simulation.loss_network
.LossNetwork.run>`) to cross-check the fluid shortcut: measured loss in
the busiest window should track the Erlang-B prediction at the window's
mean pool size and offered load — the paper's quasi-stationary argument,
now under a capacity schedule the controller itself chose.

Controller decisions ride out three ways: ``control.*`` telemetry series
and alarm events in the ``"timeseries"`` artifact, ``kind="control"``
trace events when observability is on, and decision documents in the
``"control"`` artifact — all inside the picklable result, which is what
keeps ``--jobs`` runs bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.report import format_kv, format_table
from ..control import ControllerConfig, ConsolidationController, FleetState, run_comparison
from ..core.dynamic import DynamicCapacityPlanner
from ..core.inputs import ResourceKind
from ..core.power import ServerPowerModel
from ..obs import fidelity
from ..obs.timeseries import TelemetryBus, scoped_bus
from ..queueing.erlang import erlang_b
from ..simulation.loss_network import LossNetwork, ServiceTraffic
from ..virtualization.placement import VmDemand
from ..workloads.traces import DiurnalProfile, FlashCrowd, TraceBundle
from .base import ExperimentResult, register
from ..core.inputs import ServiceSpec

__all__ = ["run"]

_MU = 2.0  # service rate per server (mean holding 0.5 h)
_TARGET_B = 0.02
_BUCKET_H = 0.5
_SAMPLES_PER_HOUR = 2
_PEAK_WINDOW_H = 3.0
_SCALE = 40.0  # fluid-phase rate multiplier: pushes the fleet to ~1000 hosts
_VM_SLICE = 0.25  # per-VM CPU reservation (burst capability stays pooled)

_PROFILES = (
    DiurnalProfile(
        "web", base=2.0, peak=16.0, peak_hour=14.0, noise=0.05,
        flash=FlashCrowd(hour=20.0, magnitude=2.2, duration=2.0),
    ),
    DiurnalProfile("api", base=1.5, peak=9.0, peak_hour=11.0, noise=0.05),
    DiurnalProfile("batch", base=1.0, peak=5.0, peak_hour=18.0, noise=0.05),
)


def _scaled(profile: DiurnalProfile, scale: float) -> DiurnalProfile:
    return DiurnalProfile(
        profile.name, base=profile.base * scale, peak=profile.peak * scale,
        peak_hour=profile.peak_hour, noise=profile.noise, flash=profile.flash,
    )


def _services() -> list[ServiceSpec]:
    return [
        ServiceSpec(p.name, 1.0, {ResourceKind.CPU: _MU}, {ResourceKind.CPU: 1.0})
        for p in _PROFILES
    ]


def _vm_inventory(scale: float) -> list[VmDemand]:
    """Per-service VM reservations covering the off-peak (base) load."""
    vms: list[VmDemand] = []
    for profile in _PROFILES:
        count = max(1, round(profile.base * scale / _MU / _VM_SLICE))
        vms.extend(
            VmDemand(f"{profile.name}-{i}", {ResourceKind.CPU: _VM_SLICE})
            for i in range(count)
        )
    return vms


def _build_fleet(
    planner: DynamicCapacityPlanner, bundle: TraceBundle, scale: float
) -> FleetState:
    """Host universe sized from the trace: 15% headroom at t=0, 50% at peak."""
    first = {name: float(tr[0]) for name, tr in bundle.traces.items()}
    peak_idx = int(np.argmax(bundle.combined))
    peak = {name: float(tr[peak_idx]) for name, tr in bundle.traces.items()}
    initial_on = math.ceil(1.15 * planner.servers_needed(first))
    max_hosts = math.ceil(1.5 * planner.servers_needed(peak)) + 2
    return FleetState(max_hosts, _vm_inventory(scale), initial_on=initial_on)


def _window_counts(bus: TelemetryBus, name: str, t_lo: float, t_hi: float) -> float:
    """Sum a counter family's events with bucket start in ``[t_lo, t_hi)``."""
    total = 0.0
    for series in bus.series():
        if series.name != name:
            continue
        width = series.bucket_width
        for idx, value in enumerate(series.values()):
            if t_lo <= idx * width < t_hi:
                total += value
    return total


def _gauge_values(bus: TelemetryBus, name: str, pool: str) -> list[float]:
    """Per-bucket values of one labelled gauge (empty if never recorded)."""
    for series in bus.series():
        if series.name == name and ("pool", pool) in tuple(series.labels):
            return list(series.values())
    return []


def _scheduled_loss(
    on_values: list[float],
    bundle: TraceBundle,
    mask: np.ndarray | None = None,
) -> float:
    """Arrival-weighted Erlang-B loss under the controller's capacity
    schedule — the fluid prediction the DES measurement is checked against.

    ``on_values[i]`` is the pool size the controller held during tick
    ``i`` (the ``control.servers_on`` gauge bucket); the capacity varies
    inside any window, so the prediction must be per-tick — Erlang B at
    the window-*mean* capacity underestimates badly (Jensen).
    """
    combined = bundle.combined
    num = den = 0.0
    for i in range(combined.size):
        if mask is not None and not mask[i]:
            continue
        on = on_values[i] if i < len(on_values) else on_values[-1]
        servers = max(int(round(on)), 1)
        rho = float(combined[i]) / _MU
        weight = float(combined[i])
        num += weight * erlang_b(servers, rho)
        den += weight
    return num / den if den > 0.0 else 0.0


@register("ext-dynamic")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)

    bus = TelemetryBus(bucket_width=_BUCKET_H, max_buckets=512)

    # -- phase 1: fluid three-way comparison at data-center scale ------------
    week = TraceBundle.sample(
        [_scaled(p, _SCALE) for p in _PROFILES],
        days=7, samples_per_hour=_SAMPLES_PER_HOUR, rng=rng,
    )
    planner = DynamicCapacityPlanner(
        _services(), _TARGET_B,
        power_model=ServerPowerModel(),
        period_length=_BUCKET_H * 3600.0,
        hold_periods=1,
    )
    fleet = _build_fleet(planner, week, _SCALE)
    with scoped_bus(bus):
        comparison = run_comparison(
            planner, week, fleet,
            config=ControllerConfig(interval=_BUCKET_H, pool="dc"),
            peak_window_h=_PEAK_WINDOW_H,
        )
    static = comparison.outcomes["static"]
    oracle = comparison.outcomes["oracle"]
    reactive = comparison.outcomes["reactive"]
    ctl_summary = comparison.controller_summary

    # -- phase 2: DES cross-check on a small pool ----------------------------
    des_days = 2 if fast else 7
    des_horizon = des_days * 24.0
    des_bundle = TraceBundle.sample(
        list(_PROFILES), days=des_days, samples_per_hour=_SAMPLES_PER_HOUR,
        rng=rng,
    )
    rate_schedule = {
        name: list(zip(des_bundle.hours.tolist(), trace.tolist()))
        for name, trace in des_bundle.traces.items()
    }
    des_planner = DynamicCapacityPlanner(
        _services(), _TARGET_B,
        power_model=ServerPowerModel(),
        period_length=_BUCKET_H * 3600.0,
        hold_periods=1,
    )
    des_fleet = _build_fleet(des_planner, des_bundle, 1.0)
    des_initial = des_fleet.powered_count
    with scoped_bus(bus):
        des_controller = ConsolidationController(
            des_planner, des_fleet,
            ControllerConfig(interval=_BUCKET_H, pool="des"),
        )
        traffics = [
            ServiceTraffic.exponential(p.name, 0.0, {ResourceKind.CPU: _MU})
            for p in _PROFILES
        ]
        network = LossNetwork(
            des_fleet.powered_count, traffics, pool="dynamic",
            power_model=ServerPowerModel(),
        )
        des_result = network.run(
            des_horizon, rng, rate_schedule=rate_schedule, control=des_controller
        )
        des_events = des_controller.finalize(des_horizon)

    # Quasi-stationary fidelity: inside the busiest window the measured loss
    # should track Erlang B at the window's mean pool size + offered load.
    combined = des_bundle.combined
    win = int(_PEAK_WINDOW_H * _SAMPLES_PER_HOUR)
    rolling = np.convolve(combined, np.ones(win) / win, mode="valid")
    peak_start = float(des_bundle.hours[int(np.argmax(rolling))])
    peak_end = peak_start + _PEAK_WINDOW_H
    peak_mask = (des_bundle.hours >= peak_start) & (des_bundle.hours < peak_end)
    on_values = _gauge_values(bus, "control.servers_on", "des")
    erlang_peak = _scheduled_loss(on_values, des_bundle, peak_mask)
    fluid_loss = _scheduled_loss(on_values, des_bundle)
    win_arrivals = _window_counts(bus, "pool.arrivals", peak_start, peak_end)
    win_losses = _window_counts(bus, "pool.losses", peak_start, peak_end)
    peak_loss = win_losses / win_arrivals if win_arrivals else 0.0

    rows = [static.row(), oracle.row(), reactive.row()]
    des_summary = des_controller.summary()
    summary = {
        "fleet_hosts": fleet.max_hosts,
        "static_servers": static.servers_on[0],
        "packing_floor": fleet.packing_floor,
        "static_server_hours": round(static.server_hours, 1),
        "oracle_server_hours": round(oracle.server_hours, 1),
        "reactive_server_hours": round(reactive.server_hours, 1),
        "reactive_between": bool(comparison.reactive_between),
        "saving_vs_static_pct": round(
            100.0 * (1.0 - reactive.server_hours / static.server_hours), 1
        ),
        "regret_vs_oracle_pct": round(
            100.0 * (reactive.server_hours / oracle.server_hours - 1.0), 1
        ),
        "reactive_boots": reactive.boots,
        "reactive_shutdowns": reactive.shutdowns,
        "reactive_migrations": reactive.migrations,
        "migration_energy_kwh": ctl_summary["migration_energy_kwh"],
        "overload_fires": ctl_summary["overload_fires"],
        "underload_fires": ctl_summary["underload_fires"],
        "alarm_clears": ctl_summary["alarm_clears"],
        "des_days": des_days,
        "des_initial_servers": des_initial,
        "des_boots": des_summary["boots"],
        "des_shutdowns": des_summary["shutdowns"],
        "des_migrations": des_summary["migrations"],
        "des_overall_loss": round(des_result.overall_loss, 4),
        "fluid_loss_prediction": round(fluid_loss, 4),
        "des_loss_vs_fluid": round(des_result.overall_loss / fluid_loss, 3)
        if fluid_loss > 0.0
        else 0.0,
        "des_peak_window_loss": round(peak_loss, 4),
        "erlang_peak_prediction": round(erlang_peak, 4),
        "peak_loss_vs_erlang": round(peak_loss / erlang_peak, 3)
        if erlang_peak > 0.0
        else 0.0,
        "telemetry_series": len(bus),
        "note": "fluid week at ~1000-host scale; DES replay cross-checks "
        "the controller against Erlang B in the busy window",
    }
    text = (
        format_table(
            rows,
            title="Extension — static vs. oracle vs. reactive consolidation "
            "(fluid week)",
        )
        + "\n\n"
        + format_kv(summary, title="Dynamic consolidation control loop")
    )
    control_docs = (
        [{"phase": "fluid", **d.to_doc()} for d in comparison.decisions]
        + [{"phase": "des", **d.to_doc()} for d in des_controller.decisions]
        + [{"phase": "summary", "strategies": rows}]
    )
    return ExperimentResult(
        experiment="ext-dynamic",
        title="Dynamic consolidation: static plan vs. oracle vs. reactive "
        "controller",
        rows=tuple(rows),
        summary=summary,
        text=text,
        artifacts={
            "timeseries": bus.to_docs()
            + [e.to_doc() for e in comparison.events]
            + [e.to_doc() for e in des_events],
            "control": control_docs,
        },
    )


# Paper-fidelity expectations: the reactive controller pays for detection
# lag and headroom (worse than hindsight) but follows the valley down
# (better than the static peak plan); and the DES busy window still obeys
# the quasi-stationary Erlang-B argument under controller-chosen capacity.
fidelity.declare_expectations(
    "ext-dynamic",
    fidelity.Expectation(
        "reactive_between",
        True,
        op="bool",
        source="Extension: reactive consolidation lands between the static "
        "peak plan and the hindsight oracle on servers-on hours",
    ),
    fidelity.Expectation(
        "des_loss_vs_fluid",
        1.0,
        op="approx",
        abs_tol=0.75,
        drift_factor=2.0,
        source="Extension: DES loss under the reactive controller tracks "
        "the per-tick Erlang-B prediction at the controller's own "
        "capacity schedule (quasi-stationary fluid limit)",
        note="ratio of measured DES overall loss to the schedule-aware "
        "fluid prediction",
    ),
    fidelity.Expectation(
        "peak_loss_vs_erlang",
        1.0,
        op="approx",
        abs_tol=3.0,
        drift_factor=2.0,
        source="Extension: busiest-window loss under live control tracks "
        "per-tick Erlang B at the scheduled capacity",
        note="~100 arrivals land in the 3 h window, so the ratio is wide-"
        "tolerance by construction; the whole-horizon des_loss_vs_fluid "
        "metric is the tight check",
    ),
)
