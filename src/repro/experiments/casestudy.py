"""The paper's Section IV case study, as reusable constants and builders.

Serving rates and impact factors come from the paper's text (Section
IV.C.2), with OCR dropouts reconstructed as documented in DESIGN.md:

    mu_wi = 1420 req/s   Web service on disk I/O
    mu_wc = 3360 req/s   Web service on CPU
    mu_dc =  100 WIPS    DB service on CPU
    mu_di =  inf         DB service's disk demand ~ zero
    a_wi  = 0.8,  a_dc = 0.9,  a_wc = 0.65

Workload intensities follow the paper's selection rule ("the intensive
workload that the servers can afford", Fig. 9): the per-service arrival
rate sits near the top of the Erlang-admissible range for the dedicated
island size.  With these inputs the utility analytic model reproduces the
paper's two experiment groups exactly:

    Group 1:  lambda_w = 600,  lambda_d = 40, B = 0.01  ->  M = 6, N = 3
    Group 2:  lambda_w = 1200, lambda_d = 80, B = 0.01  ->  M = 8, N = 4

(Table I's literal numbers are unrecoverable from the provided text; these
rows regenerate its structure from the model itself.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ModelInputs, ResourceKind, ServiceSpec

__all__ = [
    "MU_WEB_DISK_IO",
    "MU_WEB_CPU",
    "MU_DB_CPU",
    "A_WEB_DISK_IO",
    "A_DB_CPU",
    "A_WEB_CPU",
    "LOSS_PROBABILITY",
    "web_service",
    "db_service",
    "case_study_inputs",
    "CaseStudyGroup",
    "GROUP1",
    "GROUP2",
    "GROUPS",
]

MU_WEB_DISK_IO = 1420.0
MU_WEB_CPU = 3360.0
MU_DB_CPU = 100.0

A_WEB_DISK_IO = 0.8
A_DB_CPU = 0.9
A_WEB_CPU = 0.65

LOSS_PROBABILITY = 0.01


def web_service(arrival_rate: float, virtualized: bool = True) -> ServiceSpec:
    """The SPECweb2005-driven e-commerce Web service.

    ``virtualized=False`` drops the impact factors (native-Linux rates),
    which is what the dedicated scenario and the ideal-hypervisor
    counterfactual use.
    """
    impacts = (
        {ResourceKind.CPU: A_WEB_CPU, ResourceKind.DISK_IO: A_WEB_DISK_IO}
        if virtualized
        else {}
    )
    return ServiceSpec(
        name="web",
        arrival_rate=arrival_rate,
        service_rates={
            ResourceKind.CPU: MU_WEB_CPU,
            ResourceKind.DISK_IO: MU_WEB_DISK_IO,
        },
        impact_factors=impacts,
    )


def db_service(arrival_rate: float, virtualized: bool = True) -> ServiceSpec:
    """The TPC-W-driven e-book DB service (CPU-bound; disk demand ~ 0)."""
    impacts = {ResourceKind.CPU: A_DB_CPU} if virtualized else {}
    return ServiceSpec(
        name="db",
        arrival_rate=arrival_rate,
        service_rates={ResourceKind.CPU: MU_DB_CPU},
        impact_factors=impacts,
    )


def case_study_inputs(
    web_rate: float,
    db_rate: float,
    loss_probability: float = LOSS_PROBABILITY,
    virtualized: bool = True,
) -> ModelInputs:
    """Bundle both services into validated model inputs."""
    return ModelInputs(
        services=(
            web_service(web_rate, virtualized),
            db_service(db_rate, virtualized),
        ),
        loss_probability=loss_probability,
    )


@dataclass(frozen=True)
class CaseStudyGroup:
    """One of the paper's two verification experiment groups."""

    name: str
    web_rate: float
    db_rate: float
    loss_probability: float
    expected_dedicated: int       # M: dedicated servers (web + db islands)
    expected_web_island: int
    expected_db_island: int
    expected_consolidated: int    # N

    def inputs(self, virtualized: bool = True) -> ModelInputs:
        return case_study_inputs(
            self.web_rate, self.db_rate, self.loss_probability, virtualized
        )

    @property
    def island_sizes(self) -> dict[str, int]:
        return {"web": self.expected_web_island, "db": self.expected_db_island}


#: Group 1: six dedicated servers (3 Web + 3 DB) -> three consolidated.
GROUP1 = CaseStudyGroup(
    name="group1",
    web_rate=600.0,
    db_rate=40.0,
    loss_probability=LOSS_PROBABILITY,
    expected_dedicated=6,
    expected_web_island=3,
    expected_db_island=3,
    expected_consolidated=3,
)

#: Group 2: eight dedicated servers (4 Web + 4 DB) -> four consolidated.
GROUP2 = CaseStudyGroup(
    name="group2",
    web_rate=1200.0,
    db_rate=80.0,
    loss_probability=LOSS_PROBABILITY,
    expected_dedicated=8,
    expected_web_island=4,
    expected_db_island=4,
    expected_consolidated=4,
)

GROUPS = (GROUP1, GROUP2)
