"""Experiment registry CLI.

``python -m repro.experiments`` (or the ``repro-experiments`` console
script) runs any subset of the paper reproductions and prints their tables
and series.  ``--full`` switches to publication-grade horizons.

Observability: ``--metrics-out`` and ``--trace-out`` enable the
instrumentation layer (:mod:`repro.obs`) and export a Prometheus-format
metric snapshot / a JSONL event trace after the run.  Every observed run
also writes a deterministic run manifest (canonical inputs hash, seed,
model version, wall time, metric snapshot) next to the results: in
``--output`` when given, else beside the metric/trace/profile/report
files, else under ``results/`` for ``--full`` runs.

``--profile-out FILE`` profiles every experiment span (cProfile +
tracemalloc) and dumps one accumulated top-N hotspot report; ``--progress``
prints heartbeat lines to stderr during long sweeps — completed/total,
ETA, trace-event deltas, and a stall warning when nothing has moved within
the stall window.

Fidelity: every observed run grades its results against the paper-expected
values each experiment module declares (``repro.obs.fidelity``), prints the
scoreboard, and appends a ``FIDELITY_<date>_<sha>.json`` artifact next to
the manifest; ``--fail-on-fidelity`` turns a ``fail`` verdict into exit
code 1 (the CI push gate).  ``--report-out FILE`` additionally renders the
whole run — manifest, metrics, trace, bench trend, fidelity scoreboard,
experiment summaries — into one self-contained HTML report.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from time import perf_counter
from typing import Sequence

from ..obs import (
    AuditAssumptions,
    MetricsRegistry,
    ProgressReporter,
    SpanProfiler,
    TraceLog,
    build_and_render,
    build_fidelity_artifact,
    build_ledger,
    build_manifest,
    collect_bench_docs,
    compare_artifacts,
    environment_fingerprint,
    evaluate_summaries,
    load_artifact,
    render_report,
    scoped_registry,
    scoped_trace,
    scoreboard_table,
    write_fidelity_artifact,
    write_fleet_artifact,
    write_manifest,
    write_prometheus,
    write_report,
    write_timeseries_jsonl,
    write_trace_jsonl,
)
from ..obs.ledger import ledger_with_live_results
from ..parallel import ParallelSweep, SweepStats, record_cache_metrics, shared_cache

# Importing the experiment modules populates the registry.
from . import (  # noqa: F401  (imported for registration side effects)
    applications,
    ext_dynamic,
    ext_multiservice,
    ext_scale,
    ext_telemetry,
    ext_wan,
    fig02_motivation,
    fig05_web_io,
    fig06_web_cpu,
    fig07_vcpu_pinning,
    fig08_db_cpu,
    fig09_operating_point,
    fig10_group1,
    fig11_group2,
    fig12_power_total,
    fig13_power_workload,
    table1,
)
from .base import all_experiments, get_experiment

__all__ = ["main", "run_all"]


def run_all(
    seed: int = 2009, fast: bool = True, jobs: int = 1
) -> dict[str, object]:
    """Run every registered experiment; returns name -> ExperimentResult.

    ``jobs > 1`` fans the experiments out over a process pool via the
    sweep engine; results are bit-identical to ``jobs=1``.
    """
    names = sorted(all_experiments())
    results, _stats = _sweep_experiments(names, seed=seed, fast=fast, jobs=jobs)
    return dict(zip(names, results))


def _accepts_jobs(fn) -> bool:
    """Whether an experiment ``run`` callable takes the ``jobs`` keyword."""
    try:
        return "jobs" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin callables
        return False


def _experiment_task(task: tuple):
    """Run one registered experiment (sweep-engine worker).

    Top-level so it pickles; importing this module in a spawned worker
    re-populates the experiment registry.
    """
    name, seed, fast, inner_jobs = task
    fn = get_experiment(name)
    if inner_jobs > 1 and _accepts_jobs(fn):
        return fn(seed=seed, fast=fast, jobs=inner_jobs)
    return fn(seed=seed, fast=fast)


def _sweep_experiments(
    names: Sequence[str], *, seed: int, fast: bool, jobs: int
) -> tuple[list, SweepStats]:
    """Engine-routed experiment runs (deterministic at every ``jobs``).

    With several experiments requested the fan-out happens *across*
    experiments (one task each, no nested pools); a single requested
    experiment instead passes ``jobs`` down to its internal grid when it
    supports one (the sweep-heavy modules do).
    """
    inner_jobs = jobs if len(names) == 1 else 1
    sweep = ParallelSweep(
        _experiment_task,
        jobs=1 if inner_jobs > 1 else jobs,
        chunk_size=1,
        name="experiments",
    )
    results = sweep.run([(name, seed, fast, inner_jobs) for name in names])
    return results, sweep.stats


def _manifest_dir(args) -> Path | None:
    """Where the run manifest lands (None = no manifest written)."""
    if args.output:
        return Path(args.output)
    if args.metrics_out:
        return Path(args.metrics_out).parent
    if args.trace_out:
        return Path(args.trace_out).parent
    if args.profile_out:
        return Path(args.profile_out).parent
    if args.timeseries_out:
        return Path(args.timeseries_out).parent
    if args.report_out:
        return Path(args.report_out).parent
    if args.fleet_out:
        return Path(args.fleet_out).parent
    if args.full:
        return Path("results")
    return None


#: Committed bench baseline the report compares the newest artifact against.
_BENCH_BASELINE = Path("benchmarks/baselines/BENCH_baseline.json")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan experiments (or a single experiment's parameter grid) "
        "out over N worker processes; results are bit-identical to "
        "--jobs 1 at the same seed (the tested determinism guarantee)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="publication-grade horizons (slower, tighter statistics); "
        "also writes a run manifest under results/",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also export each artifact's data as DIR/<id>.csv and .json",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="enable observability and write a Prometheus-format metric "
        "snapshot to FILE after the run",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="enable observability and write the JSONL event trace "
        "(one span per experiment) to FILE after the run",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="profile every experiment span (cProfile + tracemalloc) and "
        "write the accumulated top-N hotspot report to FILE",
    )
    parser.add_argument(
        "--timeseries-out",
        metavar="FILE",
        help="write the virtual-time telemetry recorded by instrumented "
        "experiments (schema repro.timeseries/v1, one JSON document per "
        "line: series then alarm events) to FILE; bit-identical across "
        "--jobs values at the same seed",
    )
    parser.add_argument(
        "--alarms",
        action="store_true",
        help="print each threshold-alarm transition recorded by the run "
        "(rule, state, virtual time, value) after the experiment output",
    )
    parser.add_argument(
        "--control",
        action="store_true",
        help="print each consolidation-controller decision recorded by the "
        "run (phase, action, virtual time, pressure, fleet sizes) after "
        "the experiment output",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print heartbeat progress lines (ETA, trace deltas, stall "
        "detection) to stderr during the sweep",
    )
    parser.add_argument(
        "--progress-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="heartbeat period for --progress (default: 5s)",
    )
    parser.add_argument(
        "--report-out",
        metavar="FILE",
        help="render the run (manifest, metrics, trace, bench trend, "
        "fidelity scoreboard, summaries) into one self-contained HTML file",
    )
    parser.add_argument(
        "--fleet-out",
        metavar="FILE",
        help="aggregate this run plus every on-disk artifact (results, "
        "bench baselines) into the executive fleet dashboard (self-"
        "contained HTML + FLEET_*.json next to it)",
    )
    parser.add_argument(
        "--price-usd-per-kwh",
        type=float,
        default=AuditAssumptions.price_usd_per_kwh,
        metavar="USD",
        help="electricity price for the fleet audit (default: %(default)s; "
        "recorded in the run manifest)",
    )
    parser.add_argument(
        "--carbon-g-per-kwh",
        type=float,
        default=AuditAssumptions.carbon_g_per_kwh,
        metavar="G",
        help="grid carbon intensity for the fleet audit "
        "(default: %(default)s; recorded in the run manifest)",
    )
    parser.add_argument(
        "--server-capex-usd",
        type=float,
        default=AuditAssumptions.server_capex_usd,
        metavar="USD",
        help="per-server capex, amortized, for the fleet audit "
        "(default: %(default)s; recorded in the run manifest)",
    )
    parser.add_argument(
        "--fail-on-fidelity",
        action="store_true",
        help="exit 1 when any fidelity verdict is 'fail' (CI push gate)",
    )
    args = parser.parse_args(argv)

    try:
        audit_assumptions = AuditAssumptions(
            price_usd_per_kwh=args.price_usd_per_kwh,
            carbon_g_per_kwh=args.carbon_g_per_kwh,
            server_capex_usd=args.server_capex_usd,
        )
    except ValueError as exc:
        parser.error(str(exc))

    if args.list:
        for name in sorted(all_experiments()):
            print(name)
        return 0

    names = args.experiments or sorted(all_experiments())
    manifest_dir = _manifest_dir(args)
    observed = manifest_dir is not None or args.progress

    registry = MetricsRegistry("experiments") if observed else None
    trace = TraceLog() if observed else None
    profiler = SpanProfiler() if args.profile_out else None
    reporter = (
        ProgressReporter(
            total=len(names),
            interval_s=args.progress_interval,
            registry=registry,
            trace=trace,
        )
        if args.progress
        else None
    )

    results_by_name: dict[str, object] = {}
    sweep_stats: dict[str, object] | None = None
    cache_baseline = shared_cache().stats()

    def emit(result) -> None:
        print("=" * 72)
        print(f"[{result.experiment}] {result.title}")
        print("=" * 72)
        print(result.text)
        if args.alarms:
            for doc in result.artifacts.get("timeseries", ()):
                if doc.get("kind") != "alarm":
                    continue
                print(
                    f"  alarm {doc['rule']} {doc['state']} t={doc['t']:g} "
                    f"value={doc['value']:g} threshold={doc['threshold']:g}"
                )
        if args.control:
            for doc in result.artifacts.get("control", ()):
                if "kind" not in doc:
                    continue
                print(
                    f"  control [{doc.get('phase', '?')}] {doc['kind']} "
                    f"t={doc['t']:g} pressure={doc['pressure']:g} "
                    f"servers={doc['servers_before']}->{doc['servers_after']} "
                    f"migrations={doc['migrations']}"
                )
        if args.output:
            csv_path, json_path = result.export(args.output)
            print(f"\n  exported: {csv_path}  {json_path}")
        print()

    def run() -> None:
        for name in names:
            fn = get_experiment(name)
            if trace is not None:
                span = (
                    profiler.span(trace, "experiment", experiment=name)
                    if profiler is not None
                    else trace.span("experiment", experiment=name)
                )
                with span as span_fields:
                    result = fn(seed=args.seed, fast=not args.full)
                    span_fields["rows"] = len(result.rows)
            else:
                result = fn(seed=args.seed, fast=not args.full)
            results_by_name[name] = result
            if reporter is not None:
                reporter.advance(name)
            emit(result)

    def run_parallel() -> None:
        # Collect via the sweep engine, then render in name order with the
        # same emit() the serial path uses — stdout is byte-identical to
        # --jobs 1 because the results are.
        nonlocal sweep_stats
        results, stats = _sweep_experiments(
            names, seed=args.seed, fast=not args.full, jobs=args.jobs
        )
        sweep_stats = stats.as_dict()
        for name, result in zip(names, results):
            results_by_name[name] = result
            if trace is not None:
                trace.emit("experiment_done", experiment=name, rows=len(result.rows))
            if reporter is not None:
                reporter.advance(name)
            emit(result)

    runner = run if args.jobs == 1 else run_parallel
    t0 = perf_counter()
    if observed:
        with scoped_registry(registry), scoped_trace(trace):
            if reporter is not None:
                reporter.start()
            try:
                runner()
            finally:
                if reporter is not None:
                    reporter.finish()
            # Surface this process's Erlang-cache activity next to the
            # origin="workers" counters the sweep engine already merged.
            record_cache_metrics(registry, cache_baseline)
    else:
        runner()
    wall_time = perf_counter() - t0

    # Telemetry documents ride inside the (picklable) results, never in
    # worker-process global state — which is what keeps --timeseries-out
    # bit-identical across --jobs values.  Name order matches stdout.
    telemetry_docs: list = []
    control_docs: list = []
    for name in sorted(results_by_name):
        artifacts = getattr(results_by_name[name], "artifacts", None) or {}
        telemetry_docs.extend(artifacts.get("timeseries", ()))
        control_docs.extend(
            d for d in artifacts.get("control", ()) if "kind" in d
        )

    # Grade the run against the paper-expected values declared next to
    # each experiment, and show the scoreboard with the results.
    scoreboard = evaluate_summaries(
        {name: result.summary for name, result in results_by_name.items()}
    )
    if scoreboard.verdicts:
        print(scoreboard_table(scoreboard))
    fidelity_doc = build_fidelity_artifact(
        scoreboard,
        extra={"inputs": {"seed": args.seed, "full": bool(args.full)}},
    )

    manifest = None
    try:
        if observed:
            if args.metrics_out:
                write_prometheus(registry, args.metrics_out)
            if args.trace_out:
                write_trace_jsonl(trace, args.trace_out)
            if profiler is not None:
                profiler.write(args.profile_out)
            if trace is not None and trace.dropped:
                print(
                    f"warning: trace ring dropped {trace.dropped} event(s) "
                    f"(capacity {trace.capacity}); by kind: "
                    f"{trace.dropped_by_kind}",
                    file=sys.stderr,
                )
            if manifest_dir is not None:
                manifest = build_manifest(
                    {
                        "tool": "repro-experiments",
                        "experiments": list(names),
                        "seed": args.seed,
                        "full": bool(args.full),
                    },
                    seed=args.seed,
                    wall_time_s=wall_time,
                    registry=registry,
                    trace=trace,
                    # jobs and audit live outside `inputs` on purpose: the
                    # inputs hash must be identical across --jobs values
                    # and price assumptions (the results are), while two
                    # fleet dashboards built from the same runs at
                    # different prices stay distinguishable via `audit`.
                    extra={
                        "parallel": {
                            "jobs": args.jobs,
                            "cache": shared_cache().stats(),
                            "sweep": sweep_stats,
                        },
                        "audit": audit_assumptions.as_dict(),
                        "timeseries": {
                            "out": args.timeseries_out,
                            "documents": len(telemetry_docs),
                            "alarm_events": sum(
                                1
                                for d in telemetry_docs
                                if d.get("kind") == "alarm"
                            ),
                            # Alarms that never cleared before the run
                            # ended — recorded so post-hoc audits can see
                            # runs that finished mid-incident.
                            "open_alarms": [
                                {
                                    "rule": d["rule"],
                                    "alarm_kind": d.get("alarm_kind"),
                                    "series": d.get("series"),
                                    "t": d.get("t"),
                                    "labels": d.get("labels", {}),
                                }
                                for d in telemetry_docs
                                if d.get("kind") == "alarm"
                                and d.get("state") == "open_at_exit"
                            ],
                            "alarms_printed": bool(args.alarms),
                        },
                        # Controller decisions, like jobs/audit, live
                        # outside `inputs`: the decisions are part of the
                        # results, not the run's identity.
                        "control": {
                            "decisions": len(control_docs),
                            "boots": sum(d.get("booted", 0) for d in control_docs),
                            "shutdowns": sum(
                                d.get("shut_down", 0) for d in control_docs
                            ),
                            "migrations": sum(
                                d.get("migrations", 0) for d in control_docs
                            ),
                            "decisions_printed": bool(args.control),
                        },
                    },
                )
                manifest_path = write_manifest(
                    manifest, Path(manifest_dir) / "run_manifest.json"
                )
                print(f"run manifest: {manifest_path}", file=sys.stderr)
        if args.timeseries_out:
            ts_path = write_timeseries_jsonl(telemetry_docs, args.timeseries_out)
            print(
                f"timeseries: {ts_path} ({len(telemetry_docs)} documents)",
                file=sys.stderr,
            )
        if manifest_dir is not None and scoreboard.verdicts:
            fidelity_path = write_fidelity_artifact(fidelity_doc, manifest_dir)
            print(
                f"fidelity: {scoreboard.overall} -> {fidelity_path}",
                file=sys.stderr,
            )
        if args.report_out:
            bench_dirs = [manifest_dir] if manifest_dir is not None else []
            bench_dirs.append(_BENCH_BASELINE.parent)
            bench_docs = collect_bench_docs(bench_dirs)
            bench_comparison = None
            if bench_docs and _BENCH_BASELINE.exists():
                try:
                    bench_comparison = compare_artifacts(
                        load_artifact(_BENCH_BASELINE), bench_docs[-1]
                    ).to_doc()
                except ValueError:
                    pass  # foreign baseline: trend still renders
            trace_events = (
                [
                    {"ts": e.ts, "kind": e.kind, "name": e.name, **e.fields}
                    for e in trace.events()
                ]
                if trace is not None
                else None
            )
            report_path = write_report(
                render_report(
                    title="repro-experiments run report",
                    manifest=manifest,
                    metrics=registry.snapshot() if registry is not None else None,
                    trace_events=trace_events,
                    bench_docs=bench_docs,
                    bench_comparison=bench_comparison,
                    fidelity_doc=fidelity_doc,
                    timeseries_docs=telemetry_docs or None,
                    results=[
                        {
                            "experiment": r.experiment,
                            "title": r.title,
                            "summary": dict(r.summary),
                        }
                        for _, r in sorted(results_by_name.items())
                    ],
                ),
                args.report_out,
            )
            print(f"report: {report_path}", file=sys.stderr)
        if args.fleet_out:
            scan_dirs: list = []
            if manifest_dir is not None:
                scan_dirs.append(manifest_dir)
            scan_dirs.append(_BENCH_BASELINE.parent)
            ledger = ledger_with_live_results(
                build_ledger(scan_dirs),
                {name: r.summary for name, r in results_by_name.items()},
                seed=args.seed,
                env=environment_fingerprint(),
            )
            fleet_artifact, fleet_html = build_and_render(
                ledger,
                audit_assumptions,
                title="repro fleet audit",
                fidelity_doc=fidelity_doc if scoreboard.verdicts else None,
            )
            fleet_path = Path(args.fleet_out)
            if fleet_path.parent != Path(""):
                fleet_path.parent.mkdir(parents=True, exist_ok=True)
            fleet_path.write_text(fleet_html)
            print(f"fleet dashboard: {fleet_path}", file=sys.stderr)
            artifact_path = write_fleet_artifact(
                fleet_artifact,
                fleet_path.parent if str(fleet_path.parent) else ".",
            )
            print(f"fleet artifact: {artifact_path}", file=sys.stderr)
    except OSError as exc:
        print(f"error: cannot write observability output: {exc}", file=sys.stderr)
        return 1
    if args.fail_on_fidelity and scoreboard.overall == "fail":
        print(
            f"error: fidelity gate failed — {len(scoreboard.fails)} "
            "metric(s) outside the drift band",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
