"""Experiment registry CLI.

``python -m repro.experiments`` (or the ``repro-experiments`` console
script) runs any subset of the paper reproductions and prints their tables
and series.  ``--full`` switches to publication-grade horizons.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Importing the experiment modules populates the registry.
from . import (  # noqa: F401  (imported for registration side effects)
    applications,
    ext_multiservice,
    ext_scale,
    ext_wan,
    fig02_motivation,
    fig05_web_io,
    fig06_web_cpu,
    fig07_vcpu_pinning,
    fig08_db_cpu,
    fig09_operating_point,
    fig10_group1,
    fig11_group2,
    fig12_power_total,
    fig13_power_workload,
    table1,
)
from .base import all_experiments, get_experiment

__all__ = ["main", "run_all"]


def run_all(seed: int = 2009, fast: bool = True) -> dict[str, object]:
    """Run every registered experiment; returns name -> ExperimentResult."""
    return {
        name: fn(seed=seed, fast=fast) for name, fn in sorted(all_experiments().items())
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument(
        "--full",
        action="store_true",
        help="publication-grade horizons (slower, tighter statistics)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also export each artifact's data as DIR/<id>.csv and .json",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(all_experiments()):
            print(name)
        return 0

    names = args.experiments or sorted(all_experiments())
    for name in names:
        fn = get_experiment(name)
        result = fn(seed=args.seed, fast=not args.full)
        print("=" * 72)
        print(f"[{result.experiment}] {result.title}")
        print("=" * 72)
        print(result.text)
        if args.output:
            csv_path, json_path = result.export(args.output)
            print(f"\n  exported: {csv_path}  {json_path}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
