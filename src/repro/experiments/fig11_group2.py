"""Fig. 11 — Group 2: eight dedicated servers vs four consolidated.

The paper's second verification group: four Web + four DB dedicated
servers against four shared servers hosting both services.  Findings: the
four consolidated servers deliver comparable per-service performance, and
the consolidated fleet's average CPU utilization improves ~1.7x over the
dedicated one (vs ~1.5x predicted by the model — "very close").

The simulated counterpart reports both services' loss/throughput in each
deployment and the measured CPU-utilization improvement next to the
model's Eq. 11 prediction.  The deployment sweep rides Fig. 10's
columnar :func:`~repro.experiments.fig10_group1.consolidation_sweep_rows`
(a :class:`~repro.experiments.base.ParamGrid` through the block sweep
engine), so it inherits the same jobs-independent determinism.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..core import ResourceKind, UtilityAnalyticModel, utilization_report
from ..obs import fidelity
from ..simulation.datacenter import DataCenterSimulation
from .base import ExperimentResult, register
from .casestudy import GROUP2
from .fig10_group1 import consolidation_sweep_rows

__all__ = ["run"]


@register("fig11")
def run(seed: int = 2009, fast: bool = True, jobs: int = 1) -> ExperimentResult:
    horizon = 150.0 if fast else 2000.0
    rows = consolidation_sweep_rows(
        GROUP2, (GROUP2.expected_consolidated,), horizon, seed, jobs=jobs
    )

    # Measured utilization improvement from a paired case-study run.
    sim = DataCenterSimulation(GROUP2.inputs())
    rng = np.random.default_rng(seed + 1)
    case = sim.run_case_study(
        GROUP2.island_sizes, GROUP2.expected_consolidated, horizon, rng
    )
    measured_improvement = case.utilization_improvement(ResourceKind.CPU)

    solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
    predicted = utilization_report(solution).resource(ResourceKind.CPU).improvement

    dedicated_row, consolidated_row = rows[0], rows[1]
    threshold = 0.93  # paper-style "similar performance" (throughput bars)
    qos_preserved = (
        consolidated_row["db_throughput"]
        >= threshold * dedicated_row["db_throughput"]
        and consolidated_row["web_throughput"]
        >= threshold * dedicated_row["web_throughput"]
    )
    summary = {
        "model_predicted_N": GROUP2.expected_consolidated,
        "dedicated_servers": GROUP2.expected_dedicated,
        "consolidated_worst_loss": max(
            consolidated_row["db_loss"], consolidated_row["web_loss"]
        ),
        "qos_preserved": qos_preserved,
        "cpu_util_improvement_measured": round(measured_improvement, 2),
        "cpu_util_improvement_model": round(predicted, 2),
        "paper_measured": 1.7,
        "paper_model": 1.5,
        "dedicated_cpu_util": round(
            case.dedicated.per_resource_utilization[ResourceKind.CPU], 3
        ),
        "consolidated_cpu_util": round(
            case.consolidated.per_resource_utilization[ResourceKind.CPU], 3
        ),
    }
    text = (
        format_table(
            rows, title="Fig. 11 — Group 2: 8 dedicated vs 4 consolidated"
        )
        + "\n\n"
        + format_kv(summary, title="CPU utilization improvement (the 1.7x claim)")
    )
    return ExperimentResult(
        experiment="fig11",
        title="Group 2 verification: eight dedicated servers consolidate to four",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: QoS survives consolidation and CPU
# utilization improves by at least the paper's 1.7x headline.
fidelity.declare_expectations(
    "fig11",
    fidelity.Expectation(
        "qos_preserved",
        True,
        op="bool",
        source="Fig. 11: consolidation preserves Group 2 QoS",
    ),
    fidelity.Expectation(
        "cpu_util_improvement_measured",
        1.7,
        op="ge",
        abs_tol=0.1,
        source="Headline: measured CPU utilization improves >= 1.7x",
    ),
    fidelity.Expectation(
        "cpu_util_improvement_model",
        1.5,
        op="ge",
        abs_tol=0.1,
        source="Fig. 11: the model predicts >= 1.5x",
    ),
)
