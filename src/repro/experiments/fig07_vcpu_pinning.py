"""Fig. 7 — impact of vCPU allocation and pinning on the DB VM.

The paper found that (a) the DB VM's throughput scales with the vCPUs it
receives, and (b) pinning those vCPUs to physical cores beats leaving
placement to Xen's scheduler — "reflecting the latent room for vCPU
scheduling in Xen".  Their production configuration pins six vCPUs per DB
VM and Dom0 to the remaining two cores.

Two sweeps regenerate the figure: WIPS vs EBs for pinned/floating at the
full six-vCPU allocation, and the saturated WIPS ceiling as the vCPU count
grows 1..6 in both placement modes.  The simulated hypervisor's allocation
maths is cross-checked against the workload model's ceiling.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_series, format_table
from ..obs import fidelity
from ..virtualization.hypervisor import FLOATING_EFFICIENCY, HostSpec, Hypervisor
from ..virtualization.vm import VcpuPlacement, VirtualMachine
from ..workloads.tpcw import DbServiceModel
from .base import ExperimentResult, register

__all__ = ["run"]


@register("fig7")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    model = DbServiceModel()
    ebs = np.arange(100, 2100, 200 if fast else 100)

    pinned_curve = model.measure_wips_curve(ebs, vms=2, rng=rng, pinned=True)
    floating_curve = model.measure_wips_curve(ebs, vms=2, rng=rng, pinned=False)

    vcpu_rows = []
    for vcpus in range(1, model.db_vcpus + 1):
        vcpu_rows.append(
            {
                "vcpus": vcpus,
                "wips_pinned": round(model.capacity(2, vcpus=vcpus, pinned=True), 2),
                "wips_floating": round(
                    model.capacity(2, vcpus=vcpus, pinned=False), 2
                ),
            }
        )

    # Cross-check: the simulated hypervisor grants a 6-vCPU pinned DB VM its
    # six cores outright, while a floating one shares with the Web VM.
    hv = Hypervisor(HostSpec(cores=8, dom0_cores=2))
    hv.create_domain(
        VirtualMachine(
            "db-vm", "db", VcpuPlacement(6, pinned_cores=(0, 1, 2, 3, 4, 5)),
            memory_gb=1.0,
        )
    )
    hv.create_domain(
        VirtualMachine("web-vm", "web", VcpuPlacement(1), memory_gb=1.0)
    )
    alloc = hv.allocate()
    pinned_ratio = float(pinned_curve.max()) / max(float(floating_curve.max()), 1e-9)

    summary = {
        "pinned_peak_wips": round(float(pinned_curve.max()), 2),
        "floating_peak_wips": round(float(floating_curve.max()), 2),
        "pinned_over_floating": round(pinned_ratio, 3),
        "floating_efficiency_model": FLOATING_EFFICIENCY,
        "hypervisor_db_cores_granted": round(alloc["db-vm"].cores_granted, 2),
        "hypervisor_web_cores_granted": round(alloc["web-vm"].cores_granted, 2),
        "db_vcpus_configured": model.db_vcpus,
    }
    text = (
        format_series(
            ebs,
            {"pinned": pinned_curve, "floating": floating_curve},
            x_label="EBs",
            title="Fig. 7 — DB WIPS vs emulated browsers (2 VMs, 6 vCPUs)",
        )
        + "\n\n"
        + format_table(vcpu_rows, title="DB VM ceiling vs vCPU allocation")
        + "\n\n"
        + format_kv(summary, title="Pinning effect")
    )
    return ExperimentResult(
        experiment="fig7",
        title="vCPU allocation and pinning impact on the DB VM",
        rows=tuple(vcpu_rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: pinning the six DB vCPUs must clearly beat
# floating placement, as in the paper's WIPS curves.
fidelity.declare_expectations(
    "fig7",
    fidelity.Expectation(
        "pinned_over_floating",
        1.15,
        op="ge",
        abs_tol=0.05,
        source="Fig. 7: pinned peak WIPS >= ~1.15x floating",
    ),
    fidelity.Expectation(
        "db_vcpus_configured", 6, source="Fig. 7: DB VM runs 6 vCPUs"
    ),
)
