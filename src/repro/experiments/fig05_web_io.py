"""Fig. 5 — Web throughput vs request rate, disk-I/O-bound file set.

httperf orderly accesses the ~5.1 GB SPECweb2005 file set, so disk I/O is
the bottleneck.  Panel (a): reply-rate curves for native Linux and 1–9 Web
VMs, all sharing the rise/peak/degrade/stabilise shape, sliding down as VM
count grows.  Panel (b): stable-mean-throughput impact factors with the
linear fit the paper reports as ``a = -0.012 v + 1.082``.

The experiment sweeps the simulated Web service, measures impact factors
from the noisy sweeps exactly as the paper did, refits the regression, and
reports both the recovered line and its distance from the published one.
"""

from __future__ import annotations

import numpy as np

from ..analysis.regression import fit_line
from ..analysis.report import format_kv, format_series
from ..obs import fidelity
from ..virtualization.impact import WEB_DISK_IO_IMPACT
from ..workloads.httperf import RateSweep
from ..workloads.specweb import SPECWEB_FILESET, WebServiceModel
from .base import ExperimentResult, register

__all__ = ["run", "VM_COUNTS"]

VM_COUNTS = tuple(range(1, 10))


@register("fig5")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    model = WebServiceModel.for_fileset(SPECWEB_FILESET)
    points = 15 if fast else 40
    rates = RateSweep.default_grid(model.native_capacity, points)

    curves: dict[str, np.ndarray] = {}
    for vms in (0, *VM_COUNTS):
        sweep = RateSweep(
            lambda r, g, v=vms: model.measure(r, v, g, rel_noise=0.02),
            duration_per_point=10.0 if fast else 60.0,
        ).run(rates, rng)
        label = "native" if vms == 0 else f"{vms}vm"
        curves[label] = sweep.reply_rates

    measured_a = model.measured_impact_factors(
        VM_COUNTS, rng=rng, rel_noise=0.01 if fast else 0.02
    )
    fit = fit_line(np.array(VM_COUNTS, dtype=float), measured_a)
    published = WEB_DISK_IO_IMPACT

    rows = [
        {
            "vms": v,
            "impact_measured": round(float(a), 4),
            "impact_fit": round(float(fit.predict(v)), 4),
            "impact_published": round(published.impact(v), 4),
        }
        for v, a in zip(VM_COUNTS, measured_a)
    ]
    summary = {
        "fit_slope": round(fit.slope, 4),
        "fit_intercept": round(fit.intercept, 4),
        "fit_r2": round(fit.r2, 4),
        "published_slope": published.slope,
        "published_intercept": published.intercept,
        "slope_abs_error": round(abs(fit.slope - published.slope), 4),
        "intercept_abs_error": round(abs(fit.intercept - published.intercept), 4),
        "native_capacity_req_s": model.native_capacity,
        "bottleneck": str(SPECWEB_FILESET.bottleneck),
        "degradation_at_9vm": round(1.0 - published.impact(9), 3),
    }
    text = (
        format_series(
            rates,
            curves,
            x_label="req/s",
            title="Fig. 5(a) — Web reply rate vs request rate (disk-I/O bound)",
        )
        + "\n\n"
        + format_kv(summary, title="Fig. 5(b) — impact factor regression (disk I/O)")
    )
    return ExperimentResult(
        experiment="fig5",
        title="Web service under disk-I/O bottleneck: throughput and impact factors",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the refit must recover the published
# regression I_io(v) = 1.082 - 0.012 v from the regenerated sweep.
fidelity.declare_expectations(
    "fig5",
    fidelity.Expectation(
        "fit_slope", -0.012, abs_tol=0.002, source="Fig. 5: slope of I_io(v)"
    ),
    fidelity.Expectation(
        "fit_intercept", 1.082, abs_tol=0.01, source="Fig. 5: intercept of I_io(v)"
    ),
    fidelity.Expectation(
        "fit_r2", 0.98, op="ge", source="Fig. 5: the linear model fits"
    ),
)
