"""Extension experiment: the Poisson assumption under WAN-realistic traffic.

The model's assumption 2 (Poisson arrivals) rests on session-level
behaviour; the paper itself cites Paxson & Floyd's demonstration that WAN
traffic at finer granularity is long-range dependent.  This experiment
drives the Erlang-sized consolidated pool with four traffic models of
identical long-run rate:

- pure Poisson (the model's assumption),
- session-structured arrivals (moderate burstiness),
- MMPP (two-timescale burstiness),
- superposed on/off Pareto sources (long-range dependent, H ~ 0.85),

and reports each stream's index of dispersion, Hurst estimate, and the
measured loss at the Erlang-sized pool — the safety margin the model's
sizing needs as traffic departs from Poisson.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..obs import fidelity
from ..queueing.erlang import erlang_b, min_servers
from ..queueing.poisson import poisson_arrivals
from ..simulation.loss_network import simulate_loss_system
from ..workloads.sessions import SessionProfile, generate_session_arrivals, index_of_dispersion
from ..workloads.wan_traffic import MMPP2, hurst_rs, on_off_pareto_arrivals
from .base import ExperimentResult, register

__all__ = ["run"]

_SERVICE_RATE = 1.0
_TARGET_B = 0.02
_RATE = 4.0


@register("ext-wan")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    horizon = 20_000.0 if fast else 120_000.0
    servers = min_servers(_RATE / _SERVICE_RATE, _TARGET_B)
    erlang_prediction = erlang_b(servers, _RATE / _SERVICE_RATE)

    streams = {
        "poisson": poisson_arrivals(_RATE, horizon, rng),
        "sessions": generate_session_arrivals(
            SessionProfile(_RATE / 10.0, 10.0, think_time=3.0), horizon, rng
        ),
        # Parameters chosen so the stationary mean is exactly _RATE:
        # (2*60 + 12*15)/75 = 4.
        "mmpp": MMPP2(
            rate_calm=2.0,
            rate_burst=12.0,
            sojourn_calm=60.0,
            sojourn_burst=15.0,
        ).sample(horizon, rng),
        "onoff-pareto": on_off_pareto_arrivals(
            sources=8,
            peak_rate=_RATE / 8.0 * 3.0,
            horizon=horizon,
            rng=rng,
            alpha=1.3,
            mean_on=2.0,
            mean_off=4.0,
        ),
    }

    rows = []
    losses = {}
    for name, arrivals in streams.items():
        result = simulate_loss_system(
            arrivals, 1.0 / _SERVICE_RATE, servers, rng
        )
        iod = index_of_dispersion(arrivals, horizon, 10.0)
        try:
            hurst = hurst_rs(arrivals, horizon, base_window=2.0)
        except ValueError:
            hurst = float("nan")
        losses[name] = result.loss_probability
        rows.append(
            {
                "traffic": name,
                "rate_measured": round(arrivals.size / horizon, 3),
                "dispersion": round(iod, 2),
                "hurst": round(hurst, 2),
                "measured_loss": round(result.loss_probability, 4),
                "vs_erlang": round(result.loss_probability / erlang_prediction, 2),
            }
        )

    summary = {
        "servers": servers,
        "erlang_prediction": round(erlang_prediction, 4),
        "poisson_matches_erlang": abs(losses["poisson"] - erlang_prediction) < 0.015,
        "burstier_traffic_blocks_more": (
            losses["poisson"] <= losses["sessions"] + 0.005
            and losses["poisson"] < losses["onoff-pareto"]
        ),
        "lrd_loss_over_erlang": round(losses["onoff-pareto"] / erlang_prediction, 2),
        "note": "all streams share the same long-run rate; only their "
        "correlation structure differs",
    }
    text = (
        format_table(rows, title="Extension — loss at the Erlang sizing vs traffic model")
        + "\n\n"
        + format_kv(summary, title="Poisson-assumption stress test")
    )
    return ExperimentResult(
        experiment="ext-wan",
        title="Erlang sizing under non-Poisson (session/MMPP/LRD) traffic",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the Erlang sizing holds for Poisson traffic
# and is overrun by burstier WAN arrival processes.
fidelity.declare_expectations(
    "ext-wan",
    fidelity.Expectation(
        "poisson_matches_erlang",
        True,
        op="bool",
        source="Extension: DES under Poisson reproduces Erlang B",
    ),
    fidelity.Expectation(
        "burstier_traffic_blocks_more",
        True,
        op="bool",
        source="Extension: loss ordered by burstiness",
    ),
    fidelity.Expectation(
        "lrd_loss_over_erlang",
        1.5,
        op="ge",
        abs_tol=0.2,
        source="Extension: LRD traffic overshoots the Erlang sizing",
    ),
)
