"""Extension experiment: consolidating many diverse services.

The paper's case study consolidates two services.  Real enterprise data
centers host many, with diverse bottlenecks and virtualization behaviour.
This extension consolidates a five-service mix — two web tiers, a
database, a memcached-like cache and a batch API — and reports the model's
full output plus a DES validation of the loss probabilities, demonstrating
the model's generality beyond the published case study.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..core import (
    ModelInputs,
    ResourceKind,
    ServiceSpec,
    UtilityAnalyticModel,
    utilization_report,
)
from ..obs import fidelity
from ..parallel import sweep_grid
from ..simulation.datacenter import DataCenterSimulation
from .base import ExperimentResult, ParamGrid, register

__all__ = ["run", "FIVE_SERVICES"]

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO
NET = ResourceKind.NETWORK

#: A diverse mix: rates/bottlenecks chosen so every service needs 2-5
#: dedicated machines and no single resource dominates all of them.
FIVE_SERVICES = (
    ServiceSpec(
        "storefront", 900.0, {CPU: 2500.0, DISK: 1200.0, NET: 3000.0},
        {CPU: 0.7, DISK: 0.8, NET: 0.9},
    ),
    ServiceSpec(
        "media", 400.0, {CPU: 4000.0, DISK: 350.0, NET: 500.0},
        {CPU: 0.7, DISK: 0.85, NET: 0.9},
    ),
    ServiceSpec("orders-db", 60.0, {CPU: 80.0}, {CPU: 0.9}),
    ServiceSpec(
        "cache", 2000.0, {CPU: 5000.0, NET: 2500.0}, {CPU: 0.75, NET: 0.9}
    ),
    ServiceSpec("batch-api", 150.0, {CPU: 300.0, DISK: 900.0}, {CPU: 0.8, DISK: 0.8}),
)


def _des_point(kind: str, islands, servers: int, horizon: float, task_seed: int):
    """One DES validation run.

    The two runs carry their own explicit seeds (``seed`` and ``seed+1``,
    exactly as the serial implementation always has), so ``base_seed`` is
    not used and the numbers are unchanged from the pre-engine code at
    every ``jobs`` value.
    """
    sim = DataCenterSimulation(ModelInputs(FIVE_SERVICES, loss_probability=0.01))
    rng = np.random.default_rng(task_seed)
    if kind == "case":
        return sim.run_case_study(islands, servers, horizon, rng)
    return sim.run_consolidated(servers, horizon, rng)


def _des_block(block: ParamGrid) -> list:
    """One column block of DES validation runs (sweep-engine worker)."""
    return [
        _des_point(
            row["kind"], row["islands"], row["servers"], row["horizon"],
            row["task_seed"],
        )
        for row in block.rows()
    ]


@register("ext-multiservice")
def run(seed: int = 2009, fast: bool = True, jobs: int = 1) -> ExperimentResult:
    inputs = ModelInputs(FIVE_SERVICES, loss_probability=0.01)
    solution = UtilityAnalyticModel(inputs).solve()
    util = utilization_report(solution)

    rows = []
    for sizing in solution.dedicated:
        rows.append(
            {
                "service": sizing.service.name,
                "lambda": sizing.service.arrival_rate,
                "dedicated_servers": sizing.servers,
                "bottleneck": str(sizing.bottleneck),
            }
        )
    rows.append(
        {
            "service": "CONSOLIDATED",
            "lambda": inputs.total_arrival_rate,
            "dedicated_servers": solution.consolidated_servers,
            "bottleneck": str(solution.consolidated_bottleneck),
        }
    )

    # DES validation of both deployments, under BOTH consolidated sizings:
    # with five diverse services the AM-vs-HM gap of Eq. 4 is large, so the
    # paper-mode N under-provisions badly; the offered-load sizing is the
    # deployable one.  The experiment quantifies both.
    offered_solution = UtilityAnalyticModel(inputs, load_model="offered").solve()
    horizon = 120.0 if fast else 1500.0
    islands = {s.service.name: s.servers for s in solution.dedicated}
    case, paper_run = sweep_grid(
        _des_block,
        ParamGrid(
            {
                "kind": ["case", "paper"],
                "islands": [islands, None],
                "servers": [
                    offered_solution.consolidated_servers,
                    solution.consolidated_servers,
                ],
                "horizon": [horizon, horizon],
                "task_seed": [seed, seed + 1],
            }
        ),
        jobs=jobs,
        name="ext-multiservice",
    )
    ded_worst = max(case.dedicated.per_service_loss.values())
    con_worst = max(case.consolidated.per_service_loss.values())

    summary = {
        "services": len(FIVE_SERVICES),
        "M_dedicated": solution.dedicated_servers,
        "N_paper_mode": solution.consolidated_servers,
        "N_offered_mode": offered_solution.consolidated_servers,
        "infrastructure_saving_offered": round(
            1.0 - offered_solution.consolidated_servers / solution.dedicated_servers,
            3,
        ),
        "utilization_improvement": round(util.bottleneck_improvement, 2),
        "dedicated_worst_loss_measured": round(ded_worst, 4),
        "offered_N_worst_loss_measured": round(con_worst, 4),
        "paper_N_worst_loss_measured": round(
            max(paper_run.per_service_loss.values()), 4
        ),
        "offered_sizing_meets_target": con_worst <= 0.03,
        "power_saving_measured": round(case.power_saving, 3),
        "distinct_bottlenecks": len(
            {str(s.bottleneck) for s in solution.dedicated}
        ),
    }
    text = (
        format_table(rows, title="Extension — five-service consolidation")
        + "\n\n"
        + format_kv(summary, title="Model outputs and DES validation")
    )
    return ExperimentResult(
        experiment="ext-multiservice",
        title="Consolidating five diverse services (beyond the 2-service case study)",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: five heterogeneous services with mixed
# bottlenecks still consolidate to about half the dedicated fleet.
fidelity.declare_expectations(
    "ext-multiservice",
    fidelity.Expectation(
        "services", 5, source="Extension: five heterogeneous services"
    ),
    fidelity.Expectation(
        "distinct_bottlenecks",
        3,
        source="Extension: three distinct bottleneck resources",
    ),
    fidelity.Expectation(
        "offered_sizing_meets_target",
        True,
        op="bool",
        source="Extension: offered-load sizing meets the loss target",
    ),
    fidelity.Expectation(
        "infrastructure_saving_offered",
        0.5,
        op="ge",
        abs_tol=0.05,
        source="Extension: consolidation halves the fleet",
    ),
)
