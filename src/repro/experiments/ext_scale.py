"""Extension experiment: consolidation economics at scale + sizing fidelity.

Not a paper artifact — two analyses the paper's framework enables but does
not run, called out in DESIGN.md as extensions:

1. **Multiplexing at scale** — sweep the case-study workload from 0.5x to
   64x and track M, N and the saving fraction.  Statistical multiplexing
   strengthens with scale: N/M falls toward the load ratio.

2. **Sizing fidelity** — at each scale, compare three blocking estimates
   for the model's N: the paper's independent per-resource Erlang on the
   Eq. 4 load, the reduced-load Erlang fixed point on the offered loads,
   and the conservative offered-load sizing.  This quantifies, across the
   whole operating range, the optimism documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from ..analysis.report import format_kv, format_table
from ..core import UtilityAnalyticModel
from ..obs import fidelity
from ..parallel import sweep_grid
from ..queueing.erlang import erlang_b
from ..queueing.fixed_point import fixed_point_for_inputs
from .base import ExperimentResult, ParamGrid, register
from .casestudy import case_study_inputs

__all__ = ["run"]

SCALES = (0.5, 1.0, 2.0, 4.0, 16.0, 64.0)


def _scale_task(scale: float) -> dict:
    """Solve the case study at one workload scale (sweep-engine worker)."""
    inputs = case_study_inputs(1200.0 * scale, 80.0 * scale)
    paper = UtilityAnalyticModel(inputs, load_model="paper").solve()
    offered = UtilityAnalyticModel(inputs, load_model="offered").solve()
    n = paper.consolidated_servers
    paper_blocking = max(
        erlang_b(n, inputs.consolidated_load(r, "paper")) for r in inputs.resources
    )
    fp = fixed_point_for_inputs(inputs, n)
    return {
        "scale": f"x{scale:g}",
        "M": paper.dedicated_servers,
        "N_paper": n,
        "N_offered": offered.consolidated_servers,
        "saving": round(paper.infrastructure_saving, 3),
        "B_paper_est": round(paper_blocking, 5),
        "B_fixed_point": round(fp.worst_service_loss, 5),
    }


def _scale_block(block: ParamGrid) -> list[dict]:
    """One column block of workload scales (sweep-engine worker).

    Each scale is a full model solve (whose Erlang inversions batch
    internally through the cache's grid path), so the block loops points
    but ships as one dispatch.
    """
    return [_scale_task(row["scale"]) for row in block.rows()]


@register("ext-scale")
def run(seed: int = 2009, fast: bool = True, jobs: int = 1) -> ExperimentResult:
    del seed  # analytic
    scales = SCALES[:4] if fast else SCALES
    rows = sweep_grid(
        _scale_block, ParamGrid({"scale": scales}), jobs=jobs, name="ext-scale"
    )
    first, last = rows[0], rows[-1]
    summary = {
        "saving_at_smallest_scale": first["saving"],
        "saving_at_largest_scale": last["saving"],
        "multiplexing_strengthens": last["saving"] >= first["saving"] - 1e-9,
        "paper_estimate_optimistic_everywhere": all(
            r["B_fixed_point"] >= r["B_paper_est"] for r in rows
        ),
        "note": "B_fixed_point is the reduced-load refinement at the "
        "paper-mode N; the loss target is 0.01",
    }
    text = (
        format_table(rows, title="Extension — consolidation economics vs scale")
        + "\n\n"
        + format_kv(summary, title="Scale effects")
    )
    return ExperimentResult(
        experiment="ext-scale",
        title="Multiplexing gain and sizing fidelity across workload scales",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the case-study scale reproduces the 50%
# saving, and statistical multiplexing only strengthens it with scale.
fidelity.declare_expectations(
    "ext-scale",
    fidelity.Expectation(
        "saving_at_smallest_scale",
        0.5,
        abs_tol=0.001,
        source="Extension: case-study scale reproduces the 50% saving",
    ),
    fidelity.Expectation(
        "saving_at_largest_scale",
        0.55,
        op="ge",
        abs_tol=0.05,
        source="Extension: multiplexing gain grows with scale",
    ),
    fidelity.Expectation(
        "multiplexing_strengthens",
        True,
        op="bool",
        source="Extension: saving is monotone in scale",
    ),
    fidelity.Expectation(
        "paper_estimate_optimistic_everywhere",
        True,
        op="bool",
        source="Extension: fixed-point loss >= paper estimate at every scale",
    ),
)
