"""Fig. 13 — workload-attributed power (total minus idle).

To isolate what the *workloads* cost, the paper subtracts the idle fleet's
draw from the measured total.  The residual is ~30% lower on the
consolidated Xen servers than on the dedicated Linux servers for identical
workloads — one of the paper's open questions (the same number of OS
instances runs either way), which we therefore carry as a measured
platform parameter rather than deriving it.
"""

from __future__ import annotations

from ..analysis.report import format_kv, format_table
from ..obs import fidelity
from .base import ExperimentResult, register
from .fig12_power_total import group2_case_study

__all__ = ["run"]


@register("fig13")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    case = group2_case_study(seed, fast)
    ded, con = case.dedicated.energy, case.consolidated.energy

    rows = [
        {
            "fleet": "dedicated (8, Linux)",
            "workload_power_W": round(ded.workload_energy / ded.duration, 2),
            "total_power_W": round(ded.mean_power, 1),
            "idle_power_W": round(ded.idle_energy / ded.duration, 1),
        },
        {
            "fleet": "consolidated (4, Xen)",
            "workload_power_W": round(con.workload_energy / con.duration, 2),
            "total_power_W": round(con.mean_power, 1),
            "idle_power_W": round(con.idle_energy / con.duration, 1),
        },
    ]
    summary = {
        # Absolute workload-attributed draw, surfaced for the fleet audit
        # layer (repro.obs.fleet) alongside fig12's total-energy block.
        "dedicated_workload_power_W": round(ded.workload_energy / ded.duration, 2),
        "consolidated_workload_power_W": round(con.workload_energy / con.duration, 2),
        "workload_power_saving": round(case.workload_power_saving, 3),
        "paper_workload_power_saving": 0.30,
        "total_power_saving": round(case.power_saving, 3),
        "note": "Xen-vs-Linux per-workload delta is a measured platform "
        "parameter (paper's open question), set to 30%",
    }
    text = (
        format_table(rows, title="Fig. 13 — power attributed to the workloads")
        + "\n\n"
        + format_kv(summary, title="Workload power saving")
    )
    return ExperimentResult(
        experiment="fig13",
        title="Workload-attributed power: consolidated Xen draws ~30% less",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: total saving mirrors Fig. 12; the
# workload-attributed share depends on the open Xen-vs-Linux platform
# delta (EXPERIMENTS.md), so the repro value sits below the paper's 30%.
fidelity.declare_expectations(
    "fig13",
    fidelity.Expectation(
        "total_power_saving",
        0.53,
        rel_tol=0.05,
        source="Fig. 13: total saving mirrors Fig. 12's 53%",
    ),
    fidelity.Expectation(
        "workload_power_saving",
        0.17,
        abs_tol=0.03,
        source="Fig. 13: workload-attributed power saving",
        note="paper reports 30%; the gap is the measured Xen-vs-Linux "
        "platform delta the paper leaves open",
    ),
)
