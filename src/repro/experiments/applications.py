"""Section III.B.4 — the model's two applications as experiments.

**app1 — bounding on-demand resource-allocation algorithms.**  Fix the
consolidated pool at the dedicated fleet's size (M = N) and compare
``(1-B)``: the ratio is the optimal throughput improvement *any* flowing
algorithm can deliver.  The fluid simulation then scores real controllers
(static partitioning, proportional flowing with reallocation overhead,
strict priority) against that bound.

**app2 — bounding virtualization products.**  Additionally set every
impact factor to 1: the resulting ratio is the ceiling for an *ideal*
hypervisor; the gap between app1's and app2's bounds is the QoS cost of
Xen itself.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..core import allocation_algorithm_bound, virtualization_bound
from ..obs import fidelity
from ..simulation.fluid import simulate_flow_control
from ..virtualization.rainbow import (
    IdealFlow,
    PredictiveFlow,
    PriorityFlow,
    ProportionalFlow,
    StaticPartition,
)
from .base import ExperimentResult, register
from .casestudy import GROUP2, MU_DB_CPU, MU_WEB_DISK_IO

__all__ = ["run_allocation", "run_virtualization"]


@register("app1")
def run_allocation(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    inputs = GROUP2.inputs()
    bound = allocation_algorithm_bound(inputs)

    # Fluid scoring of concrete controllers on the same two services, with
    # anti-phase diurnal peaks (the Fig. 2 situation): web peaks while db
    # is quiet and vice versa, so a rigid partition must clip each peak
    # that capability flowing would absorb.
    rng = np.random.default_rng(seed)
    periods = 300 if fast else 3000
    web = inputs.service("web")
    db = inputs.service("db")
    # Work per request in normalized-server-seconds: 1/(mu*a) of the
    # service's bottleneck resource on the consolidated platform.
    web_work = 1.0 / (MU_WEB_DISK_IO * 0.8)
    db_work = 1.0 / (MU_DB_CPU * 0.9)
    phase = np.linspace(0.0, 6.0 * np.pi, periods)
    # Rates swing 0.2x..1.8x around the case-study operating point.
    web_rates = web.arrival_rate * (1.0 + 0.8 * np.sin(phase)) * 1.8
    db_rates = db.arrival_rate * (1.0 - 0.8 * np.sin(phase)) * 1.8
    web_counts = rng.poisson(np.clip(web_rates, 0.0, None))
    db_counts = rng.poisson(np.clip(db_rates, 0.0, None))
    demands = {
        "web": web_counts.astype(float) * web_work,
        "db": db_counts.astype(float) * db_work,
    }
    capacity = float(bound.servers)

    controllers = {
        "static_partition": StaticPartition(fractions={"web": 0.5, "db": 0.5}),
        "predictive_ewma": PredictiveFlow(alpha=0.3),
        "proportional_tax2%": ProportionalFlow(reallocation_tax=0.02),
        "priority_db_first": PriorityFlow(priority_order=("db", "web")),
        "ideal_flow": IdealFlow(),
    }
    rows = []
    ideal_goodput = None
    for name, controller in controllers.items():
        result = simulate_flow_control(controller, demands, capacity)
        rows.append(
            {
                "controller": name,
                "goodput_fraction": round(result.goodput_fraction, 4),
                "web_goodput": round(result.service_goodput("web"), 4),
                "db_goodput": round(result.service_goodput("db"), 4),
            }
        )
        if name == "ideal_flow":
            ideal_goodput = result.goodput_fraction
    summary = {
        "equal_servers": bound.servers,
        "dedicated_loss_B": round(bound.dedicated_loss, 5),
        "consolidated_loss_B": round(bound.consolidated_loss, 6),
        "optimal_improvement": round(bound.improvement, 4),
        "ideal_flow_goodput": round(ideal_goodput, 4),
        "interpretation": "an allocation algorithm is better the closer its "
        "goodput improvement gets to optimal_improvement",
    }
    text = (
        format_table(rows, title="App 1 — flow controllers vs the analytic bound")
        + "\n\n"
        + format_kv(summary, title="Equal-server-count (M=N) comparison")
    )
    return ExperimentResult(
        experiment="app1",
        title="Bounding on-demand resource allocation algorithms",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )


@register("app2")
def run_virtualization(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    del seed, fast  # analytic
    inputs = GROUP2.inputs()
    with_xen = allocation_algorithm_bound(inputs)
    # Same server count for both platforms — otherwise the ideal case
    # re-sizes to a smaller N and the comparison is apples-to-oranges.
    ideal = virtualization_bound(inputs, servers=with_xen.servers)
    rows = [
        {
            "platform": "Xen (measured impact factors)",
            "consolidated_loss": round(with_xen.consolidated_loss, 6),
            "improvement_over_dedicated": round(with_xen.improvement, 4),
        },
        {
            "platform": "ideal hypervisor (a=1)",
            "consolidated_loss": round(ideal.consolidated_loss, 6),
            "improvement_over_dedicated": round(ideal.improvement, 4),
        },
    ]
    summary = {
        "equal_servers": ideal.servers,
        "xen_improvement": round(with_xen.improvement, 4),
        "ideal_improvement": round(ideal.improvement, 4),
        "virtualization_qos_cost": round(
            ideal.improvement - with_xen.improvement, 4
        ),
        "xen_fraction_of_ideal": round(
            with_xen.improvement / ideal.improvement, 4
        ),
    }
    text = (
        format_table(rows, title="App 2 — virtualization product evaluation")
        + "\n\n"
        + format_kv(summary, title="QoS ceiling of an ideal hypervisor")
    )
    return ExperimentResult(
        experiment="app2",
        title="Bounding virtualization products (ideal-hypervisor counterfactual)",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations for both application studies.
fidelity.declare_expectations(
    "app1",
    fidelity.Expectation(
        "equal_servers", 4, source="App 1: equal-fleet comparison at M = N = 4"
    ),
    fidelity.Expectation(
        "optimal_improvement",
        1.19,
        abs_tol=0.02,
        source="App 1: analytic goodput-improvement bound",
    ),
)
fidelity.declare_expectations(
    "app2",
    fidelity.Expectation(
        "xen_fraction_of_ideal",
        0.95,
        op="ge",
        abs_tol=0.02,
        source="App 2: Xen reaches >= 95% of the ideal hypervisor",
    ),
    fidelity.Expectation(
        "virtualization_qos_cost",
        0.02,
        op="le",
        abs_tol=0.01,
        source="App 2: virtualization QoS cost stays small",
    ),
)
