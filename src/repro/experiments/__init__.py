"""Reproduction harness: one module per paper table/figure.

Run everything with ``python -m repro.experiments`` or target one artifact
(``python -m repro.experiments fig10 table1``).  Programmatic access::

    from repro.experiments import run_experiment
    result = run_experiment("table1")
    print(result.text)

See DESIGN.md's per-experiment index for the artifact -> module mapping.
"""

from .base import ExperimentResult, all_experiments, get_experiment
from .casestudy import (
    GROUP1,
    GROUP2,
    GROUPS,
    CaseStudyGroup,
    case_study_inputs,
    db_service,
    web_service,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
    "CaseStudyGroup",
    "GROUP1",
    "GROUP2",
    "GROUPS",
    "case_study_inputs",
    "web_service",
    "db_service",
]


def run_experiment(name: str, seed: int = 2009, fast: bool = True) -> ExperimentResult:
    """Run one registered experiment by name (loads the registry first)."""
    from . import runner  # noqa: F401  (registers all experiments)

    return get_experiment(name)(seed=seed, fast=fast)
