"""Fig. 6 — Web throughput vs request rate, CPU-bound single 8 KB file.

Every request hits one cached 8 KB file, so CPU (protocol + hypervisor
processing) is the bottleneck.  Native Linux clearly outperforms any VM
configuration — the published fit ``a = -0.039 v + 0.658`` starts well
below 1 even for a single VM, the CPU price of paravirtualization.
Structure mirrors the Fig. 5 experiment with the CPU-bound file set.
"""

from __future__ import annotations

import numpy as np

from ..analysis.regression import fit_line
from ..analysis.report import format_kv, format_series
from ..obs import fidelity
from ..virtualization.impact import WEB_CPU_IMPACT
from ..workloads.httperf import RateSweep
from ..workloads.specweb import SINGLE_FILE_8KB, WebServiceModel
from .base import ExperimentResult, register

__all__ = ["run", "VM_COUNTS"]

VM_COUNTS = tuple(range(1, 10))


@register("fig6")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
    points = 15 if fast else 40
    rates = RateSweep.default_grid(model.native_capacity, points)

    curves: dict[str, np.ndarray] = {}
    for vms in (0, *VM_COUNTS):
        sweep = RateSweep(
            lambda r, g, v=vms: model.measure(r, v, g, rel_noise=0.02),
            duration_per_point=10.0 if fast else 60.0,
        ).run(rates, rng)
        label = "native" if vms == 0 else f"{vms}vm"
        curves[label] = sweep.reply_rates

    measured_a = model.measured_impact_factors(
        VM_COUNTS, rng=rng, rel_noise=0.01 if fast else 0.02
    )
    fit = fit_line(np.array(VM_COUNTS, dtype=float), measured_a)
    published = WEB_CPU_IMPACT

    rows = [
        {
            "vms": v,
            "impact_measured": round(float(a), 4),
            "impact_fit": round(float(fit.predict(v)), 4),
            "impact_published": round(published.impact(v), 4),
        }
        for v, a in zip(VM_COUNTS, measured_a)
    ]
    native_vs_vm = curves["native"].max() / max(curves["1vm"].max(), 1e-9)
    summary = {
        "fit_slope": round(fit.slope, 4),
        "fit_intercept": round(fit.intercept, 4),
        "fit_r2": round(fit.r2, 4),
        "published_slope": published.slope,
        "published_intercept": published.intercept,
        "slope_abs_error": round(abs(fit.slope - published.slope), 4),
        "intercept_abs_error": round(abs(fit.intercept - published.intercept), 4),
        "native_capacity_req_s": model.native_capacity,
        "bottleneck": str(SINGLE_FILE_8KB.bottleneck),
        "native_over_1vm_peak": round(float(native_vs_vm), 3),
    }
    text = (
        format_series(
            rates,
            curves,
            x_label="req/s",
            title="Fig. 6(a) — Web reply rate vs request rate (CPU bound, 8 KB file)",
        )
        + "\n\n"
        + format_kv(summary, title="Fig. 6(b) — impact factor regression (CPU)")
    )
    return ExperimentResult(
        experiment="fig6",
        title="Web service under CPU bottleneck: throughput and impact factors",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the refit must recover the published
# regression I_cpu(v) = 0.658 - 0.039 v from the regenerated sweep.
fidelity.declare_expectations(
    "fig6",
    fidelity.Expectation(
        "fit_slope", -0.039, abs_tol=0.002, source="Fig. 6: slope of I_cpu(v)"
    ),
    fidelity.Expectation(
        "fit_intercept", 0.658, abs_tol=0.005, source="Fig. 6: intercept of I_cpu(v)"
    ),
    fidelity.Expectation(
        "fit_r2", 0.99, op="ge", source="Fig. 6: the linear model fits"
    ),
)
