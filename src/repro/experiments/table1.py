"""Table I — inputs and outputs of the utility analytic model.

The table feeds the measured serving rates and impact factors, the
selected workloads and the loss target into the model and reports the
predicted consolidated server count N for each dedicated fleet size M.
(The digits of the published table are unrecoverable from the provided
text; the rows here are regenerated from the model with the reconstructed
inputs — see DESIGN.md — and the two verification groups reproduce the
paper's M=6 -> N=3 and M=8 -> N=4.)

Beyond the two published rows, the sweep extends the table across workload
scales and loss targets, which is exactly how a data-center designer would
use the model.
"""

from __future__ import annotations

from ..analysis.report import format_kv, format_table
from ..core import UtilityAnalyticModel, utilization_report
from ..obs import fidelity
from .base import ExperimentResult, register
from .casestudy import GROUPS, case_study_inputs

__all__ = ["run"]

#: Extension rows: (web rate, db rate, loss target).
_EXTRA_ROWS = (
    (300.0, 20.0, 0.01),
    (900.0, 60.0, 0.01),
    (1800.0, 120.0, 0.01),
    (1200.0, 80.0, 0.001),
    (1200.0, 80.0, 0.05),
)


@register("table1")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    del seed, fast  # analytic, deterministic, instant
    rows = []
    for group in GROUPS:
        solution = UtilityAnalyticModel(group.inputs()).solve()
        util = utilization_report(solution)
        rows.append(
            {
                "M": solution.dedicated_servers,
                "lambda_w": group.web_rate,
                "lambda_d": group.db_rate,
                "B": group.loss_probability,
                "N": solution.consolidated_servers,
                "U_N/U_M": round(util.bottleneck_improvement, 2),
                "source": group.name,
            }
        )
    for web_rate, db_rate, b in _EXTRA_ROWS:
        solution = UtilityAnalyticModel(
            case_study_inputs(web_rate, db_rate, b)
        ).solve()
        util = utilization_report(solution)
        rows.append(
            {
                "M": solution.dedicated_servers,
                "lambda_w": web_rate,
                "lambda_d": db_rate,
                "B": b,
                "N": solution.consolidated_servers,
                "U_N/U_M": round(util.bottleneck_improvement, 2),
                "source": "extension",
            }
        )
    group_rows = [r for r in rows if r["source"] != "extension"]
    summary = {
        "group1_M": group_rows[0]["M"],
        "group1_N": group_rows[0]["N"],
        "group2_M": group_rows[1]["M"],
        "group2_N": group_rows[1]["N"],
        "group1_matches_paper": group_rows[0]["M"] == 6 and group_rows[0]["N"] == 3,
        "group2_matches_paper": group_rows[1]["M"] == 8 and group_rows[1]["N"] == 4,
    }
    text = (
        format_table(rows, title="Table I — model inputs and predicted N")
        + "\n\n"
        + format_kv(summary, title="Verification against the paper's groups")
    )
    return ExperimentResult(
        experiment="table1",
        title="Utility analytic model inputs and outputs (Table I)",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )


# Paper-fidelity expectations, graded by `repro.obs.fidelity` after each
# observed run.  Table I's verification groups are exact integers — zero
# tolerance: any change to the model's N is a reproduction break.
fidelity.declare_expectations(
    "table1",
    fidelity.Expectation("group1_M", 6, source="Table I: Group 1, M = 6"),
    fidelity.Expectation("group1_N", 3, source="Table I: Group 1, N = 3"),
    fidelity.Expectation("group2_M", 8, source="Table I: Group 2, M = 8"),
    fidelity.Expectation("group2_N", 4, source="Table I: Group 2, N = 4"),
    fidelity.Expectation(
        "group1_matches_paper", True, op="bool", source="Table I: M=6 -> N=3"
    ),
    fidelity.Expectation(
        "group2_matches_paper", True, op="bool", source="Table I: M=8 -> N=4"
    ),
)
