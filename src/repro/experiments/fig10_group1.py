"""Fig. 10 — Group 1: six dedicated servers vs 2/3/4 consolidated servers.

The paper runs the Web + DB workloads on six dedicated servers (three per
service) and on two, three and four consolidated servers, comparing DB
WIPS and Web performance.  Its reading: three consolidated servers match
the six dedicated ones (two are overloaded — "the failure of this
experiment because of too many workloads for servers to afford" — and four
are more than needed), confirming the model's N = 3.

The simulated counterpart measures, for every deployment, per-service loss
probability and delivered throughput on the loss-network data center.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_table
from ..obs import fidelity
from ..parallel import sweep_grid
from ..simulation.datacenter import DataCenterSimulation
from .base import ExperimentResult, ParamGrid, register
from .casestudy import CaseStudyGroup, GROUP1

__all__ = ["run", "consolidation_sweep_rows"]


def _deployment_point(group: CaseStudyGroup, count, horizon: float, seed: int) -> dict:
    """One deployment point of a consolidation grid.

    ``count=None`` means the dedicated islands.  Each point gets its own
    RNG stream derived from the grid index, so the row is the same
    whichever worker — or how many workers — the sweep engine uses.
    """
    sim = DataCenterSimulation(group.inputs())
    rng = np.random.default_rng(seed)
    if count is None:
        res = sim.run_dedicated(group.island_sizes, horizon, rng)
        deployment = f"dedicated ({group.expected_dedicated})"
        servers = res.servers
    else:
        res = sim.run_consolidated(count, horizon, rng)
        deployment = f"consolidated ({count})"
        servers = count
    return {
        "deployment": deployment,
        "servers": servers,
        "db_loss": round(res.per_service_loss["db"], 4),
        "web_loss": round(res.per_service_loss["web"], 4),
        "db_throughput": round(res.per_service_throughput["db"], 2),
        "web_throughput": round(res.per_service_throughput["web"], 1),
    }


def _deployment_block(block: ParamGrid, *, seeds: list[int]) -> list[dict]:
    """One column block of deployments (sweep-engine worker).

    DES points cannot share arithmetic, so the block is a plain loop —
    the columnar win here is dispatch (one pickle per block, not per
    point) while the seeds stay the per-row grid-index streams.
    """
    return [
        _deployment_point(row["group"], row["count"], row["horizon"], seed)
        for row, seed in zip(block.rows(), seeds)
    ]


def consolidation_sweep_rows(
    group: CaseStudyGroup,
    consolidated_counts: tuple[int, ...],
    horizon: float,
    seed: int,
    jobs: int = 1,
) -> list[dict]:
    """Rows comparing one dedicated deployment against several pool sizes.

    The grid (dedicated + each pool size) is columnar (:class:`ParamGrid`)
    and runs through the parallel sweep engine's block path; rows are
    identical for every ``jobs`` value.
    """
    counts = [None, *consolidated_counts]
    grid = ParamGrid(
        {
            "group": [group] * len(counts),
            "count": counts,
            "horizon": [horizon] * len(counts),
        }
    )
    return sweep_grid(
        _deployment_block,
        grid,
        jobs=jobs,
        base_seed=seed,
        name=f"consolidation:{group.name}",
    )


@register("fig10")
def run(seed: int = 2009, fast: bool = True, jobs: int = 1) -> ExperimentResult:
    horizon = 150.0 if fast else 2000.0
    rows = consolidation_sweep_rows(GROUP1, (2, 3, 4), horizon, seed, jobs=jobs)

    dedicated = rows[0]
    by_n = {r["servers"]: r for r in rows[1:]}
    # The paper compares *performance bars*: "the performance of DB service
    # running on three dedicated servers is the closest to that running on
    # three consolidated servers".  We adopt the same reading: the smallest
    # pool whose per-service throughput stays within a few percent of the
    # dedicated deployment's.  (Strict Erlang loss at N is higher than B —
    # the model's Eq. 4 mixture is optimistic; see EXPERIMENTS.md.)
    threshold = 0.93

    def similar(row) -> bool:
        return (
            row["db_throughput"] >= threshold * dedicated["db_throughput"]
            and row["web_throughput"] >= threshold * dedicated["web_throughput"]
        )

    def worst(row):
        return max(row["db_loss"], row["web_loss"])

    adequate = [n for n in sorted(by_n) if similar(by_n[n])]
    chosen = adequate[0] if adequate else max(by_n)
    summary = {
        "model_predicted_N": GROUP1.expected_consolidated,
        "smallest_similar_N_measured": chosen,
        "matches_model": chosen == GROUP1.expected_consolidated,
        "throughput_similarity_threshold": threshold,
        "dedicated_worst_loss": worst(dedicated),
        "loss_at_N2": worst(by_n[2]),
        "loss_at_N3": worst(by_n[3]),
        "loss_at_N4": worst(by_n[4]),
        "N2_degraded": not similar(by_n[2]),
        "servers_saved_fraction": round(
            1.0 - GROUP1.expected_consolidated / GROUP1.expected_dedicated, 3
        ),
    }
    text = (
        format_table(
            rows, title="Fig. 10 — Group 1: 6 dedicated vs 2/3/4 consolidated"
        )
        + "\n\n"
        + format_kv(summary, title="Which pool size matches dedicated QoS?")
    )
    return ExperimentResult(
        experiment="fig10",
        title="Group 1 verification: six dedicated servers consolidate to three",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the measured consolidation must land on the
# model's N=3 — the paper's 50%-server-saving headline for Group 1.
fidelity.declare_expectations(
    "fig10",
    fidelity.Expectation(
        "smallest_similar_N_measured", 3, source="Fig. 10: N=3 keeps Group 1 QoS"
    ),
    fidelity.Expectation(
        "matches_model",
        True,
        op="bool",
        source="Fig. 10: measurement agrees with the analytic N",
    ),
    fidelity.Expectation(
        "servers_saved_fraction",
        0.5,
        source="Headline: consolidation halves the Group 1 fleet (50%)",
    ),
    fidelity.Expectation(
        "N2_degraded",
        True,
        op="bool",
        source="Fig. 10: N=2 visibly degrades throughput",
    ),
)
