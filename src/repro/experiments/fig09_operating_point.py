"""Fig. 9 — selecting the case-study operating point on 4 servers.

The paper selects each service's verification workload as "the intensive
workload that the servers can afford": the largest arrival rate the
dedicated island still serves at the target loss probability, so that any
more workload produces a visible performance difference.  Fig. 9 plots DB
WIPS (with its "wips upper limit") and Web average response time against
workload on four physical servers; the red circles mark the selections.

This experiment regenerates both panels from the queueing substrate:

- DB panel: delivered throughput ``lambda (1 - E_4(lambda/mu_dc))`` and
  loss probability vs offered load, with the admissible limit
  ``max{lambda : E_4 <= B}``;
- Web panel: M/M/4 mean response time vs arrival rate (the response-time
  knee), plus the Erlang-loss admissible limit;
- the Group 2 selections (lambda_w = 1200, lambda_d = 80) shown against
  those limits.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_kv, format_series
from ..obs import fidelity
from ..queueing.erlang import erlang_b, max_load_for_blocking
from ..queueing.mmn import mmn_delay_metrics
from .base import ExperimentResult, register
from .casestudy import GROUP2, LOSS_PROBABILITY, MU_DB_CPU, MU_WEB_DISK_IO

__all__ = ["run"]

_SERVERS = 4


@register("fig9")
def run(seed: int = 2009, fast: bool = True) -> ExperimentResult:
    points = 12 if fast else 40

    # --- DB panel: throughput + loss vs offered WIPS on 4 servers ---------
    db_limit = max_load_for_blocking(_SERVERS, LOSS_PROBABILITY) * MU_DB_CPU
    db_rates = np.linspace(10.0, 1.6 * db_limit, points)
    db_loss = np.array([erlang_b(_SERVERS, lam / MU_DB_CPU) for lam in db_rates])
    db_goodput = db_rates * (1.0 - db_loss)

    # --- Web panel: M/M/4 mean response time vs arrival rate --------------
    web_limit = max_load_for_blocking(_SERVERS, LOSS_PROBABILITY) * MU_WEB_DISK_IO
    stable_max = _SERVERS * MU_WEB_DISK_IO
    web_rates = np.linspace(0.05 * stable_max, 0.98 * stable_max, points)
    web_resp = np.array(
        [
            mmn_delay_metrics(lam, MU_WEB_DISK_IO, _SERVERS).mean_response_time
            for lam in web_rates
        ]
    )

    # Cross-check the closed form against the delay-system DES at a few
    # points (cheap smoke in fast mode, denser in full mode).
    from ..simulation.delay_sim import simulate_delay_system

    rng = np.random.default_rng(seed)
    check_idx = [0, len(web_rates) // 2, len(web_rates) - 2]
    sim_horizon = 30.0 if fast else 600.0
    sim_resp = {}
    for i in check_idx:
        result = simulate_delay_system(
            float(web_rates[i]), 1.0 / MU_WEB_DISK_IO, _SERVERS, sim_horizon, rng
        )
        sim_resp[int(i)] = result.mean_response_time
    max_rel_err = max(
        abs(sim_resp[i] - web_resp[i]) / web_resp[i] for i in sim_resp
    )

    summary = {
        "servers_per_island": _SERVERS,
        "loss_target_B": LOSS_PROBABILITY,
        "db_wips_upper_limit": round(db_limit, 2),
        "db_selected_rate": GROUP2.db_rate,
        "db_selection_within_limit": bool(GROUP2.db_rate <= db_limit),
        "db_selection_utilisation_of_limit": round(GROUP2.db_rate / db_limit, 3),
        "web_admissible_limit": round(web_limit, 1),
        "web_selected_rate": GROUP2.web_rate,
        "web_selection_within_limit": bool(GROUP2.web_rate <= web_limit),
        "web_selection_utilisation_of_limit": round(GROUP2.web_rate / web_limit, 3),
        "response_time_sim_max_rel_err": round(max_rel_err, 3),
    }
    rows = [
        {
            "offered_wips": round(float(lam), 1),
            "delivered_wips": round(float(g), 2),
            "loss_probability": round(float(b), 5),
        }
        for lam, g, b in zip(db_rates, db_goodput, db_loss)
    ]
    text = (
        format_series(
            db_rates,
            {"delivered_wips": db_goodput, "loss_prob": db_loss},
            x_label="offered_wips",
            title="Fig. 9(a) — DB throughput vs workload on 4 servers",
        )
        + "\n\n"
        + format_series(
            web_rates,
            {"mean_response_s": web_resp},
            x_label="req/s",
            title="Fig. 9(b) — Web mean response time vs workload on 4 servers",
        )
        + "\n\n"
        + format_kv(summary, title="Operating-point selection (paper's red circles)")
    )
    return ExperimentResult(
        experiment="fig9",
        title="Workload-vs-performance curves used to select the case-study rates",
        rows=tuple(rows),
        summary=summary,
        text=text,
    )
# Paper-fidelity expectations: the selected operating points must be
# admissible and the M/M/n response-time model must track the DES.
fidelity.declare_expectations(
    "fig9",
    fidelity.Expectation(
        "db_selection_within_limit",
        True,
        op="bool",
        source="Fig. 9: DB operating point below the WIPS limit",
    ),
    fidelity.Expectation(
        "web_selection_within_limit",
        True,
        op="bool",
        source="Fig. 9: web operating point admissible",
    ),
    fidelity.Expectation(
        "response_time_sim_max_rel_err",
        0.1,
        op="le",
        abs_tol=0.02,
        source="Fig. 9: M/M/n response times track the DES within 10%",
    ),
)
