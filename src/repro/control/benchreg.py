"""Registered benchmark: reactive-controller overhead at fleet scale.

``repro-bench run`` imports this module before snapshotting the
:func:`repro.obs.bench.bench` registry, so the control loop's cost shows
up in the BENCH artifact stream next to the sweep-engine and vectorized-
grid numbers.  The workload is the ``ext-dynamic`` fluid phase distilled:
one simulated week (336 half-hour ticks) of the reactive controller over
a deterministic diurnal trace at ~1000-host scale — sizing, alarm
evaluation, boots, and draining shutdowns included, DES and artifact
plumbing excluded.  The acceptance bar for the experiment ("a thousand-
host week in seconds") is exactly this loop's throughput.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamic import DynamicCapacityPlanner
from ..core.inputs import ResourceKind, ServiceSpec
from ..core.power import ServerPowerModel
from ..obs.bench import bench
from ..virtualization.placement import VmDemand
from ..workloads.traces import DiurnalProfile, FlashCrowd, TraceBundle
from .controller import ConsolidationController, ControllerConfig
from .fleet import FleetState

__all__ = ["bench_controller_week", "run_week"]

_MU = 2.0
_SCALE = 40.0

_PROFILES = (
    DiurnalProfile(
        "web", base=2.0 * _SCALE, peak=16.0 * _SCALE, peak_hour=14.0,
        noise=0.05, flash=FlashCrowd(hour=20.0, magnitude=2.2, duration=2.0),
    ),
    DiurnalProfile("api", base=1.5 * _SCALE, peak=9.0 * _SCALE, peak_hour=11.0, noise=0.05),
    DiurnalProfile("batch", base=1.0 * _SCALE, peak=5.0 * _SCALE, peak_hour=18.0, noise=0.05),
)


def run_week(seed: int = 2009) -> dict[str, int]:
    """Drive one controller through a sampled week; returns the ledger."""
    rng = np.random.default_rng(seed)
    bundle = TraceBundle.sample(
        list(_PROFILES), days=7, samples_per_hour=2, rng=rng
    )
    services = [
        ServiceSpec(p.name, 1.0, {ResourceKind.CPU: _MU}, {ResourceKind.CPU: 1.0})
        for p in _PROFILES
    ]
    planner = DynamicCapacityPlanner(
        services, 0.02, power_model=ServerPowerModel(),
        period_length=1800.0, hold_periods=1,
    )
    vms = [
        VmDemand(f"{p.name}-{i}", {ResourceKind.CPU: 0.25})
        for p in _PROFILES
        for i in range(max(1, round(p.base / _MU / 0.25)))
    ]
    first = {name: float(tr[0]) for name, tr in bundle.traces.items()}
    peak_idx = int(np.argmax(bundle.combined))
    peak = {name: float(tr[peak_idx]) for name, tr in bundle.traces.items()}
    fleet = FleetState(
        int(np.ceil(1.5 * planner.servers_needed(peak))) + 2,
        vms,
        initial_on=int(np.ceil(1.15 * planner.servers_needed(first))),
    )
    controller = ConsolidationController(
        planner, fleet, ControllerConfig(interval=0.5, pool="bench")
    )
    for i, t in enumerate(bundle.hours):
        rates = {name: float(tr[i]) for name, tr in bundle.traces.items()}
        controller.tick(float(t), rates, busy=planner.offered_load(rates))
    return {
        "ticks": controller.ticks,
        "boots": controller.boots,
        "shutdowns": controller.shutdowns,
        "migrations": controller.migrations,
    }


@bench(name="control_loop::week_1000_hosts", group="control-loop")
def bench_controller_week() -> dict[str, int]:
    return run_week()
