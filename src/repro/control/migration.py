"""Live-migration cost model: bandwidth-derived duration, dirty-page tax.

Pre-copy live migration ships the VM's memory image over the migration
network while the VM keeps running on the source; pages dirtied during the
copy are retransmitted.  Two first-order consequences matter to a
consolidation controller:

- **duration** scales with the image size over the available bandwidth,
  inflated by the dirty-page retransmission factor — during this window the
  *destination* must already hold the VM's reservation (capacity in flight)
  while the *source* still runs it;
- **energy** — the source host burns extra CPU driving the transfer (a
  fraction of its dynamic power range for the duration) and cannot power
  off until its last outbound migration drains.

The numbers default to a 4 GiB VM on a 10 Gb/s migration network with a
25% dirty-page overhead — the ballpark reported for pre-copy migration of
busy web-tier VMs — but every knob is an explicit recorded parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.power import ServerPowerModel

__all__ = ["MigrationCost", "MigrationCostModel"]


@dataclass(frozen=True)
class MigrationCost:
    """Aggregate cost of one batch of migrations."""

    migrations: int
    data_gb: float
    duration_s: float
    energy_j: float

    def __add__(self, other: "MigrationCost") -> "MigrationCost":
        return MigrationCost(
            migrations=self.migrations + other.migrations,
            data_gb=self.data_gb + other.data_gb,
            duration_s=self.duration_s + other.duration_s,
            energy_j=self.energy_j + other.energy_j,
        )


@dataclass(frozen=True)
class MigrationCostModel:
    """Parameters of the pre-copy live-migration cost model.

    ``vm_memory_gb``
        Memory image shipped per VM (GiB).
    ``bandwidth_gbps``
        Migration network bandwidth (Gb/s) available per transfer.
    ``dirty_page_factor``
        Fractional extra data retransmitted because pages dirtied during
        the copy must be resent (0.25 = 25% of the image again).
    ``source_cpu_overhead``
        Fraction of the source host's *dynamic* power range burned driving
        the transfer for its duration.
    """

    vm_memory_gb: float = 4.0
    bandwidth_gbps: float = 10.0
    dirty_page_factor: float = 0.25
    source_cpu_overhead: float = 0.10

    def __post_init__(self) -> None:
        if self.vm_memory_gb <= 0.0:
            raise ValueError(f"VM memory must be positive, got {self.vm_memory_gb}")
        if self.bandwidth_gbps <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.dirty_page_factor < 0.0:
            raise ValueError(
                f"dirty-page factor must be >= 0, got {self.dirty_page_factor}"
            )
        if not 0.0 <= self.source_cpu_overhead <= 1.0:
            raise ValueError(
                f"source CPU overhead must lie in [0, 1], got {self.source_cpu_overhead}"
            )

    @property
    def data_gb(self) -> float:
        """Total data shipped per migration, dirty-page retransmission included."""
        return self.vm_memory_gb * (1.0 + self.dirty_page_factor)

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds one migration occupies the network."""
        # GiB -> Gib (x8) over Gb/s; close enough to GB/Gb for a model knob.
        return self.data_gb * 8.0 / self.bandwidth_gbps

    def source_energy_j(self, power_model: ServerPowerModel) -> float:
        """Extra source-host energy (J) attributable to one migration."""
        dynamic = power_model.max_watts - power_model.base_watts
        return dynamic * self.source_cpu_overhead * self.duration_s

    def drain_seconds(self, outbound_migrations: int) -> float:
        """How long a source host stays up draining ``outbound_migrations``.

        Transfers from one host serialise on its NIC, so the drain window
        is the sum of the individual durations.
        """
        if outbound_migrations < 0:
            raise ValueError(
                f"outbound migrations must be >= 0, got {outbound_migrations}"
            )
        return outbound_migrations * self.duration_s

    def batch_cost(
        self,
        migrations_per_source: dict[int, int],
        power_model: ServerPowerModel,
    ) -> MigrationCost:
        """Cost of one re-consolidation batch.

        ``migrations_per_source`` maps source host index -> outbound VM
        count.  Energy charged: per-migration transfer overhead plus the
        source host's baseline draw over its (serialised) drain window —
        the host cannot power off until its last VM has left.
        """
        total = sum(migrations_per_source.values())
        drain_energy = sum(
            power_model.base_watts * self.drain_seconds(count)
            for count in migrations_per_source.values()
        )
        return MigrationCost(
            migrations=total,
            data_gb=total * self.data_gb,
            duration_s=self.drain_seconds(total),
            energy_j=total * self.source_energy_j(power_model) + drain_energy,
        )
