"""Reactive consolidation controller on the DES virtual clock.

One :class:`ConsolidationController` closes the loop the ROADMAP asks for:
every ``interval`` of virtual time it observes the pool (measured
per-service arrival rates and mean busy servers), re-sizes it with the
*same* :class:`~repro.core.dynamic.DynamicCapacityPlanner` the oracle plan
uses, and acts through a :class:`~repro.control.fleet.FleetState` — boots
on overload alarms, draining shutdowns (minimum-migration victims, BFD
re-placement) on underload alarms that persist past the planner's
``hold_periods`` hysteresis.

Detection reuses :class:`~repro.obs.alarms.AlarmRule` *semantics*
incrementally: the controller maintains each rule's trailing window /
debounce-streak / hysteresis state tick by tick, so its fire/clear
transitions match what a post-hoc :meth:`AlarmManager.evaluate
<repro.obs.alarms.AlarmManager.evaluate>` walk over the recorded
``control.pressure`` series produces.  The monitored signal is **pressure**
``servers_needed / servers_on`` — demand (QoS-sized by the analytic model
from measured rates) over supply — which stays scale-free where raw
utilization saturates: at thousand-host scale QoS sizing itself runs the
pool near 90% busy, so a fixed utilization threshold would either always
or never fire.

Every decision is recorded three ways: a ``kind="control"`` structured
trace event, ``control.*`` telemetry series on the construct-time-bound
bus (pressure, servers on/needed as gauges; boots, shutdowns, migrations
as counters), and a :class:`ControlDecision` retained for the experiment
artifact stream.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.dynamic import DynamicCapacityPlanner
from ..obs.alarms import AlarmEvent, AlarmManager, AlarmRule
from ..obs.timeseries import get_bus
from ..obs.trace import get_trace
from .fleet import FleetState
from .migration import MigrationCostModel

__all__ = ["ControllerConfig", "ControlDecision", "ConsolidationController"]

PRESSURE_SERIES = "control.pressure"


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the reactive loop (all recorded in run manifests).

    ``interval``
        Virtual time between control ticks (hours in the experiments).
    ``overload_pressure`` / ``overload_clear``
        Fire when the windowed mean pressure reaches the threshold
        (``1.0`` = the fleet is at or below the QoS-critical size); clear
        once it falls below ``overload_clear``.
    ``underload_pressure`` / ``underload_clear``
        Mirrored downward band for shrink eligibility.
    ``window`` / ``debounce``
        Trailing buckets averaged and consecutive breached windows
        required before an alarm fires (Neat-style anti-flap guards).
    ``headroom``
        Fractional capacity kept above the QoS-critical size after any
        action, so post-action pressure lands between the clear
        thresholds and the controller settles instead of flapping.
    """

    interval: float = 0.5
    overload_pressure: float = 1.0
    overload_clear: float = 0.90
    underload_pressure: float = 0.75
    underload_clear: float = 0.85
    window: int = 2
    debounce: int = 2
    headroom: float = 0.15
    migration: MigrationCostModel = field(default_factory=MigrationCostModel)
    pool: str = "pool"

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.headroom < 0.0:
            raise ValueError(f"headroom must be >= 0, got {self.headroom}")
        if not 0.0 < self.underload_pressure < self.overload_pressure:
            raise ValueError(
                "need 0 < underload_pressure < overload_pressure, got "
                f"{self.underload_pressure} vs {self.overload_pressure}"
            )
        # Band sanity is delegated to AlarmRule (clear on the safe side);
        # rules() constructs them eagerly so a bad config fails here.
        self.rules()

    def rules(self) -> tuple[AlarmRule, AlarmRule]:
        """The (overload, underload) rules this config induces."""
        labels = {"pool": self.pool}
        return (
            AlarmRule(
                "control-overload", PRESSURE_SERIES, "overload",
                threshold=self.overload_pressure, clear=self.overload_clear,
                window=self.window, debounce=self.debounce, labels=labels,
            ),
            AlarmRule(
                "control-underload", PRESSURE_SERIES, "underload",
                threshold=self.underload_pressure, clear=self.underload_clear,
                window=self.window, debounce=self.debounce, labels=labels,
            ),
        )


@dataclass(frozen=True)
class ControlDecision:
    """One control tick's observation and (possibly empty) action."""

    t: float
    kind: str  # "boot" | "shutdown" | "hold"
    pressure: float
    servers_needed: int
    servers_before: int
    servers_after: int
    booted: int = 0
    shut_down: int = 0
    migrations: int = 0
    alarms: tuple[str, ...] = ()

    def to_doc(self) -> dict[str, Any]:
        """Plain-JSON view for experiment artifacts."""
        return {
            "t": round(self.t, 9),
            "kind": self.kind,
            "pressure": round(self.pressure, 6),
            "servers_needed": self.servers_needed,
            "servers_before": self.servers_before,
            "servers_after": self.servers_after,
            "booted": self.booted,
            "shut_down": self.shut_down,
            "migrations": self.migrations,
            "alarms": list(self.alarms),
        }


class _LiveRule:
    """Incremental evaluation of one AlarmRule (window/debounce/hysteresis).

    Mirrors :meth:`AlarmManager._walk` exactly: trailing-window mean
    (shorter at the start), debounce streak while quiet, hysteresis clear
    while firing.
    """

    def __init__(self, rule: AlarmRule) -> None:
        self.rule = rule
        self._window: deque[float] = deque(maxlen=rule.window)
        self._streak = 0
        self.firing = False
        self.mean = 0.0

    def step(self, value: float) -> str | None:
        """Feed one bucket value; returns "fire", "clear", or None."""
        self._window.append(value)
        self.mean = sum(self._window) / len(self._window)
        if not self.firing:
            self._streak = self._streak + 1 if self.rule._breaches(self.mean) else 0
            if self._streak >= self.rule.debounce:
                self.firing = True
                self._streak = 0
                return "fire"
        elif self.rule._clears(self.mean):
            self.firing = False
            return "clear"
        return None


class ConsolidationController:
    """Close the loop: observe -> size -> alarm-gated boot/shrink.

    Parameters
    ----------
    planner:
        Sizing + hysteresis + energy authority.  Its ``period_length``
        (seconds) should equal ``config.interval`` in the simulation's
        time unit (e.g. interval 0.5 h -> period_length 1800 s) so the
        energy ledger integrates correctly.
    fleet:
        Host universe, VM inventory and placement state.
    config:
        Alarm band, headroom and migration-cost knobs.
    """

    def __init__(
        self,
        planner: DynamicCapacityPlanner,
        fleet: FleetState,
        config: ControllerConfig | None = None,
    ) -> None:
        self.planner = planner
        self.fleet = fleet
        self.config = config or ControllerConfig()
        overload, underload = self.config.rules()
        self._overload = _LiveRule(overload)
        self._underload = _LiveRule(underload)
        self.manager = AlarmManager([overload, underload])
        self._below_streak = 0
        self.decisions: list[ControlDecision] = []
        self.events: list[AlarmEvent] = []
        # Ledger (joules / counts) in the planner's algebra.
        self.energy_j = 0.0
        self.boot_energy_j = 0.0
        self.migration_energy_j = 0.0
        self.server_ticks = 0
        self.ticks = 0
        self.boots = 0
        self.shutdowns = 0
        self.migrations = 0
        # Construct-time telemetry binding (repo-wide contract).
        bus = get_bus()
        labels = {"pool": self.config.pool}
        self._pressure_g = bus.gauge(PRESSURE_SERIES, labels)
        self._on_g = bus.gauge("control.servers_on", labels)
        self._needed_g = bus.gauge("control.servers_needed", labels)
        self._boots_c = bus.counter("control.boots", labels)
        self._shut_c = bus.counter("control.shutdowns", labels)
        self._mig_c = bus.counter("control.migrations", labels)
        self._gauges = (self._pressure_g, self._on_g, self._needed_g)
        self._on_g.set(0.0, float(fleet.powered_count))

    # -- the control loop -----------------------------------------------------

    @property
    def interval(self) -> float:
        """Virtual time between ticks (the DES binding's schedule step)."""
        return self.config.interval

    def target_for(self, needed: int) -> int:
        """Post-action fleet size for a QoS-critical size ``needed``."""
        sized = math.ceil(needed * (1.0 + self.config.headroom))
        return max(sized, self.planner.min_servers, self.fleet.packing_floor, 1)

    def observe(
        self, t: float, rates: Mapping[str, float], busy: float
    ) -> ControlDecision:
        """One control tick at virtual time ``t``.

        ``rates`` are the per-service arrival rates *measured* over the
        last interval; ``busy`` the interval's mean busy servers (any
        non-negative proxy works — fluid mode passes offered load).  The
        returned decision has already been applied to the fleet.
        """
        cfg = self.config
        planner = self.planner
        on = self.fleet.powered_count
        needed = planner.servers_needed(rates)
        pressure = needed / on if on else float("inf")

        transitions: list[str] = []
        for live in (self._overload, self._underload):
            change = live.step(pressure)
            if change is not None:
                rule = live.rule
                threshold = (
                    rule.threshold if change == "fire" else rule.clear_threshold
                )
                self.events.append(
                    AlarmEvent(
                        rule=rule.name, kind=rule.kind, state=change, t=t,
                        value=live.mean, threshold=threshold,
                        series=rule.series, labels=dict(rule.labels),
                    )
                )
                transitions.append(f"{rule.kind}:{change}")

        target = self.target_for(needed)
        kind = "hold"
        booted = shut = migs = 0
        if self._overload.firing and target > on:
            # QoS first: overload boots immediately to the headroom size.
            scale = self.fleet.scale_up(target - on)
            booted = scale.completed
            if booted:
                kind = "boot"
                boot_j = booted * planner.boot_energy
                self.boot_energy_j += boot_j
                self.energy_j += boot_j
                self.boots += booted
                self._boots_c.add(t, booted)
            self._below_streak = 0
        else:
            self._below_streak = self._below_streak + 1 if target < on else 0
            if (
                self._underload.firing
                and target < on
                and self._below_streak > planner.hold_periods
            ):
                scale = self.fleet.scale_down(on - target)
                shut = scale.completed
                migs = len(scale.migrations)
                if shut:
                    kind = "shutdown"
                    cost = cfg.migration.batch_cost(
                        scale.migrations_per_source, planner.power_model
                    )
                    self.migration_energy_j += cost.energy_j
                    self.energy_j += cost.energy_j
                    self.shutdowns += shut
                    self.migrations += migs
                    self._shut_c.add(t, shut)
                    if migs:
                        self._mig_c.add(t, migs)
                self._below_streak = 0

        on_after = self.fleet.powered_count
        util = min(max(busy, 0.0) / on_after, 1.0) if on_after else 0.0
        self.energy_j += (
            on_after * planner.power_model.draw(util) * planner.period_length
        )
        self.server_ticks += on_after
        self.ticks += 1

        self._pressure_g.set(t, pressure)
        self._on_g.set(t, float(on_after))
        self._needed_g.set(t, float(needed))

        decision = ControlDecision(
            t=t, kind=kind, pressure=pressure, servers_needed=needed,
            servers_before=on, servers_after=on_after,
            booted=booted, shut_down=shut, migrations=migs,
            alarms=tuple(transitions),
        )
        if kind != "hold" or transitions:
            self.decisions.append(decision)
            get_trace().emit(
                "control_decision",
                kind="control",
                action=kind,
                t=round(t, 9),
                pressure=round(pressure, 6),
                servers_needed=needed,
                servers_before=on,
                servers_after=on_after,
                booted=booted,
                shut_down=shut,
                migrations=migs,
                alarms=",".join(transitions),
                pool=cfg.pool,
            )
        return decision

    def tick(self, t: float, rates: Mapping[str, float], busy: float) -> int:
        """DES-binding entry point: observe, return the new pool size."""
        return self.observe(t, rates, busy).servers_after

    # -- shutdown -------------------------------------------------------------

    def finalize(self, t: float) -> list[AlarmEvent]:
        """Close gauges at ``t``, emit alarm events (+ open-at-exit ones).

        Returns the full event list, now including one ``open_at_exit``
        record per rule still firing — same contract as
        :meth:`AlarmManager.open_alarms`.
        """
        for gauge in self._gauges:
            gauge.finalize(t)
        for live in (self._overload, self._underload):
            if live.firing:
                rule = live.rule
                self.events.append(
                    AlarmEvent(
                        rule=rule.name, kind=rule.kind, state="open_at_exit",
                        t=t, value=live.mean, threshold=rule.threshold,
                        series=rule.series, labels=dict(rule.labels),
                    )
                )
        self.manager.emit(self.events)
        return list(self.events)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Ledger rollup (golden-pinnable: ints and rounded floats only)."""
        alarm_counts = self.manager.summarize(self.events)
        return {
            "ticks": self.ticks,
            "server_ticks": self.server_ticks,
            "server_hours": round(self.server_ticks * self.config.interval, 3),
            "energy_kwh": round(self.energy_j / 3.6e6, 3),
            "boot_energy_kwh": round(self.boot_energy_j / 3.6e6, 3),
            "migration_energy_kwh": round(self.migration_energy_j / 3.6e6, 3),
            "boots": self.boots,
            "shutdowns": self.shutdowns,
            "migrations": self.migrations,
            "decisions": len(self.decisions),
            "overload_fires": alarm_counts["overload_fires"],
            "underload_fires": alarm_counts["underload_fires"],
            "alarm_clears": alarm_counts["clears"],
        }
