"""Dynamic consolidation control loop (the ROADMAP's closed-loop item).

The paper's utility analysis is *static* before-deployment planning.  This
package extends it into a reactive control loop over time-varying traffic,
following the four sub-problems of dynamic consolidation surveyed by the
OpenStack Neat line of work:

1. **overload / underload detection** — :class:`~repro.obs.alarms.AlarmRule`
   hysteresis + debounce semantics evaluated *incrementally* on the DES
   virtual clock (:mod:`repro.control.controller`);
2. **VM selection** — the minimum-migration heuristic: shut the hosts whose
   eviction moves the fewest VMs (:mod:`repro.control.fleet`);
3. **placement** — :func:`~repro.virtualization.placement.best_fit_decreasing`
   restricted to the surviving powered hosts, with capacity reserved on the
   destination while the migration is in flight;
4. **migration cost** — an explicit bandwidth-derived live-migration model
   charging dirty-page retransmission and source-host drain energy
   (:mod:`repro.control.migration`).

Sizing and on/off energy accounting delegate to the existing
:class:`~repro.core.dynamic.DynamicCapacityPlanner` (hysteresis hold,
boot-energy amortisation, ``min_servers`` floor), so the reactive
controller and the oracle per-period plan share one algebra and their
outputs are directly comparable.  :mod:`repro.control.loop` runs the
three-way comparison — static Erlang planning vs. oracle re-planning vs.
the reactive controller — in a vectorized fluid mode that handles
thousand-host weeks in seconds.
"""

from .controller import ConsolidationController, ControlDecision, ControllerConfig
from .fleet import FleetState, ScaleDecision
from .loop import StrategyOutcome, run_comparison
from .migration import MigrationCost, MigrationCostModel

__all__ = [
    "ConsolidationController",
    "ControlDecision",
    "ControllerConfig",
    "FleetState",
    "ScaleDecision",
    "MigrationCost",
    "MigrationCostModel",
    "StrategyOutcome",
    "run_comparison",
]
