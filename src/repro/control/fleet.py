"""Powered-host fleet state: VM inventory, boots, and draining shutdowns.

The fleet is a fixed universe of ``max_hosts`` identical machines, each a
bin of one normalized unit per resource (the same convention as
:mod:`repro.virtualization.placement`).  VMs carry static *reservations*
(their guaranteed capability slice); burst capability above the
reservations is pooled, which is exactly the paper's consolidation
argument — so the packing floor sits well below the Erlang-sized fleet
and powering hosts down is usually migration-free.

Scaling down follows the **minimum-migration heuristic** from the
dynamic-consolidation literature: victims are the powered hosts hosting
the fewest VMs (empty hosts first — they shut down for free), their VMs
are re-placed onto the surviving hosts with
:func:`~repro.virtualization.placement.best_fit_decreasing`, and the move
set is the :func:`~repro.virtualization.placement.migration_plan` cost.
A host whose VMs cannot be re-placed is simply kept on — capacity safety
is never traded for a shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..virtualization.placement import (
    Migration,
    PlacementPlan,
    VmDemand,
    _fits,
    _place,
    _sorted_vms,
    best_fit_decreasing,
    migration_plan,
)

__all__ = ["FleetState", "ScaleDecision"]


@dataclass(frozen=True)
class ScaleDecision:
    """Outcome of one fleet scaling step."""

    direction: str  # "up" | "down"
    requested: int
    completed: int
    hosts: tuple[int, ...]
    migrations: tuple[Migration, ...] = ()

    @property
    def migrations_per_source(self) -> dict[int, int]:
        """Outbound migration counts keyed by source host (drain windows)."""
        counts: dict[int, int] = {}
        for move in self.migrations:
            counts[move.source] = counts.get(move.source, 0) + 1
        return counts


class FleetState:
    """Mutable placement + power state over a fixed host universe.

    Parameters
    ----------
    max_hosts:
        Size of the host universe (upper bound on boots).
    vms:
        Static VM reservations to keep placed at all times.
    initial_on:
        Hosts powered at construction (indices ``0..initial_on-1``).
    placement:
        ``"spread"`` distributes VMs worst-fit-decreasing across all
        initially-powered hosts (realistic: load-balanced deployment, so
        the first shrink must actually migrate); ``"packed"`` starts from
        the tightest BFD packing (shrinks are free until the floor).
    """

    def __init__(
        self,
        max_hosts: int,
        vms: list[VmDemand],
        initial_on: int,
        placement: str = "spread",
    ) -> None:
        if max_hosts < 1:
            raise ValueError(f"max_hosts must be >= 1, got {max_hosts}")
        if not 1 <= initial_on <= max_hosts:
            raise ValueError(
                f"initial_on must lie in [1, {max_hosts}], got {initial_on}"
            )
        if placement not in ("spread", "packed"):
            raise ValueError(f"unknown placement strategy {placement!r}")
        self.max_hosts = max_hosts
        self.vms = tuple(vms)
        self._by_name = {vm.name: vm for vm in self.vms}
        self.powered = [i < initial_on for i in range(max_hosts)]
        base = PlacementPlan(assignments={}, host_loads=[{} for _ in range(max_hosts)])
        allowed = list(range(initial_on))
        if placement == "packed" or not vms:
            self.plan = (
                best_fit_decreasing(list(vms), into=base, allowed_hosts=allowed)
                if vms
                else base
            )
        else:
            self.plan = self._spread(base, list(vms), allowed)
        # Tightest from-scratch packing: the hard floor below which the
        # fleet cannot shrink no matter how many migrations it spends.
        self.packing_floor = (
            best_fit_decreasing(list(vms)).hosts_used if vms else 0
        )

    @staticmethod
    def _spread(
        plan: PlacementPlan, vms: list[VmDemand], allowed: list[int]
    ) -> PlacementPlan:
        """Worst-fit decreasing: each VM onto the emptiest allowed host."""
        for vm in _sorted_vms(vms):
            best_host = -1
            best_room = -1.0
            for host in allowed:
                load = plan.host_loads[host]
                if not _fits(load, vm):
                    continue
                room = sum(1.0 - load.get(kind, 0.0) for kind in vm.demands)
                if room > best_room:
                    best_room = room
                    best_host = host
            if best_host < 0:
                raise ValueError(
                    f"no powered host has room for VM {vm.name!r}; "
                    f"raise initial_on above {len(allowed)}"
                )
            _place(plan, best_host, vm)
        plan.validate()
        return plan

    # -- views ----------------------------------------------------------------

    @property
    def powered_count(self) -> int:
        return sum(self.powered)

    def powered_hosts(self) -> list[int]:
        return [i for i, on in enumerate(self.powered) if on]

    def vms_on(self, host: int) -> list[VmDemand]:
        return [
            self._by_name[name]
            for name, h in self.plan.assignments.items()
            if h == host
        ]

    # -- scaling --------------------------------------------------------------

    def scale_up(self, count: int) -> ScaleDecision:
        """Boot ``count`` off hosts (lowest index first); no migrations.

        Booted hosts join the pool empty — under the paper's pooled-
        capability model new requests flow to them immediately, no VM
        needs to move.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        booted: list[int] = []
        for host in range(self.max_hosts):
            if len(booted) == count:
                break
            if not self.powered[host]:
                self.powered[host] = True
                booted.append(host)
        return ScaleDecision(
            direction="up",
            requested=count,
            completed=len(booted),
            hosts=tuple(booted),
        )

    def scale_down(self, count: int) -> ScaleDecision:
        """Power down up to ``count`` hosts, min-migration victims first.

        Victim order: fewest VMs, then lightest dominant load, then the
        highest index (later-booted machines retire first) — all fully
        deterministic.  Each victim's VMs are re-placed (BFD) onto the
        surviving powered hosts *before* the victim is marked off, so
        destination capacity is reserved while the migration is in flight
        and no intermediate state overcommits a host.  Victims whose VMs
        do not fit anywhere stay powered; ``completed`` reports the real
        shutdown count.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        requested = count
        count = min(count, self.powered_count - 1)  # never darken the fleet
        if count <= 0:
            return ScaleDecision(
                direction="down", requested=requested, completed=0, hosts=()
            )
        occupancy: dict[int, list[VmDemand]] = {h: [] for h in self.powered_hosts()}
        for name, host in self.plan.assignments.items():
            occupancy[host].append(self._by_name[name])
        candidates = sorted(
            occupancy,
            key=lambda h: (
                len(occupancy[h]),
                max((d for vm in occupancy[h] for d in vm.demands.values()), default=0.0),
                -h,
            ),
        )
        victims: list[int] = []
        moves: list[Migration] = []
        for host in candidates:
            if len(victims) == count:
                break
            evicted = self.vms_on(host)  # re-read: earlier drains may have landed here
            if not evicted:
                self.powered[host] = False
                victims.append(host)
                continue
            survivors = [
                h for h in self.powered_hosts() if h != host and h not in victims
            ]
            trial = self.plan.copy()
            for vm in evicted:
                trial.remove(vm)
            try:
                packed = best_fit_decreasing(
                    evicted, into=trial, allowed_hosts=survivors
                )
            except ValueError:
                continue  # undrainable host: keep it on, try the next candidate
            moves.extend(migration_plan(self.plan, packed))
            self.plan = packed
            self.powered[host] = False
            victims.append(host)
        return ScaleDecision(
            direction="down",
            requested=requested,
            completed=len(victims),
            hosts=tuple(victims),
            migrations=tuple(moves),
        )
