"""Three-way consolidation comparison: static vs. oracle vs. reactive.

The experiment family ``ext-dynamic`` asks one question over a simulated
day/week of diurnal traffic: what does *reactivity* cost relative to the
paper's static Erlang plan on one side and perfect per-period knowledge on
the other?

- **static** — the paper's before-deployment answer: size once for the
  horizon's peak QoS-critical requirement and keep that fleet on.
- **oracle** — :meth:`DynamicCapacityPlanner.plan
  <repro.core.dynamic.DynamicCapacityPlanner.plan>` re-planning each
  period on the *clean* rates (hindsight scheduling: it sees every
  period's demand exactly, pays boot energy and hysteresis but no
  detection lag and no headroom).
- **reactive** — the :class:`~repro.control.controller
  .ConsolidationController` fed the same trace tick by tick, paying
  alarm debounce lag, safety headroom and live-migration costs.

All three run in **fluid mode**: per-tick offered loads drive batched
Erlang-B evaluations through the vectorized core, so a thousand-host week
(336 half-hour ticks) costs well under a second of wall clock — the scale
the ROADMAP's data-center item demands.  Loss probabilities are
arrival-weighted across ticks; the peak-window loss isolates the busiest
``peak_window_h`` hours, where the quasi-stationary Erlang-B fidelity
argument applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.dynamic import DynamicCapacityPlanner
from ..obs.alarms import AlarmEvent
from ..queueing import vectorized
from ..workloads.traces import TraceBundle
from .controller import ConsolidationController, ControlDecision, ControllerConfig
from .fleet import FleetState

__all__ = ["StrategyOutcome", "ComparisonResult", "run_comparison"]


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's horizon totals (the comparison's tabular row)."""

    strategy: str
    servers_on: tuple[int, ...]
    server_hours: float
    energy_kwh: float
    boots: int
    shutdowns: int
    migrations: int
    mean_loss: float
    peak_window_loss: float

    def row(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "server_hours": round(self.server_hours, 1),
            "energy_kwh": round(self.energy_kwh, 1),
            "boots": self.boots,
            "shutdowns": self.shutdowns,
            "migrations": self.migrations,
            "mean_loss": round(self.mean_loss, 4),
            "peak_window_loss": round(self.peak_window_loss, 4),
        }


@dataclass(frozen=True)
class ComparisonResult:
    """The three outcomes plus the shared per-tick context."""

    outcomes: Mapping[str, StrategyOutcome]
    needed: tuple[int, ...]
    offered: tuple[float, ...]
    interval: float
    peak_window: tuple[float, float]
    controller_summary: Mapping[str, Any]
    decisions: tuple[ControlDecision, ...]
    events: tuple[AlarmEvent, ...]

    @property
    def reactive_between(self) -> bool:
        """The headline ordering: oracle < reactive < static server-hours."""
        oracle = self.outcomes["oracle"].server_hours
        reactive = self.outcomes["reactive"].server_hours
        static = self.outcomes["static"].server_hours
        return oracle < reactive < static


def _weighted_loss(
    servers: np.ndarray, offered: np.ndarray, weights: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Arrival-weighted Erlang-B loss across ticks (batched evaluation)."""
    if mask is not None:
        servers, offered, weights = servers[mask], offered[mask], weights[mask]
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0
    losses = vectorized.erlang_b(np.maximum(servers, 1), offered)
    return float((weights * losses).sum() / total)


def run_comparison(
    planner: DynamicCapacityPlanner,
    bundle: TraceBundle,
    fleet: FleetState,
    config: ControllerConfig | None = None,
    peak_window_h: float = 3.0,
) -> ComparisonResult:
    """Run all three strategies over one sampled trace bundle.

    ``planner.period_length`` must be the tick length in seconds and
    ``config.interval`` the tick length in the trace's time unit (hours);
    the bundle's sampling grid defines both.  The fleet is consumed by the
    reactive controller (its placement mutates); build a fresh one per
    call.
    """
    hours = bundle.hours
    if hours.size < 2:
        raise ValueError("trace bundle needs at least two samples")
    interval = float(hours[1] - hours[0])
    config = config or ControllerConfig(interval=interval)
    if abs(config.interval - interval) > 1e-9:
        raise ValueError(
            f"controller interval {config.interval} does not match the "
            f"trace sampling step {interval}"
        )
    if abs(planner.period_length - interval * 3600.0) > 1e-6:
        raise ValueError(
            f"planner period_length {planner.period_length}s does not match "
            f"the {interval}h tick"
        )
    names = list(bundle.traces)
    ticks: list[dict[str, float]] = [
        {name: float(bundle.traces[name][i]) for name in names}
        for i in range(hours.size)
    ]
    needed = np.array([planner.servers_needed(r) for r in ticks], dtype=int)
    offered = np.array([planner.offered_load(r) for r in ticks], dtype=float)
    weights = bundle.combined.astype(float)
    period_s = planner.period_length

    # Busiest peak_window_h-hour window of the combined trace (the
    # quasi-stationary Erlang fidelity window).
    win = max(int(round(peak_window_h / interval)), 1)
    rolling = np.convolve(weights, np.ones(win) / win, mode="valid")
    peak_idx = int(np.argmax(rolling))
    peak_start = float(hours[peak_idx])
    peak_end = peak_start + peak_window_h
    peak_mask = (hours >= peak_start) & (hours < peak_end)

    def energy_kwh(on: np.ndarray) -> float:
        util = np.minimum(offered / on, 1.0)
        draw = planner.power_model.base_watts + (
            planner.power_model.max_watts - planner.power_model.base_watts
        ) * util
        return float((on * draw).sum() * period_s / 3.6e6)

    # -- static: the paper's peak plan, on all horizon --------------------------
    static_n = int(needed.max())
    static_on = np.full(hours.size, static_n, dtype=int)
    static = StrategyOutcome(
        strategy="static",
        servers_on=tuple(static_on.tolist()),
        server_hours=float(static_on.sum()) * interval,
        energy_kwh=energy_kwh(static_on),
        boots=0,
        shutdowns=0,
        migrations=0,
        mean_loss=_weighted_loss(static_on, offered, weights),
        peak_window_loss=_weighted_loss(static_on, offered, weights, peak_mask),
    )

    # -- oracle: hindsight per-period re-planning -------------------------------
    plan = planner.plan(ticks)
    oracle_on = np.array([p.servers_on for p in plan.periods], dtype=int)
    oracle = StrategyOutcome(
        strategy="oracle",
        servers_on=tuple(oracle_on.tolist()),
        server_hours=float(oracle_on.sum()) * interval,
        energy_kwh=plan.total_energy / 3.6e6,
        boots=sum(p.booted for p in plan.periods),
        shutdowns=sum(p.shut_down for p in plan.periods),
        migrations=0,
        mean_loss=_weighted_loss(oracle_on, offered, weights),
        peak_window_loss=_weighted_loss(oracle_on, offered, weights, peak_mask),
    )

    # -- reactive: the controller, tick by tick ---------------------------------
    controller = ConsolidationController(planner, fleet, config)
    reactive_series: list[int] = []
    for i, rates in enumerate(ticks):
        decision = controller.observe(float(hours[i]), rates, busy=float(offered[i]))
        reactive_series.append(decision.servers_after)
    controller.finalize(float(hours[-1]) + interval)
    reactive_on = np.array(reactive_series, dtype=int)
    summary = controller.summary()
    reactive = StrategyOutcome(
        strategy="reactive",
        servers_on=tuple(reactive_on.tolist()),
        server_hours=summary["server_hours"],
        energy_kwh=summary["energy_kwh"],
        boots=summary["boots"],
        shutdowns=summary["shutdowns"],
        migrations=summary["migrations"],
        mean_loss=_weighted_loss(reactive_on, offered, weights),
        peak_window_loss=_weighted_loss(reactive_on, offered, weights, peak_mask),
    )

    return ComparisonResult(
        outcomes={"static": static, "oracle": oracle, "reactive": reactive},
        needed=tuple(needed.tolist()),
        offered=tuple(offered.tolist()),
        interval=interval,
        peak_window=(peak_start, peak_end),
        controller_summary=summary,
        decisions=tuple(controller.decisions),
        events=tuple(controller.events),
    )
