"""Deterministic closed-loop load test for the planner service.

Closed-loop means each worker thread holds one keep-alive HTTP
connection and issues its next ``POST /plan`` only after the previous
response lands — so offered load adapts to service capacity and the
recorded latencies are genuine per-request round trips, not queueing
artifacts of an open-loop firehose.

Determinism: the request *mix* is fixed by ``seed`` — a
:class:`MixGenerator` pre-builds ``distinct`` deployment documents from
quantized parameter menus with one ``random.Random(seed)``, and every
worker walks its own body-index stream seeded via
:func:`repro.parallel.sweep.seed_for` (the repo-wide worker-seed
derivation).  Same seed, same workers → byte-for-byte the same request
sequence per worker; only the timings vary with the hardware.

Results are written as an append-only ``BENCH_*.json`` artifact (schema
``repro.bench/v1``) whose ``loadtest`` section carries throughput,
p50/p95/p99 latency, and error rate next to the standard per-repeat
timing vectors — so ``repro-bench compare`` and the report's bench-trend
section pick the service numbers up like any other benchmark.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from typing import Any

from ..parallel.sweep import seed_for
from ..obs.bench import BenchResult, build_artifact
from .slo import percentile

__all__ = ["MixGenerator", "LoadTestResult", "run_loadtest", "loadtest_artifact"]


def _connect(host: str, port: int, timeout: float = 10.0) -> HTTPConnection:
    """Keep-alive connection with Nagle off (mirrors the server side —
    request headers and body are separate writes too)."""
    conn = HTTPConnection(host, port, timeout=timeout)
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn

# Quantized parameter menus: coarse enough that a small `distinct` pool
# revisits cache-friendly inputs, wide enough to exercise the planner.
_ARRIVALS = (5.0, 10.0, 20.0, 40.0, 80.0)
_CPU_RATES = (1.0, 2.0, 4.0)
_DISK_RATES = (2.0, 4.0, 8.0)
_LOSS_TARGETS = (0.01, 0.02, 0.05)


class MixGenerator:
    """Pre-generated pool of deployment request bodies, fixed by seed."""

    def __init__(self, seed: int, distinct: int = 64) -> None:
        if distinct < 1:
            raise ValueError(f"distinct must be >= 1, got {distinct}")
        self.seed = int(seed)
        rng = random.Random(self.seed)
        self.bodies: tuple[bytes, ...] = tuple(
            self._body(rng) for _ in range(int(distinct))
        )

    @staticmethod
    def _body(rng: random.Random) -> bytes:
        services = []
        for i in range(rng.randint(1, 3)):
            rates: dict[str, float] = {"cpu": rng.choice(_CPU_RATES)}
            if rng.random() < 0.5:
                rates["disk_io"] = rng.choice(_DISK_RATES)
            services.append({
                "name": f"svc{i}",
                "arrival_rate": rng.choice(_ARRIVALS),
                "service_rates": rates,
            })
        doc = {
            "services": services,
            "loss_probability": rng.choice(_LOSS_TARGETS),
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    def body(self, index: int) -> bytes:
        return self.bodies[index % len(self.bodies)]

    def __len__(self) -> int:
        return len(self.bodies)


@dataclass
class LoadTestResult:
    """Merged outcome of one load-test run."""

    url: str
    seed: int
    workers: int
    distinct: int
    duration_s: float
    requests: int = 0
    errors: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def percentiles_ms(self) -> dict[str, float | None]:
        ordered = sorted(s * 1000.0 for s in self.latencies_s)
        out: dict[str, float | None] = {}
        for name, q in (("p50_ms", 50.0), ("p95_ms", 95.0), ("p99_ms", 99.0)):
            value = percentile(ordered, q) if ordered else None
            out[name] = round(value, 3) if value is not None else None
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "seed": self.seed,
            "workers": self.workers,
            "distinct_bodies": self.distinct,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            **self.percentiles_ms(),
        }


class _Worker(threading.Thread):
    """One closed-loop client with its own connection and index stream."""

    def __init__(
        self,
        host: str,
        port: int,
        mix: MixGenerator,
        seed: int,
        deadline: float | None,
        max_requests: int | None,
    ) -> None:
        super().__init__(daemon=True)
        self._host, self._port = host, port
        self._mix = mix
        self._rng = random.Random(seed)
        self._deadline = deadline
        self._max_requests = max_requests
        self.latencies_s: list[float] = []
        self.errors = 0

    def run(self) -> None:
        conn = _connect(self._host, self._port)
        try:
            while True:
                if self._deadline is not None and time.monotonic() >= self._deadline:
                    return
                if (
                    self._max_requests is not None
                    and len(self.latencies_s) >= self._max_requests
                ):
                    return
                body = self._mix.body(self._rng.randrange(len(self._mix)))
                start = time.perf_counter()
                try:
                    conn.request(
                        "POST",
                        "/plan",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                except (HTTPException, OSError):
                    # Count it, then start a fresh connection: a dropped
                    # keep-alive socket must not kill the whole worker.
                    self.errors += 1
                    self.latencies_s.append(time.perf_counter() - start)
                    conn.close()
                    conn = _connect(self._host, self._port)
                    continue
                self.latencies_s.append(time.perf_counter() - start)
                if status >= 400:
                    self.errors += 1
        finally:
            conn.close()


def run_loadtest(
    host: str,
    port: int,
    *,
    seed: int,
    workers: int = 4,
    duration_s: float | None = None,
    total_requests: int | None = None,
    distinct: int = 64,
    warmup: bool = True,
) -> LoadTestResult:
    """Drive the service; returns merged latencies and counts.

    Exactly one of ``duration_s`` / ``total_requests`` must be given
    (``total_requests`` is split evenly across workers).  With
    ``warmup=True`` every distinct body is sent once first, excluded
    from the recorded numbers — the acceptance throughput/latency
    figures are defined against a warm plan cache.
    """
    if (duration_s is None) == (total_requests is None):
        raise ValueError("give exactly one of duration_s or total_requests")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    mix = MixGenerator(seed, distinct=distinct)
    if warmup:
        conn = _connect(host, port, timeout=30.0)
        try:
            for body in mix.bodies:
                conn.request(
                    "POST", "/plan", body=body,
                    headers={"Content-Type": "application/json"},
                )
                conn.getresponse().read()
        finally:
            conn.close()
    deadline = None
    per_worker = None
    if duration_s is not None:
        deadline = time.monotonic() + duration_s
    else:
        per_worker = max(1, total_requests // workers)
    threads = [
        _Worker(host, port, mix, seed_for(seed, i), deadline, per_worker)
        for i in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    result = LoadTestResult(
        url=f"http://{host}:{port}",
        seed=seed,
        workers=workers,
        distinct=len(mix),
        duration_s=elapsed,
    )
    for thread in threads:
        result.latencies_s.extend(thread.latencies_s)
        result.errors += thread.errors
    result.requests = len(result.latencies_s)
    return result


def loadtest_artifact(result: LoadTestResult) -> dict[str, Any]:
    """``repro.bench/v1`` document with a ``loadtest`` summary section."""
    bench = BenchResult(
        name="service::plan",
        group="service",
        source="loadtest",
        wall_s=list(result.latencies_s),
        cpu_s=[],
        iterations=1,
        ok=result.requests > 0 and result.errors == 0,
        error=None if result.errors == 0 else f"{result.errors} failed request(s)",
    )
    doc = build_artifact(
        [bench],
        warmup=result.distinct,
        repeats=result.requests,
        selection=["loadtest"],
    )
    doc["loadtest"] = result.summary()
    return doc
