"""Structured JSONL access log for the planner service.

One document per line, schema ``repro.access/v1``.  Two kinds share the
stream so a single file tells the whole operational story:

- ``kind="request"`` — one per finished HTTP request: propagated request
  id, method/path/endpoint, status, latency, body sizes, and the elapsed
  service time offset (``t``, seconds since server start) the report
  timeline buckets on;
- ``kind="alarm"`` — SLO burn-rate transitions (and open-at-exit
  records), copied from :class:`~repro.obs.alarms.AlarmEvent` documents,
  so the report can draw alarm markers over the latency timeline without
  a second artifact.

Writes are line-atomic under a lock; ``repro-report`` loads the file
back with :func:`load_access_log`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLog",
    "NullAccessLog",
    "load_access_log",
]

ACCESS_SCHEMA = "repro.access/v1"

_REQUEST_FIELDS = (
    ("request_id", str),
    ("method", str),
    ("path", str),
    ("endpoint", str),
    ("status", int),
    ("latency_ms", (int, float)),
    ("t", (int, float)),
)


class AccessLog:
    """Append-only JSONL writer; safe for concurrent handler threads."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self.written = 0

    def log_request(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        endpoint: str,
        status: int,
        latency_ms: float,
        t: float,
        bytes_in: int = 0,
        bytes_out: int = 0,
    ) -> None:
        self._write({
            "schema": ACCESS_SCHEMA,
            "kind": "request",
            "request_id": request_id,
            "method": method,
            "path": path,
            "endpoint": endpoint,
            "status": int(status),
            "latency_ms": round(float(latency_ms), 3),
            "t": round(float(t), 3),
            "bytes_in": int(bytes_in),
            "bytes_out": int(bytes_out),
        })

    def log_alarm(self, alarm_doc: dict[str, Any]) -> None:
        """Record an alarm document (from ``AlarmEvent.to_doc()``)."""
        doc = dict(alarm_doc)
        doc["schema"] = ACCESS_SCHEMA
        doc["kind"] = "alarm"
        self._write(doc)

    def _write(self, doc: dict[str, Any]) -> None:
        line = json.dumps(doc, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self.written += 1

    def flush(self) -> None:
        with self._lock:
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class NullAccessLog:
    """Inert stand-in when no ``--access-log`` path was given."""

    path = None
    written = 0

    def log_request(self, **fields: Any) -> None:
        pass

    def log_alarm(self, alarm_doc: dict[str, Any]) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def load_access_log(path: str | Path) -> tuple[list[dict], list[dict]]:
    """Load and validate an access log; returns ``(requests, alarms)``.

    Raises ``ValueError`` on documents that do not carry the schema or
    are missing required request fields — truncated lines are reported
    with their line number so a partially-flushed log fails loudly.
    """
    requests: list[dict] = []
    alarms: list[dict] = []
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if doc.get("schema") != ACCESS_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: expected schema {ACCESS_SCHEMA!r}, "
                    f"got {doc.get('schema')!r}"
                )
            kind = doc.get("kind")
            if kind == "request":
                for field, types in _REQUEST_FIELDS:
                    if not isinstance(doc.get(field), types):
                        raise ValueError(
                            f"{path}:{lineno}: request document field "
                            f"{field!r} missing or mistyped"
                        )
                requests.append(doc)
            elif kind == "alarm":
                alarms.append(doc)
            else:
                raise ValueError(f"{path}:{lineno}: unknown document kind {kind!r}")
    return requests, alarms
