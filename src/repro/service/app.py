"""HTTP-agnostic request handling for the planner service.

:class:`PlannerApp` is the whole service minus the sockets: it maps
``(method, path, body, headers)`` to a :class:`Response`, so unit tests
drive it by direct invocation and the socket layer
(:mod:`repro.service.server`) stays a thin adapter.  Endpoints:

- ``POST /plan`` — deployment JSON in (same document ``repro-plan``
  reads, plus an optional top-level ``load_model``), full consolidation
  report out.  Responses are cached on the SHA-256 of the raw request
  body, which both guarantees byte-identical answers for identical
  requests and makes the warm-cache path allocation-light; the Erlang
  inversions underneath share the process-wide
  :func:`repro.parallel.cache.shared_cache`.
- ``GET /metrics`` — live Prometheus text exposition of the app's
  registry (request counters by endpoint/status, latency histograms,
  in-flight gauge, shared-cache counters, uptime).
- ``GET /healthz`` / ``GET /readyz`` — liveness vs readiness; readiness
  flips to 503 while draining or while the SLO error budget burns.
- ``GET /status`` — JSON snapshot: SLO attainment, cache stats, alarms.

Every request runs inside a trace span carrying a propagated
``X-Request-Id`` (honoured from the client or generated), is appended to
the structured access log, and — for ``/plan`` — feeds the
:class:`~repro.service.slo.SLOTracker`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..cli import DeploymentError, _build_report, _report_json, parse_deployment
from ..obs.export import PROMETHEUS_CONTENT_TYPE, prometheus_text
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceLog
from ..parallel.cache import record_cache_metrics, shared_cache
from .accesslog import NullAccessLog
from .slo import SLOTracker

__all__ = ["PlannerApp", "Response", "JSON_CONTENT_TYPE"]

JSON_CONTENT_TYPE = "application/json"

_LOAD_MODELS = ("paper", "offered")


@dataclass(frozen=True)
class Response:
    """What the socket layer writes back; body is final bytes."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE
    headers: tuple[tuple[str, str], ...] = field(default_factory=tuple)


def _json_response(status: int, doc: Mapping[str, Any]) -> Response:
    body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return Response(status=status, body=body + b"\n")


def _error_response(status: int, message: str, request_id: str) -> Response:
    """Structured error body: machine-readable, carries the request id."""
    return _json_response(
        status, {"error": {"status": status, "message": message}, "request_id": request_id}
    )


class PlannerApp:
    """The planner service's request handling, metrics, and SLO state."""

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        trace: TraceLog | None = None,
        slo: SLOTracker | None = None,
        access_log=None,
        plan_cache_size: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if plan_cache_size < 1:
            raise ValueError(f"plan_cache_size must be >= 1, got {plan_cache_size}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceLog()
        self.slo = slo if slo is not None else SLOTracker()
        self.access_log = access_log if access_log is not None else NullAccessLog()
        self._clock = clock
        self._t0 = clock()
        self.draining = False
        self._lock = threading.Lock()
        self._in_flight = 0
        self._request_seq = 0
        self._plan_cache: OrderedDict[bytes, Response] = OrderedDict()
        self._plan_cache_size = int(plan_cache_size)
        self._alarm_events: list = []
        self._last_alarm_poll = -1.0
        self._cache_baseline = shared_cache().stats()
        self._in_flight_gauge = self.registry.gauge(
            "service_in_flight_requests", help="requests currently being handled"
        )
        self._uptime_gauge = self.registry.gauge(
            "service_uptime_seconds", help="seconds since the app was constructed"
        )

    # -- plumbing --------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Requests currently inside :meth:`handle` (drain-wait signal)."""
        with self._lock:
            return self._in_flight

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def _next_request_id(self) -> str:
        with self._lock:
            self._request_seq += 1
            return f"req-{self._request_seq:08d}"

    def _plan_cache_get(self, key: bytes) -> Response | None:
        with self._lock:
            response = self._plan_cache.get(key)
            if response is not None:
                self._plan_cache.move_to_end(key)
            return response

    def _plan_cache_put(self, key: bytes, response: Response) -> None:
        with self._lock:
            self._plan_cache[key] = response
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self._plan_cache_size:
                self._plan_cache.popitem(last=False)

    def _poll_alarms(self, t: float, force: bool = False) -> None:
        """Publish fresh SLO alarm transitions (throttled to ~1/s: the
        alarm walk is O(recorded buckets) and must stay off the hot path)."""
        with self._lock:
            if not force and t - self._last_alarm_poll < 1.0:
                return
            self._last_alarm_poll = t
        for event in self.slo.evaluate_alarms():
            with self._lock:
                self._alarm_events.append(event)
            self.access_log.log_alarm(event.to_doc())

    # -- endpoints -------------------------------------------------------------

    def _endpoint(self, method: str, path: str) -> str:
        """Stable low-cardinality label for metrics (no raw client paths)."""
        if path in ("/plan", "/metrics", "/healthz", "/readyz", "/status"):
            return path
        return "other"

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        """One request to one response; never raises (500 on surprises)."""
        header_map = {k.lower(): v for k, v in (headers or {}).items()}
        request_id = header_map.get("x-request-id") or self._next_request_id()
        endpoint = self._endpoint(method, path)
        start = self._clock()
        t = start - self._t0
        with self._lock:
            self._in_flight += 1
        self._in_flight_gauge.inc()
        try:
            with self.trace.span(
                "service_request",
                request_id=request_id,
                method=method,
                path=path,
            ) as span:
                try:
                    response = self._route(method, path, body, request_id)
                except Exception as exc:  # pragma: no cover - defensive
                    self.trace.emit(
                        "service_internal_error",
                        kind="warning",
                        request_id=request_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    response = _error_response(500, "internal server error", request_id)
                span["status"] = response.status
        finally:
            with self._lock:
                self._in_flight -= 1
            self._in_flight_gauge.dec()
        latency = self._clock() - start
        self.registry.counter(
            "service_requests_total",
            help="handled requests by endpoint and status",
            labels={"endpoint": endpoint, "status": str(response.status)},
        ).inc()
        self.registry.histogram(
            "service_request_seconds",
            help="request latency by endpoint",
            labels={"endpoint": endpoint},
            start=1e-4,
            factor=4.0,
            buckets=12,
        ).observe(latency)
        if endpoint == "/plan":
            self.slo.record(response.status < 500, latency, t)
            self._poll_alarms(t)
        self.access_log.log_request(
            request_id=request_id,
            method=method,
            path=path,
            endpoint=endpoint,
            status=response.status,
            latency_ms=latency * 1000.0,
            t=t,
            bytes_in=len(body),
            bytes_out=len(response.body),
        )
        return Response(
            status=response.status,
            body=response.body,
            content_type=response.content_type,
            headers=response.headers + (("X-Request-Id", request_id),),
        )

    def _route(self, method: str, path: str, body: bytes, request_id: str) -> Response:
        if path == "/plan":
            if method != "POST":
                return _error_response(405, "use POST /plan", request_id)
            return self._plan(body, request_id)
        if method != "GET":
            return _error_response(405, f"use GET {path}", request_id)
        if path == "/metrics":
            return self._metrics()
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        if path == "/readyz":
            return self._readyz(request_id)
        if path == "/status":
            return self._status()
        return _error_response(404, f"no such endpoint {path!r}", request_id)

    def _plan(self, body: bytes, request_id: str) -> Response:
        key = hashlib.sha256(body).digest()
        cached = self._plan_cache_get(key)
        if cached is not None:
            self.registry.counter(
                "service_plan_cache_total",
                help="plan response-cache lookups",
                labels={"result": "hit"},
            ).inc()
            return cached
        self.registry.counter(
            "service_plan_cache_total",
            help="plan response-cache lookups",
            labels={"result": "miss"},
        ).inc()
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error_response(400, f"request body is not valid JSON: {exc}", request_id)
        if not isinstance(doc, dict):
            return _error_response(400, "request body must be a JSON object", request_id)
        load_model = doc.get("load_model", "paper")
        if load_model not in _LOAD_MODELS:
            return _error_response(
                400,
                f"load_model must be one of {_LOAD_MODELS}, got {load_model!r}",
                request_id,
            )
        try:
            inputs, targets, planner = parse_deployment(doc)
            report = _build_report(inputs, planner, load_model)
            out = _report_json(report, inputs, targets, load_model)
        except DeploymentError as exc:
            return _error_response(400, str(exc), request_id)
        except ValueError as exc:
            return _error_response(400, f"unsolvable deployment: {exc}", request_id)
        response = _json_response(200, out)
        self._plan_cache_put(key, response)
        return response

    def _metrics(self) -> Response:
        self._refresh_gauges()
        self._poll_alarms(self.elapsed(), force=True)
        text = prometheus_text(self.registry)
        return Response(status=200, body=text.encode("utf-8"), content_type=PROMETHEUS_CONTENT_TYPE)

    def _readyz(self, request_id: str) -> Response:
        self._poll_alarms(self.elapsed(), force=True)
        if self.draining:
            return _error_response(503, "draining", request_id)
        if not self.slo.ready:
            return _error_response(503, "SLO error budget burning", request_id)
        return _json_response(200, {"status": "ready"})

    def _status(self) -> Response:
        self._refresh_gauges()
        self._poll_alarms(self.elapsed(), force=True)
        with self._lock:
            # Exclude this /status request from its own snapshot.
            in_flight = max(0, self._in_flight - 1)
            plan_cache_entries = len(self._plan_cache)
            alarm_events = list(self._alarm_events)
        return _json_response(200, {
            "status": "draining" if self.draining else "serving",
            "uptime_s": round(self.elapsed(), 3),
            "in_flight": in_flight,
            "slo": self.slo.snapshot(),
            "plan_cache": {
                "entries": plan_cache_entries,
                "maxsize": self._plan_cache_size,
            },
            "erlang_cache": shared_cache().stats(),
            "alarms": self.slo.alarm_manager.summarize(alarm_events),
        })

    def _refresh_gauges(self) -> None:
        """Fold point-in-time state into the registry before a scrape."""
        self._uptime_gauge.set(self.elapsed())
        self.registry.gauge(
            "slo_burn_rate", help="error-budget burn rate over the SLO window"
        ).set(self.slo.burn_rate)
        with self._lock:
            baseline = self._cache_baseline
            stats = shared_cache().stats()
            self._cache_baseline = stats
        # Deltas accumulate across scrapes: total = now - construction time.
        record_cache_metrics(self.registry, baseline)

    # -- lifecycle -------------------------------------------------------------

    def finalize(self) -> list:
        """Flush operational state at shutdown; returns open alarms.

        Publishes any pending SLO alarm transitions, then the
        ``open_at_exit`` records for alarms that never cleared (both into
        the trace/registry *and* the access log), and flushes the log.
        """
        t = self.elapsed()
        self._poll_alarms(t, force=True)
        open_events = self.slo.finalize(t)
        for event in open_events:
            with self._lock:
                self._alarm_events.append(event)
            self.access_log.log_alarm(event.to_doc())
        self.access_log.flush()
        return open_events
