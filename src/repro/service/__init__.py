"""Capacity-planner-as-a-service: the paper's analysis behind HTTP.

The ROADMAP's open "capacity-planner-as-a-service" item: a long-running
stdlib-only threaded HTTP service (`repro-serve`) answering
"how many servers / what placement for this service mix" queries
(``POST /plan``) at high request rates, with first-class operational
telemetry — live Prometheus ``/metrics``, per-request trace spans and a
structured JSONL access log, SLO attainment + error-budget burn tracking
wired into the shared alarm vocabulary, and a deterministic closed-loop
load-test client writing append-only ``BENCH_*.json`` artifacts.

Layering: :mod:`.app` is the socket-free request core (unit-testable by
direct invocation), :mod:`.server` the ``http.server`` adapter and CLI,
:mod:`.slo` and :mod:`.accesslog` the operational state, and
:mod:`.loadtest` the client.
"""

from .accesslog import ACCESS_SCHEMA, AccessLog, NullAccessLog, load_access_log
from .app import JSON_CONTENT_TYPE, PlannerApp, Response
from .loadtest import LoadTestResult, MixGenerator, loadtest_artifact, run_loadtest
from .server import PlannerServer
from .slo import SLOTracker, percentile

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLog",
    "NullAccessLog",
    "load_access_log",
    "JSON_CONTENT_TYPE",
    "PlannerApp",
    "Response",
    "LoadTestResult",
    "MixGenerator",
    "loadtest_artifact",
    "run_loadtest",
    "PlannerServer",
    "SLOTracker",
    "percentile",
]
