"""`repro-serve`: threaded HTTP front end for :class:`PlannerApp`.

Stdlib only: :class:`http.server.ThreadingHTTPServer` dispatches each
connection to a handler thread; all shared state (metrics registry, SLO
tracker, plan response cache, the process-wide Erlang cache) lives in
one :class:`~repro.service.app.PlannerApp` and is lock-protected there —
see DESIGN.md, "Planner service threading model".

Shutdown contract (exercised by CI): SIGTERM or SIGINT stops accepting
connections, drains in-flight requests up to ``--drain-deadline``
seconds, records open SLO alarms, flushes the access log, writes the
final metrics snapshot and ``run_manifest.json``, and exits 0.  Startup
or teardown failures (unbindable port, unwritable output path) exit 2
with a one-line ``error:`` message — the repro-report/repro-fleet
convention.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Sequence

from ..obs.export import build_manifest, write_manifest, write_prometheus
from .accesslog import AccessLog, NullAccessLog
from .app import PlannerApp, Response
from .slo import SLOTracker

__all__ = ["PlannerServer", "main"]

_MAX_BODY_BYTES = 4 * 1024 * 1024  # reject absurd request bodies early


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: socket I/O in, ``app.handle`` out."""

    # Keep-alive needs HTTP/1.1 + explicit Content-Length (we always set
    # one), which is what lets closed-loop loadtest workers reuse sockets.
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Headers and body go out as separate small writes; with Nagle on,
    # the body segment waits out the client's delayed ACK (~40 ms per
    # request on Linux loopback) — fatal for a <50 ms p99 target.
    disable_nagle_algorithm = True

    def _respond(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for key, value in response.headers:
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            # The unread body would be misparsed as the next request, so the
            # connection cannot be kept alive after an early 413.
            self.close_connection = True
            self._respond(Response(status=413, body=b'{"error":"body too large"}\n'))
            return
        body = self.rfile.read(length) if length else b""
        response = self.server.app.handle(method, self.path, body, dict(self.headers))
        self._respond(response)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def log_message(self, format: str, *args) -> None:
        # The structured JSONL access log replaces stderr chatter.
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    app: PlannerApp


class PlannerServer:
    """Owns the listening socket and the serve/drain lifecycle."""

    def __init__(self, app: PlannerApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self._httpd = _Server((host, port), _Handler)
        self._httpd.app = app
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (returns once listening)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.05)

    def drain(self, deadline_s: float = 5.0) -> bool:
        """Stop accepting, wait for in-flight requests; True when drained."""
        self.app.draining = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=deadline_s)
        limit = time.monotonic() + deadline_s
        while self.app.in_flight > 0 and time.monotonic() < limit:
            time.sleep(0.01)
        return self.app.in_flight == 0

    def close(self) -> None:
        self._httpd.server_close()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the consolidation planner over HTTP "
        "(POST /plan, GET /metrics, /healthz, /readyz, /status).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks an ephemeral port (default %(default)s)",
    )
    parser.add_argument(
        "--port-file", metavar="FILE",
        help="write the bound port number to FILE once listening "
        "(lets scripts discover an ephemeral --port 0)",
    )
    parser.add_argument(
        "--access-log", metavar="FILE",
        help="append structured request/alarm JSONL (schema repro.access/v1) to FILE",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write a final Prometheus text snapshot to FILE at shutdown",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR",
        help="write run_manifest.json (with open-alarm records) to DIR at shutdown",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=50.0,
        help="target p99 plan latency in milliseconds (default %(default)s)",
    )
    parser.add_argument(
        "--slo-availability", type=float, default=0.999,
        help="availability target for the plan error budget (default %(default)s)",
    )
    parser.add_argument(
        "--burn-threshold", type=float, default=2.0,
        help="error-budget burn rate that flips /readyz (default %(default)s)",
    )
    parser.add_argument(
        "--burn-clear", type=float, default=1.0,
        help="burn rate below which readiness recovers (default %(default)s)",
    )
    parser.add_argument(
        "--drain-deadline", type=float, default=5.0,
        help="seconds to wait for in-flight requests at shutdown (default %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        slo = SLOTracker(
            target_p99_ms=args.slo_p99_ms,
            availability_target=args.slo_availability,
            burn_threshold=args.burn_threshold,
            burn_clear=args.burn_clear,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        access_log = AccessLog(args.access_log) if args.access_log else NullAccessLog()
    except OSError as exc:
        print(f"error: cannot open access log {args.access_log!r}: {exc}", file=sys.stderr)
        return 2
    app = PlannerApp(slo=slo, access_log=access_log)
    try:
        server = PlannerServer(app, host=args.host, port=args.port)
    except OSError as exc:
        access_log.close()
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    if args.port_file:
        try:
            port_path = Path(args.port_file)
            port_path.parent.mkdir(parents=True, exist_ok=True)
            port_path.write_text(f"{server.port}\n")
        except OSError as exc:
            server.close()
            access_log.close()
            print(f"error: cannot write port file {args.port_file!r}: {exc}", file=sys.stderr)
            return 2

    stop = threading.Event()
    signals_seen: list[int] = []

    def _stop(signum, frame) -> None:
        signals_seen.append(signum)
        stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)

    t_start = time.perf_counter()
    server.start()
    print(f"listening on {server.url}", file=sys.stderr)
    stop.wait()
    signame = signal.Signals(signals_seen[0]).name if signals_seen else "stop"
    print(f"{signame}: draining (deadline {args.drain_deadline:g}s)", file=sys.stderr)
    drained = server.drain(deadline_s=args.drain_deadline)
    if not drained:
        print(
            f"warning: {app.in_flight} request(s) still in flight at deadline",
            file=sys.stderr,
        )
    open_alarms = app.finalize()
    server.close()
    wall_time = time.perf_counter() - t_start

    try:
        if args.metrics_out:
            write_prometheus(app.registry, args.metrics_out)
        if args.state_dir:
            Path(args.state_dir).mkdir(parents=True, exist_ok=True)
            write_prometheus(app.registry, Path(args.state_dir) / "metrics.prom")
            manifest = build_manifest(
                {
                    "command": "repro-serve",
                    "host": args.host,
                    "port": server.port,
                    "slo_p99_ms": args.slo_p99_ms,
                    "slo_availability": args.slo_availability,
                },
                wall_time_s=round(wall_time, 3),
                registry=app.registry,
                trace=app.trace,
                extra={
                    "service": {
                        "drained": drained,
                        "requests_logged": access_log.written,
                        "slo": slo.snapshot(),
                        "open_alarms": [e.to_doc() for e in open_alarms],
                    },
                },
            )
            write_manifest(manifest, Path(args.state_dir) / "run_manifest.json")
        access_log.close()
    except OSError as exc:
        print(f"error: cannot write shutdown artifacts: {exc}", file=sys.stderr)
        return 2
    print("shutdown complete", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
