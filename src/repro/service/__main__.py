"""``python -m repro.service`` — same entry point as ``repro-serve``."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
