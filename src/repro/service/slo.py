"""SLO tracking for the planner service: latency targets + error budget.

The tracker follows the SRE burn-rate formulation: with an availability
target ``A`` the error budget is ``1 - A``; the **burn rate** is the
observed error fraction over a rolling request window divided by that
budget.  A burn rate of 1.0 spends the budget exactly as fast as the SLO
allows; sustained rates above ``burn_threshold`` flip the tracker into a
*burning* state (after ``debounce`` consecutive breaches, with a
hysteresis ``burn_clear`` threshold on the way out — the same two
anti-flap guards :class:`~repro.obs.alarms.AlarmRule` uses).  The service
surfaces the burning state through ``GET /readyz`` so load balancers shed
traffic while the budget is being spent too fast.

The burn-rate signal is also recorded on a real-time
:class:`~repro.obs.timeseries.TelemetryBus` gauge (bucketed on elapsed
seconds since tracker start) and evaluated by the existing
:class:`~repro.obs.alarms.AlarmManager`, so SLO incidents emit the same
``kind="alarm"`` trace events and ``alarms_total`` counters as the
simulation-side overload alarms — one alarm vocabulary across the repo.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any

from ..obs.alarms import AlarmEvent, AlarmManager, AlarmRule
from ..obs.timeseries import TelemetryBus

__all__ = ["SLOTracker", "percentile"]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (inclusive) over pre-sorted values.

    ``q`` is in [0, 100].  Empty input returns ``nan`` — an SLO snapshot
    taken before any traffic has no latency to report.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not sorted_values:
        return math.nan
    if q == 0.0:
        return sorted_values[0]
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


class SLOTracker:
    """Rolling-window SLO attainment + error-budget burn for one service.

    Thread-safe: handler threads call :meth:`record` concurrently.  Time
    is *elapsed seconds since tracker construction* supplied by the
    caller (the app layer uses a monotonic clock), which keeps the math
    deterministic under test — no hidden clock reads.
    """

    def __init__(
        self,
        *,
        target_p99_ms: float = 50.0,
        availability_target: float = 0.999,
        window: int = 2048,
        burn_threshold: float = 2.0,
        burn_clear: float = 1.0,
        debounce: int = 3,
        bucket_width: float = 1.0,
        max_buckets: int = 8192,
    ) -> None:
        if target_p99_ms <= 0.0:
            raise ValueError(f"target_p99_ms must be positive, got {target_p99_ms}")
        if not 0.0 < availability_target < 1.0:
            raise ValueError(
                f"availability_target must be in (0, 1), got {availability_target}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1 requests, got {window}")
        if burn_clear > burn_threshold:
            raise ValueError(
                f"burn_clear {burn_clear} must not exceed burn_threshold "
                f"{burn_threshold} (hysteresis clears on the safe side)"
            )
        if debounce < 1:
            raise ValueError(f"debounce must be >= 1, got {debounce}")
        self.target_p99_ms = float(target_p99_ms)
        self.availability_target = float(availability_target)
        self.error_budget = 1.0 - self.availability_target
        self.burn_threshold = float(burn_threshold)
        self.burn_clear = float(burn_clear)
        self.debounce = int(debounce)
        self._lock = threading.Lock()
        self._window: deque[tuple[bool, float]] = deque(maxlen=int(window))
        self._window_errors = 0
        self._total = 0
        self._errors = 0
        self._burning = False
        self._streak = 0
        self._last_t = 0.0
        self.bus = TelemetryBus(bucket_width=bucket_width, max_buckets=max_buckets)
        self._burn_gauge = self.bus.gauge("slo_burn_rate")
        self.alarm_manager = AlarmManager([
            AlarmRule(
                "slo-burn-rate",
                "slo_burn_rate",
                "overload",
                threshold=self.burn_threshold,
                clear=self.burn_clear,
                window=1,
                debounce=self.debounce,
            )
        ])
        self._alarms_emitted = 0

    # -- recording -------------------------------------------------------------

    def record(self, ok: bool, latency_s: float, t: float) -> None:
        """One finished request: success flag, latency, elapsed seconds."""
        with self._lock:
            if len(self._window) == self._window.maxlen:
                oldest_ok, _ = self._window[0]
                if not oldest_ok:
                    self._window_errors -= 1
            self._window.append((ok, latency_s * 1000.0))
            self._total += 1
            if not ok:
                self._window_errors += 1
                self._errors += 1
            burn = self._burn_rate_locked()
            # Gauge time must not run backwards; concurrent recorders may
            # observe interleaved clocks, so clamp to the furthest point.
            self._last_t = max(self._last_t, float(t))
            self._burn_gauge.set(self._last_t, burn)
            if not self._burning:
                self._streak = self._streak + 1 if burn >= self.burn_threshold else 0
                if self._streak >= self.debounce:
                    self._burning = True
                    self._streak = 0
            elif burn < self.burn_clear:
                self._burning = False

    def _burn_rate_locked(self) -> float:
        if not self._window:
            return 0.0
        error_fraction = self._window_errors / len(self._window)
        return error_fraction / self.error_budget

    # -- inspection ------------------------------------------------------------

    @property
    def burn_rate(self) -> float:
        with self._lock:
            return self._burn_rate_locked()

    @property
    def burning(self) -> bool:
        with self._lock:
            return self._burning

    @property
    def ready(self) -> bool:
        """False while the error budget is burning too fast."""
        return not self.burning

    def snapshot(self) -> dict[str, Any]:
        """JSON-able SLO attainment snapshot for ``GET /status``."""
        with self._lock:
            latencies = sorted(ms for _, ms in self._window)
            window_n = len(self._window)
            window_errors = self._window_errors
            burn = self._burn_rate_locked()
            burning = self._burning
            total, errors = self._total, self._errors
        p50 = percentile(latencies, 50.0)
        p95 = percentile(latencies, 95.0)
        p99 = percentile(latencies, 99.0)
        availability = 1.0 - window_errors / window_n if window_n else 1.0
        return {
            "target_p99_ms": self.target_p99_ms,
            "availability_target": self.availability_target,
            "window_requests": window_n,
            "window_errors": window_errors,
            "total_requests": total,
            "total_errors": errors,
            "p50_ms": None if math.isnan(p50) else round(p50, 3),
            "p95_ms": None if math.isnan(p95) else round(p95, 3),
            "p99_ms": None if math.isnan(p99) else round(p99, 3),
            "availability": round(availability, 6),
            "p99_met": bool(math.isnan(p99) or p99 <= self.target_p99_ms),
            "availability_met": availability >= self.availability_target,
            "burn_rate": round(burn, 4),
            "burning": burning,
            "ready": not burning,
        }

    # -- alarms ----------------------------------------------------------------

    def evaluate_alarms(self) -> list[AlarmEvent]:
        """Emit and return alarm transitions not yet published.

        The alarm walk is deterministic over the recorded gauge, so the
        event list grows append-only as traffic arrives; we remember how
        many were already emitted and publish only the suffix.  (A bus
        decimation can in principle merge away a short transition before
        it is polled — acceptable for an operational signal; the
        authoritative burning state lives in :meth:`record`.)
        """
        with self._lock:
            events = self.alarm_manager.evaluate(self.bus)
            fresh = events[self._alarms_emitted :]
            self._alarms_emitted = len(events)
        return self.alarm_manager.emit(fresh)

    def finalize(self, t: float) -> list[AlarmEvent]:
        """Close the gauge at shutdown; emit + return open-at-exit alarms."""
        with self._lock:
            self.bus.finalize(max(self._last_t, float(t)))
            open_events = self.alarm_manager.open_alarms(self.bus)
        return self.alarm_manager.emit(open_events)
