"""Input specification for the utility analytic model.

The model (paper Section III.B) consumes, per service ``i`` and resource
type ``j``:

- the mean Poisson arrival rate ``lambda_i`` of the service;
- the mean serving rate ``mu_ij`` of one *normalized* physical server's
  resource ``j`` for requests of service ``i``;
- the virtualization impact factor ``a_ij in (0, a_max]`` — the ratio of
  QoS delivered by VMs to QoS delivered by native Linux on resource ``j``
  (values above 1 are possible: the paper's Fig. 8 shows the DB service
  running *faster* on several VMs than on native Linux, because the single
  OS image is itself the bottleneck).

These are captured by :class:`ServiceSpec` and bundled with the target loss
probability ``B`` into :class:`ModelInputs`, which validates everything a
single time so the numerical code can stay assertion-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

__all__ = ["ResourceKind", "ServiceSpec", "ModelInputs", "UNLIMITED_RATE"]

#: Serving rate standing for "this service barely touches this resource"
#: (the paper's ``mu_di -> infinity`` for the DB service's disk demand).
UNLIMITED_RATE = math.inf


class ResourceKind(str, Enum):
    """Resource types tracked by the model.

    The paper's case study uses CPU and disk I/O; the model itself is
    agnostic, so additional kinds are provided for the extension benches.
    Assumption 3 of the paper: different kinds do not interact.
    """

    CPU = "cpu"
    DISK_IO = "disk_io"
    MEMORY = "memory"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ServiceSpec:
    """One Internet service offered to the data center.

    Parameters
    ----------
    name:
        Human-readable identifier ("web", "db", ...).
    arrival_rate:
        Mean Poisson arrival rate ``lambda_i`` (requests per second).
    service_rates:
        ``mu_ij``: mapping from resource kind to the mean rate at which one
        normalized physical server's resource ``j`` completes requests of
        this service.  Use :data:`UNLIMITED_RATE` for resources the service
        does not stress.
    impact_factors:
        ``a_ij``: virtualization impact factor per resource.  Missing
        resources default to 1.0 (no virtualization effect).
    """

    name: str
    arrival_rate: float
    service_rates: Mapping[ResourceKind, float]
    impact_factors: Mapping[ResourceKind, float] = field(default_factory=dict)

    #: Upper bound accepted for impact factors.  > 1 is legal (see module
    #: docstring) but wildly large values are almost certainly input bugs.
    MAX_IMPACT: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.arrival_rate < 0.0:
            raise ValueError(
                f"{self.name}: arrival rate must be non-negative, got {self.arrival_rate}"
            )
        if not self.service_rates:
            raise ValueError(f"{self.name}: at least one resource serving rate required")
        rates = dict(self.service_rates)
        for kind, mu in rates.items():
            if not isinstance(kind, ResourceKind):
                raise TypeError(f"{self.name}: resource keys must be ResourceKind, got {kind!r}")
            if mu <= 0.0:
                raise ValueError(f"{self.name}: mu[{kind}] must be positive, got {mu}")
        impacts = dict(self.impact_factors)
        for kind, a in impacts.items():
            if not isinstance(kind, ResourceKind):
                raise TypeError(f"{self.name}: impact keys must be ResourceKind, got {kind!r}")
            if not 0.0 < a <= self.MAX_IMPACT:
                raise ValueError(
                    f"{self.name}: impact factor a[{kind}] must lie in (0, "
                    f"{self.MAX_IMPACT}], got {a}"
                )
            if kind not in rates:
                raise ValueError(
                    f"{self.name}: impact factor given for {kind} but no serving rate"
                )
        object.__setattr__(self, "service_rates", rates)
        object.__setattr__(self, "impact_factors", impacts)

    @property
    def resources(self) -> frozenset[ResourceKind]:
        return frozenset(self.service_rates)

    def mu(self, resource: ResourceKind) -> float:
        """Serving rate of ``resource`` for this service; inf if untouched."""
        return self.service_rates.get(resource, UNLIMITED_RATE)

    def impact(self, resource: ResourceKind) -> float:
        """Impact factor ``a_ij``; 1.0 where unspecified."""
        return self.impact_factors.get(resource, 1.0)

    def effective_mu(self, resource: ResourceKind) -> float:
        """Virtualized serving rate ``mu_ij * a_ij``."""
        mu = self.mu(resource)
        if math.isinf(mu):
            return mu
        return mu * self.impact(resource)

    def offered_load(self, resource: ResourceKind) -> float:
        """Dedicated-scenario traffic ``rho_ij = lambda_i / mu_ij`` (Eq. 3)."""
        mu = self.mu(resource)
        if math.isinf(mu):
            return 0.0
        return self.arrival_rate / mu

    def with_arrival_rate(self, arrival_rate: float) -> "ServiceSpec":
        """Copy of this spec with a different workload intensity."""
        return ServiceSpec(
            name=self.name,
            arrival_rate=arrival_rate,
            service_rates=self.service_rates,
            impact_factors=self.impact_factors,
        )

    def with_impact_factors(
        self, impact_factors: Mapping[ResourceKind, float]
    ) -> "ServiceSpec":
        """Copy of this spec with substituted virtualization impact factors."""
        return ServiceSpec(
            name=self.name,
            arrival_rate=self.arrival_rate,
            service_rates=self.service_rates,
            impact_factors=impact_factors,
        )

    def without_virtualization_overhead(self) -> "ServiceSpec":
        """Copy with all ``a_ij = 1`` — the ideal-hypervisor counterfactual

        used by the model's second application (Section III.B.4(2)).
        """
        return self.with_impact_factors({})


@dataclass(frozen=True)
class ModelInputs:
    """Validated bundle of everything the Fig. 4 algorithm needs."""

    services: tuple[ServiceSpec, ...]
    loss_probability: float

    def __post_init__(self) -> None:
        services = tuple(self.services)
        if not services:
            raise ValueError("at least one service required")
        names = [s.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names: {names}")
        if not 0.0 < self.loss_probability < 1.0:
            raise ValueError(
                f"loss probability B must lie in (0, 1), got {self.loss_probability}"
            )
        object.__setattr__(self, "services", services)

    @property
    def resources(self) -> tuple[ResourceKind, ...]:
        """Union of resource kinds any service touches, in stable order."""
        seen: dict[ResourceKind, None] = {}
        for s in self.services:
            for kind in s.service_rates:
                seen.setdefault(kind, None)
        return tuple(seen)

    @property
    def total_arrival_rate(self) -> float:
        """Pooled arrival rate ``lambda = sum_i lambda_i`` (superposition)."""
        return sum(s.arrival_rate for s in self.services)

    def service(self, name: str) -> ServiceSpec:
        for s in self.services:
            if s.name == name:
                return s
        raise KeyError(f"no service named {name!r}")

    def consolidated_mu(self, resource: ResourceKind, mode: str = "paper") -> float:
        """Pooled serving rate ``mu'_j`` of resource ``j``.

        ``mode="paper"`` — the paper's Eq. (4), verbatim: the arithmetic
        arrival-weighted mixture of virtualized rates,

            mu'_j = sum_i (lambda_i * mu_ij * a_ij) / lambda.

        A request reaching the pool belongs to service ``i`` with
        probability ``lambda_i/lambda`` and is served at rate
        ``mu_ij * a_ij``.  When any service with traffic does not touch the
        resource (``mu_ij = inf`` — the paper's ``mu_di ~ inf`` for the DB
        service's disk demand), its term dominates and the mixture is
        infinite, i.e. the resource imposes no constraint.  This is what
        the paper's Table I computation does, and since arithmetic mean >=
        harmonic mean it makes the model *optimistic* about consolidation.

        ``mode="offered"`` — the queueing-theoretically conservative
        variant: the rate whose reciprocal is the mixture's mean *service
        time*, ``lambda / sum_i lambda_i/(mu_ij a_ij)`` (infinite-rate
        services contribute zero time).  The resulting load is exactly the
        sum of the per-service virtualized offered loads.  Exposed for the
        ablation comparing the two readings.
        """
        lam = self.total_arrival_rate
        if lam == 0.0:
            return UNLIMITED_RATE
        if mode == "paper":
            weighted = 0.0
            for s in self.services:
                if s.arrival_rate == 0.0:
                    continue
                mu_eff = s.effective_mu(resource)
                if math.isinf(mu_eff):
                    return UNLIMITED_RATE
                weighted += s.arrival_rate * mu_eff
            return weighted / lam if weighted > 0.0 else UNLIMITED_RATE
        if mode == "offered":
            total_time = 0.0
            for s in self.services:
                mu_eff = s.effective_mu(resource)
                if math.isinf(mu_eff):
                    continue
                total_time += s.arrival_rate / mu_eff
            if total_time == 0.0:
                return UNLIMITED_RATE
            return lam / total_time
        raise ValueError(f"unknown consolidation mode {mode!r} (paper|offered)")

    def consolidated_load(self, resource: ResourceKind, mode: str = "paper") -> float:
        """Pooled traffic ``rho'_j = lambda / mu'_j`` (paper Eq. 5).

        See :meth:`consolidated_mu` for the two readings of ``mu'_j``.
        """
        lam = self.total_arrival_rate
        mu = self.consolidated_mu(resource, mode)
        if lam == 0.0 or math.isinf(mu):
            return 0.0
        return lam / mu

    def without_virtualization_overhead(self) -> "ModelInputs":
        """All impact factors forced to 1 (ideal-hypervisor counterfactual)."""
        return ModelInputs(
            services=tuple(s.without_virtualization_overhead() for s in self.services),
            loss_probability=self.loss_probability,
        )

    def with_loss_probability(self, loss_probability: float) -> "ModelInputs":
        return ModelInputs(services=self.services, loss_probability=loss_probability)

    def scaled_workloads(self, factor: float) -> "ModelInputs":
        """All arrival rates multiplied by ``factor`` (workload sweeps)."""
        if factor < 0.0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return ModelInputs(
            services=tuple(
                s.with_arrival_rate(s.arrival_rate * factor) for s in self.services
            ),
            loss_probability=self.loss_probability,
        )
