"""Heterogeneous-server normalization (paper Section III.B.1 + future work).

The model's first assumption is homogeneous physical servers, justified by
normalization: "CPU of a server which has two 2.0GHz Quad-Core processors
can be normalized to 1, then CPU of a server which has one 2.0GHz Quad-Core
processor can be normalized to 0.5."  This module implements that
normalization — per-resource capacity vectors scaled against a reference
machine — and the fleet-level conversion the paper defers to future work:
mapping a heterogeneous inventory to an equivalent count of normalized
servers, and converting the model's normalized answer back into a concrete
packing of the real machines.

The paper's Section IV.D discussion (AMD vs Intel throughput differing 20%
at comparable clock rates) motivates *measured* rather than nameplate
capacities; :class:`ServerClass` therefore accepts an optional measured
throughput scale that overrides the spec-sheet ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .inputs import ResourceKind

__all__ = ["ServerClass", "HeterogeneousPool", "NormalizedPool"]


@dataclass(frozen=True)
class ServerClass:
    """One hardware model present in the inventory.

    ``capacities`` are raw per-resource capability numbers in any consistent
    unit (core-GHz for CPU, MB/s for disk, ...).  ``measured_scale``
    optionally replaces the spec-derived ratio with a benchmark-derived one
    (the paper's AMD-vs-Intel observation: spec ratios can be off by 20%).
    """

    name: str
    capacities: Mapping[ResourceKind, float]
    count: int = 1
    measured_scale: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server class name must be non-empty")
        if self.count < 0:
            raise ValueError(f"{self.name}: count must be non-negative, got {self.count}")
        caps = dict(self.capacities)
        if not caps:
            raise ValueError(f"{self.name}: at least one capacity entry required")
        for kind, cap in caps.items():
            if not isinstance(kind, ResourceKind):
                raise TypeError(f"{self.name}: capacity keys must be ResourceKind")
            if cap <= 0.0:
                raise ValueError(f"{self.name}: capacity[{kind}] must be positive")
        if self.measured_scale is not None and self.measured_scale <= 0.0:
            raise ValueError(f"{self.name}: measured_scale must be positive")
        object.__setattr__(self, "capacities", caps)

    def normalized_capacity(
        self, reference: "ServerClass", resource: ResourceKind
    ) -> float:
        """This class's resource capability in units of the reference machine."""
        if self.measured_scale is not None:
            return self.measured_scale
        ref_cap = reference.capacities.get(resource)
        own_cap = self.capacities.get(resource)
        if ref_cap is None:
            raise KeyError(f"reference class lacks capacity for {resource}")
        if own_cap is None:
            return 0.0
        return own_cap / ref_cap

    def normalized_bottleneck(self, reference: "ServerClass") -> float:
        """Conservative scalar equivalence: the *weakest* resource ratio.

        A machine is only as useful as its scarcest resource relative to the
        reference, so sizing with the min ratio never over-promises.
        """
        ratios = [
            self.normalized_capacity(reference, r) for r in reference.capacities
        ]
        return min(ratios) if ratios else 0.0


@dataclass(frozen=True)
class NormalizedPool:
    """Result of normalizing a heterogeneous inventory."""

    reference: ServerClass
    equivalent_servers: float
    per_class_equivalents: Mapping[str, float]

    @property
    def whole_servers(self) -> int:
        """Usable whole normalized servers (floor — fractions cannot host)."""
        return math.floor(self.equivalent_servers + 1e-9)


class HeterogeneousPool:
    """A mixed inventory of physical servers.

    Provides the two directions the planner needs:

    - :meth:`normalize` — how many reference-equivalent servers the
      inventory amounts to (feed the model's homogeneous-world answer);
    - :meth:`pack` — given a demand of ``n`` normalized servers, pick a
      concrete multiset of real machines covering it, preferring the
      largest machines first (fewest boxes powered on).
    """

    def __init__(self, classes: Sequence[ServerClass], reference: ServerClass | None = None):
        if not classes:
            raise ValueError("at least one server class required")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate server class names: {names}")
        self.classes = tuple(classes)
        self.reference = reference or max(
            classes, key=lambda c: sum(c.capacities.values())
        )

    def normalize(self) -> NormalizedPool:
        """Total inventory expressed in reference-equivalent servers."""
        per_class: dict[str, float] = {}
        total = 0.0
        for cls in self.classes:
            eq = cls.normalized_bottleneck(self.reference) * cls.count
            per_class[cls.name] = eq
            total += eq
        return NormalizedPool(
            reference=self.reference,
            equivalent_servers=total,
            per_class_equivalents=per_class,
        )

    def can_supply(self, normalized_servers: float) -> bool:
        """Whether the inventory covers a demand of normalized servers."""
        return self.normalize().equivalent_servers + 1e-9 >= normalized_servers

    def pack(self, normalized_servers: float) -> dict[str, int]:
        """Greedy largest-first packing of a normalized-server demand.

        Returns ``{class name: machines to power on}``.  Greedy on the
        per-machine equivalence is within one machine of optimal for this
        one-dimensional covering problem, and matches how an operator would
        actually bring capacity online.
        """
        if normalized_servers < 0.0:
            raise ValueError(
                f"demand must be non-negative, got {normalized_servers}"
            )
        remaining = normalized_servers
        plan: dict[str, int] = {}
        ordered = sorted(
            self.classes,
            key=lambda c: c.normalized_bottleneck(self.reference),
            reverse=True,
        )
        for cls in ordered:
            if remaining <= 1e-9:
                break
            per_machine = cls.normalized_bottleneck(self.reference)
            if per_machine <= 0.0:
                continue
            take = min(cls.count, math.ceil(remaining / per_machine - 1e-9))
            if take > 0:
                plan[cls.name] = take
                remaining -= take * per_machine
        if remaining > 1e-9:
            raise ValueError(
                f"inventory cannot supply {normalized_servers} normalized servers "
                f"(short by {remaining:.3f})"
            )
        return plan
