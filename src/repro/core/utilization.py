"""Server-utilization analysis (paper Eqs. 8–11).

The paper observes that "most workloads are proportional to their demanded
resources" and evaluates average resource utilization as

    U = b * lambda / (mu * n)                                   (Eq. 8)

with an unknown proportionality constant ``b`` that cancels in every ratio
the model reports.  For the dedicated scenario the utilizations of the
per-service islands aggregate over the whole fleet of ``M`` machines
(Eq. 9); for the consolidated pool of ``N`` machines the pooled stream and
mixture rate apply (Eq. 10); and their ratio (Eq. 11) is the model's
prediction for the "CPU utilization improves 1.7x" style headline claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from .inputs import ModelInputs, ResourceKind
from .model import ConsolidationSolution

__all__ = ["ResourceUtilization", "UtilizationReport", "utilization_report"]


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilization of one resource kind under both scenarios.

    Values are reported with ``b = 1``; only ratios are meaningful, exactly
    as in the paper (Eq. 11 notes the exact value of ``b`` has no impact).
    """

    resource: ResourceKind
    dedicated: float
    consolidated: float

    @property
    def improvement(self) -> float:
        """``U_N / U_M`` — how much busier the consolidated pool runs.

        ``inf`` when the dedicated fleet never touches the resource.
        """
        if self.dedicated == 0.0:
            return math.inf if self.consolidated > 0.0 else 1.0
        return self.consolidated / self.dedicated


@dataclass(frozen=True)
class UtilizationReport:
    """Per-resource utilizations plus the paper's scalar ratio."""

    per_resource: tuple[ResourceUtilization, ...]
    dedicated_servers: int
    consolidated_servers: int

    def resource(self, kind: ResourceKind) -> ResourceUtilization:
        for r in self.per_resource:
            if r.resource == kind:
                return r
        raise KeyError(f"no utilization entry for {kind}")

    @property
    def bottleneck_improvement(self) -> float:
        """Improvement on the resource that is busiest in the dedicated fleet.

        This matches how the paper reports "1.7 times higher CPU
        utilization": CPU is the dedicated fleet's dominant resource in the
        case study.
        """
        busiest = max(self.per_resource, key=lambda r: r.dedicated)
        return busiest.improvement

    @property
    def mean_improvement(self) -> float:
        """Unweighted mean of the finite per-resource improvements."""
        finite = [r.improvement for r in self.per_resource if math.isfinite(r.improvement)]
        if not finite:
            return 1.0
        return sum(finite) / len(finite)


def utilization_report(solution: ConsolidationSolution) -> UtilizationReport:
    """Evaluate Eqs. 8–11 on a solved consolidation.

    Dedicated (Eq. 9): resource ``j`` of the whole fleet averages

        U_M^j = sum_i (lambda_i / mu_ij) / M = sum_i rho_ij / M

    — i.e. the total dedicated offered load on ``j`` spread over all ``M``
    machines (machines hosting a service that does not touch ``j``
    contribute idle capacity, which is precisely the waste consolidation
    reclaims).

    Consolidated (Eq. 10): ``U_N^j = lambda / (mu'_j * N)``.  For ``mu'_j``
    we deliberately use the *offered-load* reading (the mixture's mean
    service time, i.e. ``sum_i lambda_i/(mu_ij a_ij)``) rather than the
    Eq. 4 arithmetic mixture: utilization is *busy time*, which is exactly
    the summed virtualized service time — this is the quantity a ``top`` or
    power meter on the consolidated fleet observes, and what the
    data-center simulation measures.  (The Eq. 4 mixture is the right tool
    for the *sizing* question but understates busy time whenever services'
    rates differ; see the ablation bench.)
    """
    inputs: ModelInputs = solution.inputs
    m = solution.dedicated_servers
    n = solution.consolidated_servers
    entries = []
    for resource in inputs.resources:
        dedicated_load = sum(s.offered_load(resource) for s in inputs.services)
        dedicated_util = dedicated_load / m if m > 0 else 0.0
        consolidated_util = (
            inputs.consolidated_load(resource, mode="offered") / n if n > 0 else 0.0
        )
        entries.append(
            ResourceUtilization(
                resource=resource,
                dedicated=dedicated_util,
                consolidated=consolidated_util,
            )
        )
    return UtilizationReport(
        per_resource=tuple(entries),
        dedicated_servers=m,
        consolidated_servers=n,
    )
