"""Applications of the utility analytic model (paper Section III.B.4).

The model is not only a sizing tool; fixing the server count and comparing
achieved loss probabilities turns it into a yardstick:

1. **Evaluating on-demand resource allocation algorithms** — give the
   consolidated pool exactly as many machines as the dedicated fleet
   (``M = N``) and compare throughputs ``(1 - B)``.  The ratio
   ``(1-B_consolidated)/(1-B_dedicated)`` is the *optimal* QoS improvement
   any resource-flowing algorithm could deliver (the model assumes perfect,
   zero-overhead flowing); a real algorithm is judged by how closely it
   approaches this bound.

2. **Evaluating virtualization products** — additionally force every impact
   factor ``a_ij = 1``.  The resulting bound is what an *ideal* hypervisor
   (zero overhead) would permit; the gap between bound (1) and bound (2)
   is the QoS price of the hypervisor itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from .inputs import ModelInputs
from .model import UtilityAnalyticModel

__all__ = [
    "QosBound",
    "allocation_algorithm_bound",
    "virtualization_bound",
    "allocation_algorithm_score",
]


@dataclass(frozen=True)
class QosBound:
    """Throughput bound produced by an equal-server-count comparison."""

    servers: int
    dedicated_loss: float
    consolidated_loss: float

    @property
    def dedicated_goodput(self) -> float:
        """``1 - B`` in the dedicated fleet."""
        return 1.0 - self.dedicated_loss

    @property
    def consolidated_goodput(self) -> float:
        return 1.0 - self.consolidated_loss

    @property
    def improvement(self) -> float:
        """Optimal QoS (throughput) improvement ratio.

        ``(1 - B_N) / (1 - B_M)`` at equal server counts: > 1 means pooling
        capability across services can serve a larger request fraction than
        static dedication ever could.
        """
        if self.dedicated_goodput == 0.0:
            return float("inf") if self.consolidated_goodput > 0.0 else 1.0
        return self.consolidated_goodput / self.dedicated_goodput


def _equal_server_bound(inputs: ModelInputs, servers: int | None) -> QosBound:
    model = UtilityAnalyticModel(inputs)
    solution = model.solve()
    if servers is None:
        # The interesting regime for "let M equal N" is the *consolidated*
        # sizing: giving the dedicated islands only N machines exposes how
        # much QoS capability flowing buys back.  (At the dedicated M both
        # deployments block negligibly and the ratio degenerates to ~1.)
        servers = solution.consolidated_servers
    if servers <= 0:
        raise ValueError(f"servers must be positive, got {servers}")
    # Dedicated: split the fleet exactly as the Fig. 4 sizing would, i.e.
    # each service keeps its own island.  With `servers` total we allocate
    # proportionally to the per-service requirement, preserving integrality.
    m_total = solution.dedicated_servers
    worst_dedicated = 0.0
    from ..queueing.erlang import erlang_b  # local import to avoid cycle at module load

    for sizing in solution.dedicated:
        if m_total > 0:
            share = max(1, round(servers * sizing.servers / m_total))
        else:
            share = servers
        for resource, rho in sizing.per_resource_load.items():
            worst_dedicated = max(worst_dedicated, erlang_b(share, rho))
    consolidated = model.blocking_with_servers(servers, consolidated=True)
    return QosBound(
        servers=servers,
        dedicated_loss=worst_dedicated,
        consolidated_loss=consolidated,
    )


def allocation_algorithm_bound(
    inputs: ModelInputs, servers: int | None = None
) -> QosBound:
    """Application (1): bound for on-demand resource allocation algorithms.

    Uses the *measured* impact factors (virtualization overhead included):
    the bound reflects what perfect resource flowing achieves on the real
    hypervisor.  ``servers`` defaults to the model's own ``M``.
    """
    return _equal_server_bound(inputs, servers)


def virtualization_bound(inputs: ModelInputs, servers: int | None = None) -> QosBound:
    """Application (2): bound for virtualization products.

    All impact factors are forced to 1 — the consolidated pool behaves like
    native Linux with perfect capability flowing.  The returned improvement
    is the theoretical ceiling for any hypervisor.
    """
    return _equal_server_bound(inputs.without_virtualization_overhead(), servers)


def allocation_algorithm_score(
    measured_goodput_ratio: float, inputs: ModelInputs, servers: int | None = None
) -> float:
    """Score a real resource-flowing algorithm against the optimal bound.

    ``measured_goodput_ratio`` is the observed
    ``(1-B_consolidated)/(1-B_dedicated)`` of the algorithm under test.
    Returns the fraction of the model's optimal improvement the algorithm
    realises (1.0 = optimal; the paper: "the more close ... the better this
    resource allocation algorithm is").  Values slightly above 1 are
    clipped — they indicate measurement noise, not super-optimality.
    """
    if measured_goodput_ratio <= 0.0:
        raise ValueError(
            f"goodput ratio must be positive, got {measured_goodput_ratio}"
        )
    bound = allocation_algorithm_bound(inputs, servers)
    optimal = bound.improvement
    if optimal <= 1.0:
        # Consolidation offers no headroom; any non-degrading algorithm scores 1.
        return 1.0 if measured_goodput_ratio >= 1.0 else measured_goodput_ratio
    score = (measured_goodput_ratio - 1.0) / (optimal - 1.0)
    return min(1.0, max(0.0, score))
