"""Per-service QoS targets (the paper's "several QoS requirements").

The published model uses one loss probability ``B`` for everything, but
its introduction frames services as arriving "with several types of QoS
metrics".  This module generalises the Fig. 4 algorithm to a per-service
loss target ``B_i``:

- **dedicated** — each island is sized against its own ``B_i`` (straight
  generalisation, islands are independent);
- **consolidated** — all services share each resource's pool, and by PASTA
  every arrival sees the *same* per-resource blocking; resource ``j`` must
  therefore satisfy the *strictest* target among the services that load it:
  ``B_j^req = min_i { B_i : rho_ij > 0 }``.

The premium a tight-SLA service imposes on the shared pool (versus sizing
everyone at the laxest target) is reported explicitly — the quantity an
operator needs when deciding whether gold-tier services should share
infrastructure with best-effort ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..queueing.erlang import erlang_b, min_servers
from .inputs import ModelInputs, ResourceKind

__all__ = ["MultiQosSolution", "solve_with_targets"]


@dataclass(frozen=True)
class MultiQosSolution:
    """Sizing under per-service loss targets."""

    targets: Mapping[str, float]
    dedicated_per_service: Mapping[str, int]
    consolidated_per_resource: Mapping[ResourceKind, int]
    binding_service_per_resource: Mapping[ResourceKind, str]

    @property
    def dedicated_servers(self) -> int:
        return sum(self.dedicated_per_service.values())

    @property
    def consolidated_servers(self) -> int:
        return max(self.consolidated_per_resource.values(), default=0)

    def sla_premium(self, relaxed: "MultiQosSolution") -> int:
        """Extra consolidated machines versus a relaxed-targets sizing."""
        return self.consolidated_servers - relaxed.consolidated_servers


def solve_with_targets(
    inputs: ModelInputs,
    targets: Mapping[str, float],
    load_model: str = "paper",
) -> MultiQosSolution:
    """Generalised Fig. 4 with per-service loss targets.

    ``targets`` maps service name to its ``B_i``; services absent from the
    mapping use ``inputs.loss_probability``.  Unknown names are rejected.
    """
    known = {s.name for s in inputs.services}
    unknown = set(targets) - known
    if unknown:
        raise KeyError(f"targets for unknown services: {sorted(unknown)}")
    for name, b in targets.items():
        if not 0.0 < b < 1.0:
            raise ValueError(f"target for {name!r} must lie in (0, 1), got {b}")
    resolved = {
        s.name: targets.get(s.name, inputs.loss_probability)
        for s in inputs.services
    }

    dedicated = {}
    for service in inputs.services:
        b_i = resolved[service.name]
        counts = [
            min_servers(service.offered_load(resource), b_i)
            for resource in service.service_rates
        ]
        dedicated[service.name] = max(counts, default=0)

    consolidated: dict[ResourceKind, int] = {}
    binding: dict[ResourceKind, str] = {}
    for resource in inputs.resources:
        load = inputs.consolidated_load(resource, load_model)
        users = [
            s.name
            for s in inputs.services
            if s.arrival_rate > 0.0 and s.offered_load(resource) > 0.0
        ]
        if not users or load == 0.0:
            consolidated[resource] = 0
            binding[resource] = "-"
            continue
        strictest = min(users, key=lambda name: resolved[name])
        consolidated[resource] = min_servers(load, resolved[strictest])
        binding[resource] = strictest

    return MultiQosSolution(
        targets=dict(resolved),
        dedicated_per_service=dedicated,
        consolidated_per_resource=consolidated,
        binding_service_per_resource=binding,
    )
