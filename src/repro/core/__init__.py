"""The paper's primary contribution: the utility analytic model.

Public API:

- :class:`ServiceSpec`, :class:`ModelInputs`, :class:`ResourceKind` — model
  inputs (``lambda_i``, ``mu_ij``, ``a_ij``, ``B``);
- :class:`UtilityAnalyticModel` — the Fig. 4 algorithm (M, N);
- :func:`utilization_report` — Eqs. 8–11;
- :func:`power_comparison`, :class:`ServerPowerModel` — Eqs. 12–14;
- :func:`allocation_algorithm_bound`, :func:`virtualization_bound` — the
  Section III.B.4 applications;
- :class:`ConsolidationPlanner` — one-call planning front door;
- :class:`HeterogeneousPool` — server normalization (paper future work).
"""

from .applications import (
    QosBound,
    allocation_algorithm_bound,
    allocation_algorithm_score,
    virtualization_bound,
)
from .consolidation import ConsolidationPlanner, ConsolidationReport
from .dynamic import DynamicCapacityPlanner, DynamicPlan, PeriodPlan
from .heterogeneous import HeterogeneousPool, NormalizedPool, ServerClass
from .inputs import UNLIMITED_RATE, ModelInputs, ResourceKind, ServiceSpec
from .multiqos import MultiQosSolution, solve_with_targets
from .model import (
    ConsolidationSolution,
    DedicatedServiceSizing,
    UtilityAnalyticModel,
)
from .sensitivity import SensitivityEntry, SensitivityReport, sensitivity_report
from .power import PowerComparison, ServerPowerModel, power_comparison
from .utilization import ResourceUtilization, UtilizationReport, utilization_report

__all__ = [
    "ResourceKind",
    "ServiceSpec",
    "ModelInputs",
    "UNLIMITED_RATE",
    "UtilityAnalyticModel",
    "ConsolidationSolution",
    "DedicatedServiceSizing",
    "utilization_report",
    "UtilizationReport",
    "ResourceUtilization",
    "ServerPowerModel",
    "PowerComparison",
    "power_comparison",
    "QosBound",
    "allocation_algorithm_bound",
    "allocation_algorithm_score",
    "virtualization_bound",
    "ConsolidationPlanner",
    "ConsolidationReport",
    "DynamicCapacityPlanner",
    "DynamicPlan",
    "PeriodPlan",
    "MultiQosSolution",
    "solve_with_targets",
    "SensitivityEntry",
    "SensitivityReport",
    "sensitivity_report",
    "ServerClass",
    "HeterogeneousPool",
    "NormalizedPool",
]
