"""Sensitivity analysis of the consolidation plan to its inputs.

Every model input — arrival rates, serving rates, impact factors, the loss
target — is a measurement with error bars.  This module perturbs each one
by a relative delta and reports how the consolidated server count responds
(a tornado analysis), telling the operator which measurements are worth
refining before committing hardware.

The output orders parameters by their *swing*: the range of N across the
+/- perturbation.  Because N is integral, small perturbations often produce
zero swing — itself useful information (the plan is robust to that input).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .inputs import ModelInputs, ResourceKind, ServiceSpec
from .model import UtilityAnalyticModel

__all__ = ["SensitivityEntry", "SensitivityReport", "sensitivity_report"]


@dataclass(frozen=True)
class SensitivityEntry:
    """Response of N to one perturbed parameter."""

    parameter: str
    baseline: float
    n_low: int     # N with the parameter scaled by (1 - delta)
    n_high: int    # N with the parameter scaled by (1 + delta)

    @property
    def swing(self) -> int:
        return abs(self.n_high - self.n_low)

    @property
    def direction(self) -> str:
        """Whether raising the parameter raises, lowers or leaves N."""
        if self.n_high > self.n_low:
            return "increases"
        if self.n_high < self.n_low:
            return "decreases"
        return "none"


@dataclass(frozen=True)
class SensitivityReport:
    """All entries, most influential first."""

    baseline_n: int
    delta: float
    entries: tuple[SensitivityEntry, ...]

    def entry(self, parameter: str) -> SensitivityEntry:
        for e in self.entries:
            if e.parameter == parameter:
                return e
        raise KeyError(f"no parameter named {parameter!r}")

    @property
    def robust_parameters(self) -> tuple[str, ...]:
        return tuple(e.parameter for e in self.entries if e.swing == 0)

    def rows(self) -> list[dict]:
        return [
            {
                "parameter": e.parameter,
                "baseline": e.baseline,
                "N_minus": e.n_low,
                "N_plus": e.n_high,
                "swing": e.swing,
                "raising_it": e.direction,
            }
            for e in self.entries
        ]


def _rebuild_service(
    service: ServiceSpec,
    arrival_rate: float | None = None,
    mu_override: tuple[ResourceKind, float] | None = None,
    impact_override: tuple[ResourceKind, float] | None = None,
) -> ServiceSpec:
    rates = dict(service.service_rates)
    impacts = dict(service.impact_factors)
    if mu_override is not None:
        rates[mu_override[0]] = mu_override[1]
    if impact_override is not None:
        kind, value = impact_override
        impacts[kind] = min(value, ServiceSpec.MAX_IMPACT)
    return ServiceSpec(
        name=service.name,
        arrival_rate=service.arrival_rate if arrival_rate is None else arrival_rate,
        service_rates=rates,
        impact_factors=impacts,
    )


def _solve_n(services: Sequence[ServiceSpec], b: float, load_model: str) -> int:
    inputs = ModelInputs(tuple(services), b)
    return UtilityAnalyticModel(inputs, load_model=load_model).solve().consolidated_servers


def sensitivity_report(
    inputs: ModelInputs, delta: float = 0.1, load_model: str = "paper"
) -> SensitivityReport:
    """Tornado analysis of the consolidated sizing.

    Perturbs, one at a time: every ``lambda_i``, every finite ``mu_ij``,
    every explicit ``a_ij``, and the loss target ``B`` — each by
    ``(1 +/- delta)`` — and re-solves the model.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    base_services = list(inputs.services)
    baseline_n = _solve_n(base_services, inputs.loss_probability, load_model)
    entries: list[SensitivityEntry] = []

    def perturbed(index: int, **kw) -> list[ServiceSpec]:
        services = list(base_services)
        services[index] = _rebuild_service(services[index], **kw)
        return services

    for i, service in enumerate(base_services):
        lo = _solve_n(
            perturbed(i, arrival_rate=service.arrival_rate * (1 - delta)),
            inputs.loss_probability,
            load_model,
        )
        hi = _solve_n(
            perturbed(i, arrival_rate=service.arrival_rate * (1 + delta)),
            inputs.loss_probability,
            load_model,
        )
        entries.append(
            SensitivityEntry(
                parameter=f"lambda[{service.name}]",
                baseline=service.arrival_rate,
                n_low=lo,
                n_high=hi,
            )
        )
        for kind, mu in service.service_rates.items():
            lo = _solve_n(
                perturbed(i, mu_override=(kind, mu * (1 - delta))),
                inputs.loss_probability,
                load_model,
            )
            hi = _solve_n(
                perturbed(i, mu_override=(kind, mu * (1 + delta))),
                inputs.loss_probability,
                load_model,
            )
            entries.append(
                SensitivityEntry(
                    parameter=f"mu[{service.name},{kind}]",
                    baseline=mu,
                    n_low=lo,
                    n_high=hi,
                )
            )
        for kind, a in service.impact_factors.items():
            lo = _solve_n(
                perturbed(i, impact_override=(kind, a * (1 - delta))),
                inputs.loss_probability,
                load_model,
            )
            hi = _solve_n(
                perturbed(i, impact_override=(kind, a * (1 + delta))),
                inputs.loss_probability,
                load_model,
            )
            entries.append(
                SensitivityEntry(
                    parameter=f"a[{service.name},{kind}]",
                    baseline=a,
                    n_low=lo,
                    n_high=hi,
                )
            )

    b = inputs.loss_probability
    entries.append(
        SensitivityEntry(
            parameter="B",
            baseline=b,
            n_low=_solve_n(base_services, max(b * (1 - delta), 1e-12), load_model),
            n_high=_solve_n(base_services, min(b * (1 + delta), 1 - 1e-12), load_model),
        )
    )

    entries.sort(key=lambda e: e.swing, reverse=True)
    return SensitivityReport(
        baseline_n=baseline_n, delta=delta, entries=tuple(entries)
    )
