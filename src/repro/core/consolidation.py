"""High-level consolidation planning API.

:class:`ConsolidationPlanner` is the public front door of the library: give
it the services to host and the target loss probability, and it returns a
:class:`ConsolidationReport` combining everything the paper's model outputs
— server counts (M, N), utilization ratio, power ratio — plus optional
heterogeneous-inventory packing.  This is what a data-center designer would
run *before deploying anything*, which is exactly the planning gap the
paper positions itself to fill relative to reactive controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .heterogeneous import HeterogeneousPool
from .inputs import ModelInputs, ServiceSpec
from .model import ConsolidationSolution, UtilityAnalyticModel
from .power import PowerComparison, ServerPowerModel, power_comparison
from .utilization import UtilizationReport, utilization_report

__all__ = ["ConsolidationReport", "ConsolidationPlanner"]


@dataclass(frozen=True)
class ConsolidationReport:
    """Everything the utility analytic model predicts for one deployment."""

    solution: ConsolidationSolution
    utilization: UtilizationReport
    power: PowerComparison
    dedicated_packing: dict[str, int] | None = None
    consolidated_packing: dict[str, int] | None = None

    @property
    def dedicated_servers(self) -> int:
        return self.solution.dedicated_servers

    @property
    def consolidated_servers(self) -> int:
        return self.solution.consolidated_servers

    @property
    def infrastructure_saving(self) -> float:
        return self.solution.infrastructure_saving

    @property
    def power_saving(self) -> float:
        return self.power.saving

    @property
    def utilization_improvement(self) -> float:
        return self.utilization.bottleneck_improvement

    def to_text(self) -> str:
        """Human-readable multi-line summary (used by the examples)."""
        sol = self.solution
        lines = [
            "Utility analytic model — consolidation plan",
            f"  target loss probability B = {sol.inputs.loss_probability:g}",
            "",
            "  Dedicated scenario:",
        ]
        for sizing in sol.dedicated:
            lines.append(
                f"    {sizing.service.name:<12s} lambda={sizing.service.arrival_rate:>10.1f}"
                f"  servers={sizing.servers:>3d}  bottleneck={sizing.bottleneck}"
            )
        lines += [
            f"    {'TOTAL':<12s} M = {sol.dedicated_servers}",
            "",
            "  Consolidated scenario:",
            f"    N = {sol.consolidated_servers}"
            f"  bottleneck={sol.consolidated_bottleneck}",
            "",
            f"  Servers saved:            {sol.servers_saved}"
            f" ({100.0 * sol.infrastructure_saving:.1f}%)",
            f"  Utilization improvement:  {self.utilization_improvement:.2f}x",
            f"  Power saving:             {100.0 * self.power_saving:.1f}%"
            f"  (ratio P_M/P_N = {self.power.ratio:.2f})",
        ]
        if self.consolidated_packing is not None:
            lines.append(f"  Consolidated packing:     {self.consolidated_packing}")
        if self.dedicated_packing is not None:
            lines.append(f"  Dedicated packing:        {self.dedicated_packing}")
        return "\n".join(lines)


class ConsolidationPlanner:
    """Plan the scale of a VM-based data center before deployment.

    Parameters
    ----------
    power_model:
        Per-server linear power model; defaults to the testbed-like one.
    xen_idle_factor, xen_workload_factor:
        Optional measured platform effects (see :mod:`repro.core.power`);
        default 1.0 = the pure analytic model.
    inventory:
        Optional heterogeneous inventory; when provided the report includes
        concrete machine packings for both scenarios.
    """

    def __init__(
        self,
        power_model: ServerPowerModel | None = None,
        xen_idle_factor: float = 1.0,
        xen_workload_factor: float = 1.0,
        inventory: HeterogeneousPool | None = None,
    ) -> None:
        self.power_model = power_model or ServerPowerModel()
        self.xen_idle_factor = xen_idle_factor
        self.xen_workload_factor = xen_workload_factor
        self.inventory = inventory

    def plan(
        self, services: Sequence[ServiceSpec], loss_probability: float
    ) -> ConsolidationReport:
        """Run the full model and assemble the report."""
        inputs = ModelInputs(tuple(services), loss_probability)
        solution = UtilityAnalyticModel(inputs).solve()
        util = utilization_report(solution)
        power = power_comparison(
            solution,
            power_model=self.power_model,
            xen_idle_factor=self.xen_idle_factor,
            xen_workload_factor=self.xen_workload_factor,
            utilization=util,
        )
        dedicated_packing = consolidated_packing = None
        if self.inventory is not None:
            dedicated_packing = self.inventory.pack(solution.dedicated_servers)
            consolidated_packing = self.inventory.pack(solution.consolidated_servers)
        return ConsolidationReport(
            solution=solution,
            utilization=util,
            power=power,
            dedicated_packing=dedicated_packing,
            consolidated_packing=consolidated_packing,
        )

    def sweep_loss_probability(
        self,
        services: Sequence[ServiceSpec],
        loss_probabilities: Sequence[float],
    ) -> list[ConsolidationReport]:
        """Plan across several QoS targets (stricter B -> more servers)."""
        return [self.plan(services, b) for b in loss_probabilities]

    def sweep_workload_scale(
        self,
        services: Sequence[ServiceSpec],
        loss_probability: float,
        factors: Sequence[float],
    ) -> list[ConsolidationReport]:
        """Plan across workload intensities (capacity-growth what-ifs)."""
        reports = []
        for f in factors:
            scaled = [s.with_arrival_rate(s.arrival_rate * f) for s in services]
            reports.append(self.plan(scaled, loss_probability))
        return reports
