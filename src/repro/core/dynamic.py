"""Multi-period (diurnal) capacity planning on top of the analytic model.

The paper plans one static scale; its related-work section surveys systems
that additionally power servers off under light load.  This module unifies
the two: given per-service workload *profiles* over a planning horizon,
solve the utility analytic model per period and emit an on/off schedule —
model-guided proactive shrinking rather than reactive control.

Real machines cannot flap, so the schedule supports:

- **hysteresis** — only power down after the lower demand has persisted
  for ``hold_periods`` periods (powering up is always immediate: QoS
  first);
- **switching energy** — booting a machine costs ``boot_energy`` joules,
  charged against the savings so the planner can report *net* energy.

Outputs per period: servers needed, servers on, utilization, energy; plus
horizon totals compared against the never-shrink baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .inputs import ModelInputs, ResourceKind, ServiceSpec
from .model import UtilityAnalyticModel
from .power import ServerPowerModel

__all__ = ["PeriodPlan", "DynamicPlan", "DynamicCapacityPlanner"]


@dataclass(frozen=True)
class PeriodPlan:
    """One planning period's decision and accounting."""

    period: int
    arrival_rates: Mapping[str, float]
    servers_needed: int
    servers_on: int
    utilization: float
    energy: float
    booted: int
    shut_down: int


@dataclass(frozen=True)
class DynamicPlan:
    """Complete schedule over the horizon."""

    periods: tuple[PeriodPlan, ...]
    period_length: float
    peak_servers: int
    total_energy: float
    static_energy: float
    boot_energy_spent: float

    @property
    def energy_saving(self) -> float:
        """Net energy saved versus keeping the peak fleet on throughout."""
        if self.static_energy == 0.0:
            return 0.0
        return (self.static_energy - self.total_energy) / self.static_energy

    @property
    def mean_servers_on(self) -> float:
        if not self.periods:
            return 0.0
        return sum(p.servers_on for p in self.periods) / len(self.periods)

    def rows(self) -> list[dict]:
        """Tabular view for the report renderers."""
        return [
            {
                "period": p.period,
                "needed": p.servers_needed,
                "on": p.servers_on,
                "utilization": round(p.utilization, 3),
                "energy_kJ": round(p.energy / 1e3, 2),
            }
            for p in self.periods
        ]


class DynamicCapacityPlanner:
    """Plan an on/off schedule from per-period service workloads.

    Parameters
    ----------
    services:
        Service templates; per-period arrival rates replace their
        ``arrival_rate``.
    loss_probability:
        QoS target ``B`` enforced in every period.
    power_model:
        Per-server linear power model.
    period_length:
        Seconds per planning period (3600 for hourly planning).
    hold_periods:
        Consecutive periods a lower requirement must persist before any
        machine is powered down (hysteresis; 0 = immediate shrinking).
    boot_energy:
        Joules charged per machine power-on (amortised boot cost).
    min_servers:
        Floor on powered-on machines (redundancy / management nodes).
    load_model:
        Passed through to :class:`UtilityAnalyticModel` ("paper" or the
        conservative "offered").
    """

    def __init__(
        self,
        services: Sequence[ServiceSpec],
        loss_probability: float,
        power_model: ServerPowerModel | None = None,
        period_length: float = 3600.0,
        hold_periods: int = 1,
        boot_energy: float = 30_000.0,
        min_servers: int = 1,
        load_model: str = "paper",
    ) -> None:
        if not services:
            raise ValueError("at least one service required")
        if period_length <= 0.0:
            raise ValueError(f"period length must be positive, got {period_length}")
        if hold_periods < 0:
            raise ValueError(f"hold periods must be >= 0, got {hold_periods}")
        if boot_energy < 0.0:
            raise ValueError(f"boot energy must be >= 0, got {boot_energy}")
        if min_servers < 1:
            raise ValueError(f"min servers must be >= 1, got {min_servers}")
        self.services = tuple(services)
        self.loss_probability = loss_probability
        self.power_model = power_model or ServerPowerModel()
        self.period_length = period_length
        self.hold_periods = hold_periods
        self.boot_energy = boot_energy
        self.min_servers = min_servers
        self.load_model = load_model

    # -- single period -------------------------------------------------------

    def servers_needed(self, arrival_rates: Mapping[str, float]) -> int:
        """Consolidated servers the model demands for one period's rates."""
        inputs = self._inputs_for(arrival_rates)
        solution = UtilityAnalyticModel(inputs, load_model=self.load_model).solve()
        return max(self.min_servers, solution.consolidated_servers)

    def offered_load(self, arrival_rates: Mapping[str, float]) -> float:
        """Worst-resource consolidated offered load for one period's rates.

        The quasi-stationary Erlang load the sizing in
        :meth:`servers_needed` guards against; the control loop uses it as
        the fluid-mode busy-server proxy.
        """
        inputs = self._inputs_for(arrival_rates)
        return max(
            inputs.consolidated_load(resource, "offered")
            for resource in inputs.resources
        )

    def _inputs_for(self, arrival_rates: Mapping[str, float]) -> ModelInputs:
        missing = {s.name for s in self.services} - set(arrival_rates)
        if missing:
            raise KeyError(f"missing arrival rates for services: {sorted(missing)}")
        scaled = tuple(
            s.with_arrival_rate(arrival_rates[s.name]) for s in self.services
        )
        return ModelInputs(scaled, self.loss_probability)

    def _period_utilization(
        self, arrival_rates: Mapping[str, float], servers_on: int
    ) -> float:
        inputs = self._inputs_for(arrival_rates)
        worst = 0.0
        for resource in inputs.resources:
            load = inputs.consolidated_load(resource, "offered")
            worst = max(worst, load / servers_on if servers_on else 0.0)
        return min(worst, 1.0)

    # -- horizon --------------------------------------------------------------

    def plan(self, profile: Sequence[Mapping[str, float]]) -> DynamicPlan:
        """Build the schedule for a sequence of per-period arrival rates."""
        if not profile:
            raise ValueError("profile must contain at least one period")
        needed = [self.servers_needed(rates) for rates in profile]
        peak = max(needed)

        periods: list[PeriodPlan] = []
        on = needed[0]
        below_since = 0
        total_energy = 0.0
        boot_spent = 0.0
        for k, rates in enumerate(profile):
            want = needed[k]
            booted = shut = 0
            if want > on:
                booted = want - on
                boot_spent += booted * self.boot_energy
                total_energy += booted * self.boot_energy
                on = want
                below_since = 0
            elif want < on:
                below_since += 1
                if below_since > self.hold_periods:
                    shut = on - want
                    on = want
                    below_since = 0
            else:
                below_since = 0
            util = self._period_utilization(rates, on)
            energy = on * self.power_model.draw(util) * self.period_length
            total_energy += energy
            periods.append(
                PeriodPlan(
                    period=k,
                    arrival_rates=dict(rates),
                    servers_needed=want,
                    servers_on=on,
                    utilization=util,
                    energy=energy,
                    booted=booted,
                    shut_down=shut,
                )
            )

        # Baseline: the peak fleet stays on all horizon at each period's load.
        static_energy = 0.0
        for rates in profile:
            util = self._period_utilization(rates, peak)
            static_energy += peak * self.power_model.draw(util) * self.period_length

        return DynamicPlan(
            periods=tuple(periods),
            period_length=self.period_length,
            peak_servers=peak,
            total_energy=total_energy,
            static_energy=static_energy,
            boot_energy_spent=boot_spent,
        )
