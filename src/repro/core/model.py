"""The utility analytic model (paper Section III.B, algorithm of Fig. 4).

Given the validated :class:`~repro.core.inputs.ModelInputs`, the model
computes:

- **Dedicated scenario** — for every service ``i``, and for every resource
  ``j`` it touches, the per-resource traffic ``rho_ij = lambda_i / mu_ij``
  (Eq. 3) is inverted through the Erlang loss formula to the minimum server
  count ``n_ij`` with ``E_{n_ij}(rho_ij) <= B``.  The service needs
  ``max_j n_ij`` dedicated servers (its bottleneck resource decides), and
  the data center needs ``M = sum_i max_j n_ij`` (Eq. 6).

- **Consolidated scenario** — the pooled Poisson stream of rate
  ``lambda = sum_i lambda_i`` is served, on resource ``j``, at the
  arrival-weighted virtualized mixture rate ``mu'_j`` (Eq. 4), giving load
  ``rho'_j`` (Eq. 5) and, through the same Erlang inversion, ``N_j``;
  the pool needs ``N = max_j N_j`` shared servers (Eq. 7).

The resulting :class:`ConsolidationSolution` carries the full per-service /
per-resource breakdown so that the utilization (Eqs. 8–11) and power
(Eqs. 12–14) analyses downstream can reuse it without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..obs import get_registry
from ..parallel.cache import cached_erlang_b as erlang_b
from ..parallel.cache import cached_min_servers as min_servers
from ..parallel.cache import cached_min_servers_grid as min_servers_grid
from .inputs import ModelInputs, ResourceKind, ServiceSpec

__all__ = [
    "DedicatedServiceSizing",
    "ConsolidationSolution",
    "UtilityAnalyticModel",
]


@dataclass(frozen=True)
class DedicatedServiceSizing:
    """Dedicated-scenario sizing for one service."""

    service: ServiceSpec
    per_resource_load: Mapping[ResourceKind, float]
    per_resource_servers: Mapping[ResourceKind, int]

    @property
    def servers(self) -> int:
        """``max_j n_ij`` — the bottleneck resource's requirement."""
        return max(self.per_resource_servers.values(), default=0)

    @property
    def bottleneck(self) -> ResourceKind | None:
        """Resource demanding the most dedicated servers (None if no load)."""
        if not self.per_resource_servers:
            return None
        return max(self.per_resource_servers, key=lambda k: self.per_resource_servers[k])

    def achieved_blocking(self) -> Mapping[ResourceKind, float]:
        """Blocking actually achieved per resource with ``servers`` machines.

        With the service pinned to its bottleneck count, non-bottleneck
        resources run strictly below the target loss.
        """
        n = self.servers
        return {k: erlang_b(n, rho) for k, rho in self.per_resource_load.items()}


@dataclass(frozen=True)
class ConsolidationSolution:
    """Complete output of the Fig. 4 algorithm."""

    inputs: ModelInputs
    dedicated: tuple[DedicatedServiceSizing, ...]
    consolidated_load: Mapping[ResourceKind, float]
    consolidated_per_resource_servers: Mapping[ResourceKind, int]

    @property
    def dedicated_servers(self) -> int:
        """``M`` of Eq. (6)."""
        return sum(d.servers for d in self.dedicated)

    @property
    def consolidated_servers(self) -> int:
        """``N`` of Eq. (7)."""
        return max(self.consolidated_per_resource_servers.values(), default=0)

    @property
    def servers_saved(self) -> int:
        return self.dedicated_servers - self.consolidated_servers

    @property
    def infrastructure_saving(self) -> float:
        """Fraction of physical servers eliminated, ``(M - N)/M``.

        The paper's headline "saves up to 50% physical infrastructure".
        """
        m = self.dedicated_servers
        if m == 0:
            return 0.0
        return (m - self.consolidated_servers) / m

    @property
    def consolidated_bottleneck(self) -> ResourceKind | None:
        table = self.consolidated_per_resource_servers
        if not table:
            return None
        return max(table, key=lambda k: table[k])

    def dedicated_for(self, name: str) -> DedicatedServiceSizing:
        for d in self.dedicated:
            if d.service.name == name:
                return d
        raise KeyError(f"no service named {name!r}")

    def consolidated_blocking(self) -> Mapping[ResourceKind, float]:
        """Blocking achieved per resource with the final ``N`` shared servers."""
        n = self.consolidated_servers
        return {k: erlang_b(n, rho) for k, rho in self.consolidated_load.items()}

    def summary_rows(self) -> list[dict]:
        """Tabular summary used by the experiment harness's printers."""
        rows = []
        for d in self.dedicated:
            rows.append(
                {
                    "scenario": "dedicated",
                    "service": d.service.name,
                    "servers": d.servers,
                    "bottleneck": str(d.bottleneck) if d.bottleneck else "-",
                }
            )
        rows.append(
            {
                "scenario": "dedicated",
                "service": "TOTAL (M)",
                "servers": self.dedicated_servers,
                "bottleneck": "-",
            }
        )
        rows.append(
            {
                "scenario": "consolidated",
                "service": "ALL (N)",
                "servers": self.consolidated_servers,
                "bottleneck": (
                    str(self.consolidated_bottleneck)
                    if self.consolidated_bottleneck
                    else "-"
                ),
            }
        )
        return rows


class UtilityAnalyticModel:
    """Callable implementation of the paper's utility analytic model.

    Parameters
    ----------
    inputs:
        Validated model inputs (services + target loss probability ``B``).

    Examples
    --------
    >>> from repro.core import ModelInputs, ResourceKind, ServiceSpec
    >>> web = ServiceSpec("web", 3000.0,
    ...                   {ResourceKind.CPU: 3360.0, ResourceKind.DISK_IO: 1420.0},
    ...                   {ResourceKind.CPU: 0.65, ResourceKind.DISK_IO: 0.8})
    >>> db = ServiceSpec("db", 250.0, {ResourceKind.CPU: 100.0},
    ...                  {ResourceKind.CPU: 0.9})
    >>> model = UtilityAnalyticModel(ModelInputs((web, db), loss_probability=0.01))
    >>> sol = model.solve()
    >>> sol.dedicated_servers >= sol.consolidated_servers or True
    True
    """

    def __init__(self, inputs: ModelInputs, load_model: str = "paper") -> None:
        if load_model not in ("paper", "offered"):
            raise ValueError(f"unknown load model {load_model!r} (paper|offered)")
        self.inputs = inputs
        self.load_model = load_model

    # -- dedicated scenario -------------------------------------------------

    def size_dedicated_service(self, service: ServiceSpec) -> DedicatedServiceSizing:
        """Erlang-invert every resource the service touches (Eq. 3 + Fig. 4).

        All of the service's per-resource loads go through the cache's
        batched inversion in one call; insertion order of the result dicts
        follows ``service.service_rates``, exactly as the scalar loop did.
        """
        resources = list(service.service_rates)
        rhos = [service.offered_load(resource) for resource in resources]
        counts = min_servers_grid(rhos, self.inputs.loss_probability)
        return DedicatedServiceSizing(
            service=service,
            per_resource_load=dict(zip(resources, rhos)),
            per_resource_servers={
                resource: int(n) for resource, n in zip(resources, counts)
            },
        )

    # -- consolidated scenario ----------------------------------------------

    def consolidated_loads(self) -> dict[ResourceKind, float]:
        """``rho'_j`` for every resource any service touches (Eq. 5)."""
        return {
            resource: self.inputs.consolidated_load(resource, self.load_model)
            for resource in self.inputs.resources
        }

    def size_consolidated(self) -> dict[ResourceKind, int]:
        """``N_j`` per resource via the same (batched) Erlang inversion."""
        loads = self.consolidated_loads()
        resources = list(loads)
        counts = min_servers_grid(
            [loads[resource] for resource in resources],
            self.inputs.loss_probability,
        )
        return {resource: int(n) for resource, n in zip(resources, counts)}

    # -- full solve ----------------------------------------------------------

    def solve(self) -> ConsolidationSolution:
        """Run the complete Fig. 4 algorithm.

        With observability enabled (:mod:`repro.obs`) each solve is timed
        (``model_solve_seconds``) and counted (``model_solves_total``) per
        load model.
        """
        registry = get_registry()
        with registry.timer(
            "model_solve_seconds",
            help="full Fig. 4 algorithm runs",
            labels={"load_model": self.load_model},
        ):
            dedicated = tuple(
                self.size_dedicated_service(s) for s in self.inputs.services
            )
            solution = ConsolidationSolution(
                inputs=self.inputs,
                dedicated=dedicated,
                consolidated_load=self.consolidated_loads(),
                consolidated_per_resource_servers=self.size_consolidated(),
            )
        if registry.enabled:
            registry.counter(
                "model_solves_total",
                help="utility analytic model solves",
                labels={"load_model": self.load_model},
            ).inc()
        return solution

    # -- inverse queries ------------------------------------------------------

    def blocking_with_servers(self, servers: int, consolidated: bool = True) -> float:
        """Worst-resource loss probability if the pool had ``servers`` machines.

        The model application of Section III.B.4 fixes the server count and
        asks what loss each scenario achieves; the binding constraint is the
        resource with the highest blocking.
        """
        if servers < 0:
            raise ValueError(f"servers must be non-negative, got {servers}")
        if consolidated:
            loads = self.consolidated_loads().values()
            return max((erlang_b(servers, rho) for rho in loads), default=0.0)
        # Dedicated: each service individually gets `servers` machines.
        worst = 0.0
        for service in self.inputs.services:
            for resource in service.service_rates:
                worst = max(worst, erlang_b(servers, service.offered_load(resource)))
        return worst
