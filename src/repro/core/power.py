"""Power-consumption analysis (paper Eqs. 12–14).

The paper adopts the linear server power model of Nedevschi et al. [1]:

    P(u) = S_base + (S_max - S_base) * u

where ``S_base`` is the baseline (idle) draw, ``S_max`` the full-load draw
and ``u`` the average utilization.  Aggregating over the fleet for a run of
duration ``t``:

    P_M = M * S_base * t + (S_max - S_base) * U_M * M * t        (Eq. 12)
    P_N = N * S_base * t + (S_max - S_base) * U_N * N * t        (Eq. 13)

and the model's output is the ratio ``P_{M/N} = P_M / P_N`` (Eq. 14).

Two empirical effects the paper *measured* but could not derive (its open
question, Section IV.C.2) are captured as explicit knobs so the measured
figures (Figs. 12–13) can be regenerated:

- the idle Xen platform draws ~9% less than the idle Linux platform;
- the same workload hosted on consolidated Xen servers draws ~30% less
  workload-attributed power than on dedicated Linux servers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import ConsolidationSolution
from .utilization import UtilizationReport, utilization_report

__all__ = ["ServerPowerModel", "PowerComparison", "power_comparison"]


@dataclass(frozen=True)
class ServerPowerModel:
    """Linear power model of one physical server.

    Defaults approximate the paper's testbed observation that busy servers
    draw at most ~17% more than idle ones (Fig. 12(b)), consistent with
    Barroso & Hölzle's energy-proportionality critique the paper cites:
    with ``S_base = 250 W`` and ``S_max = 295 W``, a fully busy server draws
    18% more than an idle one.
    """

    base_watts: float = 250.0
    max_watts: float = 295.0

    def __post_init__(self) -> None:
        if self.base_watts < 0.0:
            raise ValueError(f"base power must be non-negative, got {self.base_watts}")
        if self.max_watts < self.base_watts:
            raise ValueError(
                f"max power ({self.max_watts}) must be >= base power ({self.base_watts})"
            )

    def draw(self, utilization: float) -> float:
        """Instantaneous draw (watts) at the given utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization must lie in [0, 1], got {utilization}")
        u = min(utilization, 1.0)
        return self.base_watts + (self.max_watts - self.base_watts) * u

    def energy(self, utilization: float, duration: float) -> float:
        """Energy (joules, if watts and seconds) over ``duration``."""
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.draw(utilization) * duration

    @property
    def busy_over_idle(self) -> float:
        """Fractional increase of a fully-busy server over an idle one."""
        if self.base_watts == 0.0:
            return float("inf")
        return self.max_watts / self.base_watts - 1.0

    def scaled(self, factor: float) -> "ServerPowerModel":
        """Uniformly scale the whole model (e.g. the Xen platform deltas)."""
        if factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor}")
        return ServerPowerModel(self.base_watts * factor, self.max_watts * factor)


@dataclass(frozen=True)
class PowerComparison:
    """Fleet power under both scenarios, per paper Eqs. 12–14."""

    dedicated_power: float
    consolidated_power: float
    dedicated_idle_power: float
    consolidated_idle_power: float
    duration: float

    @property
    def ratio(self) -> float:
        """``P_{M/N}`` (Eq. 14): how many times more the dedicated fleet draws."""
        if self.consolidated_power == 0.0:
            return float("inf") if self.dedicated_power > 0.0 else 1.0
        return self.dedicated_power / self.consolidated_power

    @property
    def saving(self) -> float:
        """Fraction of total power saved by consolidating, ``(P_M - P_N)/P_M``.

        The paper's headline "saves up to 53% power".
        """
        if self.dedicated_power == 0.0:
            return 0.0
        return (self.dedicated_power - self.consolidated_power) / self.dedicated_power

    @property
    def dedicated_workload_power(self) -> float:
        """Workload-attributed power: total minus idle (paper Fig. 13)."""
        return self.dedicated_power - self.dedicated_idle_power

    @property
    def consolidated_workload_power(self) -> float:
        return self.consolidated_power - self.consolidated_idle_power

    @property
    def workload_power_saving(self) -> float:
        """Fraction of workload-attributed power saved (Fig. 13's ~30%)."""
        dw = self.dedicated_workload_power
        if dw == 0.0:
            return 0.0
        return (dw - self.consolidated_workload_power) / dw


def power_comparison(
    solution: ConsolidationSolution,
    power_model: ServerPowerModel | None = None,
    duration: float = 1.0,
    xen_idle_factor: float = 1.0,
    xen_workload_factor: float = 1.0,
    utilization: UtilizationReport | None = None,
) -> PowerComparison:
    """Evaluate Eqs. 12–14 on a solved consolidation.

    Parameters
    ----------
    solution:
        Output of :meth:`UtilityAnalyticModel.solve`.
    power_model:
        Per-server linear power model (defaults to the testbed-like one).
    duration:
        Length of the evaluation window ``t``; cancels in the ratio.
    xen_idle_factor:
        Multiplier on the *baseline* draw of the consolidated (Xen) fleet;
        the paper measured ~0.91 (9% less idle power than Linux).  The pure
        analytic model uses 1.0.
    xen_workload_factor:
        Multiplier on the *dynamic* (utilization-proportional) draw of the
        consolidated fleet; the paper measured ~0.70 (30% less per-workload
        power).  The pure analytic model uses 1.0.
    utilization:
        Optionally a precomputed utilization report; recomputed otherwise.
        The scalar ``U_M``/``U_N`` entering the fleet equations is the
        bottleneck (busiest dedicated) resource's utilization, matching how
        the paper's case study reports CPU numbers.
    """
    if duration < 0.0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    if xen_idle_factor <= 0.0 or xen_workload_factor <= 0.0:
        raise ValueError("Xen platform factors must be positive")
    pm = power_model or ServerPowerModel()
    util = utilization or utilization_report(solution)
    busiest = max(util.per_resource, key=lambda r: r.dedicated)
    u_m = min(busiest.dedicated, 1.0)
    u_n = min(busiest.consolidated, 1.0)
    m = solution.dedicated_servers
    n = solution.consolidated_servers
    dyn = pm.max_watts - pm.base_watts
    dedicated_idle = m * pm.base_watts * duration
    dedicated_total = dedicated_idle + dyn * u_m * m * duration
    consolidated_idle = n * pm.base_watts * xen_idle_factor * duration
    consolidated_total = (
        consolidated_idle + dyn * u_n * n * duration * xen_workload_factor
    )
    return PowerComparison(
        dedicated_power=dedicated_total,
        consolidated_power=consolidated_total,
        dedicated_idle_power=dedicated_idle,
        consolidated_idle_power=consolidated_idle,
        duration=duration,
    )
