"""Entry point for ``python -m repro`` (the planning CLI)."""

import sys

from .cli import main

sys.exit(main())
