"""Discrete-event and fluid simulation substrate (the testbed replacement).

- :mod:`repro.simulation.engine` — minimal deterministic DES engine;
- :mod:`repro.simulation.metrics` — online statistics (Welford,
  time-weighted averages, loss counters with Wilson CIs);
- :mod:`repro.simulation.loss_network` — fast single-station loss
  simulation and the multi-resource loss network behind the case study;
- :mod:`repro.simulation.datacenter` — dedicated-vs-consolidated scenario
  runner with power metering (Figs. 10–13);
- :mod:`repro.simulation.fluid` — control-period fluid model scoring the
  Rainbow flow controllers against the analytic ideal.
"""

from .closed_loop import ClosedLoopResult, simulate_closed_loop
from .datacenter import CaseStudyResult, DataCenterSimulation, ScenarioResult
from .delay_sim import DelaySystemResult, response_time_curve, simulate_delay_system
from .engine import ScheduledEvent, Simulator
from .fluid import FluidRunResult, demand_trace_from_rates, simulate_flow_control
from .loss_network import (
    LossNetwork,
    LossNetworkResult,
    LossSystemResult,
    ServiceTraffic,
    simulate_loss_system,
)
from .metrics import LossCounter, RunningStats, TimeWeightedStat
from .tandem import TandemResult, TierResult, TierSpec, simulate_tandem

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "RunningStats",
    "TimeWeightedStat",
    "LossCounter",
    "simulate_loss_system",
    "LossSystemResult",
    "LossNetwork",
    "LossNetworkResult",
    "ServiceTraffic",
    "DataCenterSimulation",
    "ScenarioResult",
    "CaseStudyResult",
    "simulate_flow_control",
    "FluidRunResult",
    "demand_trace_from_rates",
    "DelaySystemResult",
    "simulate_delay_system",
    "response_time_curve",
    "TierSpec",
    "TierResult",
    "TandemResult",
    "simulate_tandem",
    "ClosedLoopResult",
    "simulate_closed_loop",
]
