"""Delay-system (queueing, not loss) simulation.

The headline model is a loss system, but two of the paper's measurements
are *delay* quantities: Fig. 9's Web panel plots mean response time, and
the testbed's LVS front end queues rather than drops below saturation.
This module simulates an ``n``-server FIFO queue (M/G/n) on the DES engine
and reports response-time statistics, validating the closed-form M/M/n
results in :mod:`repro.queueing.mmn` and providing the simulated
response-time curves for the Fig. 9 cross-check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..queueing.distributions import Distribution, as_distribution
from .engine import Simulator
from .metrics import RunningStats, TimeWeightedStat

__all__ = ["DelaySystemResult", "simulate_delay_system", "response_time_curve"]


@dataclass(frozen=True)
class DelaySystemResult:
    """Measured behaviour of one M/G/n queue run."""

    servers: int
    completed: int
    mean_response_time: float
    mean_wait: float
    p95_wait_bound: float
    mean_queue_length: float
    utilization: float
    probability_of_wait: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization out of range: {self.utilization}")


def simulate_delay_system(
    arrival_rate: float,
    service: Distribution | float,
    servers: int,
    horizon: float,
    rng: np.random.Generator,
    warmup_fraction: float = 0.1,
) -> DelaySystemResult:
    """Simulate an M/G/n FIFO queue over ``[0, horizon]``.

    Statistics exclude a warm-up prefix so the transient empty-system start
    does not bias the steady-state estimates.  Waits are collected exactly;
    ``p95_wait_bound`` is a Markov-inequality upper bound computed from the
    mean (keeping the accumulator O(1) — good enough for the shape checks
    the harness performs).
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if arrival_rate <= 0.0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup fraction must lie in [0, 1), got {warmup_fraction}")
    dist = as_distribution(service)

    sim = Simulator()
    warmup_end = horizon * warmup_fraction
    queue: deque[float] = deque()  # arrival times of waiting requests
    busy = 0
    waits = RunningStats()
    responses = RunningStats()
    waited_count = 0
    queue_len = TimeWeightedStat(0.0, 0.0)
    busy_stat = TimeWeightedStat(0.0, 0.0)

    def start_service(arrived_at: float) -> None:
        nonlocal busy, waited_count
        wait = sim.now - arrived_at
        hold = float(dist.sample(rng))
        if arrived_at >= warmup_end:
            waits.add(wait)
            responses.add(wait + hold)
            if wait > 1e-12:
                waited_count += 1
        busy_stat.update(sim.now, busy + 1)
        busy += 1
        sim.schedule_in(hold, depart)

    def depart() -> None:
        nonlocal busy
        busy_stat.update(sim.now, busy - 1)
        busy -= 1
        if queue:
            queue_len.update(sim.now, len(queue) - 1)
            start_service(queue.popleft())

    def arrive() -> None:
        if busy < servers:
            start_service(sim.now)
        else:
            queue_len.update(sim.now, len(queue) + 1)
            queue.append(sim.now)
        gap = rng.exponential(1.0 / arrival_rate)
        if sim.now + gap <= horizon:
            sim.schedule_in(gap, arrive)

    first = rng.exponential(1.0 / arrival_rate)
    if first <= horizon:
        sim.schedule_at(first, arrive)
    sim.run()
    end = max(sim.now, horizon)
    queue_len.finalize(end)
    busy_stat.finalize(end)

    completed = responses.count
    mean_wait = waits.mean if completed else 0.0
    effective = end - warmup_end
    return DelaySystemResult(
        servers=servers,
        completed=completed,
        mean_response_time=responses.mean if completed else 0.0,
        mean_wait=mean_wait,
        p95_wait_bound=mean_wait / 0.05 if completed else 0.0,
        mean_queue_length=queue_len.time_average(end),
        utilization=min(busy_stat.time_average(end) / servers, 1.0),
        probability_of_wait=(waited_count / completed) if completed else 0.0,
    )


def response_time_curve(
    arrival_rates: np.ndarray,
    service_rate: float,
    servers: int,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mean response time at each arrival rate (the Fig. 9 Web panel)."""
    rates = np.asarray(arrival_rates, dtype=float)
    out = np.empty(rates.shape)
    for i, lam in enumerate(rates):
        result = simulate_delay_system(
            float(lam), 1.0 / service_rate, servers, horizon, rng
        )
        out[i] = result.mean_response_time
    return out
