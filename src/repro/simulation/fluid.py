"""Fluid (control-period) simulation of on-demand resource flowing.

The loss-network simulation treats capacity as indivisible servers; this
complementary model treats it as fluid, which is the natural frame for the
Rainbow controllers: each control period the controller divides the pooled
capacity among services according to their instantaneous demand, and
whatever demand exceeds the grant is lost (an Internet request that cannot
be served within its period times out).

Running the same demand trace under different controllers quantifies how
close each comes to the analytic model's ideal-flowing assumption — the
model's first application (Section III.B.4(1)).  Demands are expressed in
normalized-server units of work per period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..virtualization.rainbow import FlowController

__all__ = ["FluidRunResult", "simulate_flow_control", "demand_trace_from_rates"]


@dataclass(frozen=True)
class FluidRunResult:
    """Aggregate outcome of one controller over one demand trace."""

    controller: str
    periods: int
    offered_work: Mapping[str, float]
    served_work: Mapping[str, float]

    @property
    def total_offered(self) -> float:
        return sum(self.offered_work.values())

    @property
    def total_served(self) -> float:
        return sum(self.served_work.values())

    @property
    def goodput_fraction(self) -> float:
        """Served / offered — the fluid analogue of ``1 - B``."""
        if self.total_offered == 0.0:
            return 1.0
        return self.total_served / self.total_offered

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.goodput_fraction

    def service_goodput(self, name: str) -> float:
        offered = self.offered_work[name]
        if offered == 0.0:
            return 1.0
        return self.served_work[name] / offered


def simulate_flow_control(
    controller: FlowController,
    demands: Mapping[str, np.ndarray],
    capacity: float,
) -> FluidRunResult:
    """Run ``controller`` over a per-period demand trace.

    ``demands[name]`` is a 1-D array of work offered by that service in each
    control period; all arrays must share a length.  ``capacity`` is the
    pooled capacity available per period.  Work not served within its
    period is lost — there is no carry-over queue, matching the loss-system
    (rather than delay-system) framing of the paper.
    """
    if capacity < 0.0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if not demands:
        raise ValueError("at least one service demand trace required")
    lengths = {name: len(np.atleast_1d(trace)) for name, trace in demands.items()}
    periods = next(iter(lengths.values()))
    if any(l != periods for l in lengths.values()):
        raise ValueError(f"demand traces differ in length: {lengths}")
    traces = {name: np.asarray(trace, dtype=float) for name, trace in demands.items()}
    for name, trace in traces.items():
        if (trace < 0).any():
            raise ValueError(f"{name}: demands must be non-negative")

    offered = {name: float(trace.sum()) for name, trace in traces.items()}
    served = {name: 0.0 for name in traces}
    previous_shares: dict[str, float] | None = None
    for k in range(periods):
        period_demand = {name: float(traces[name][k]) for name in traces}
        shares = controller.shares(period_demand, capacity)
        changed = previous_shares is not None and any(
            abs(shares.get(n, 0.0) - previous_shares.get(n, 0.0)) > 1e-12
            for n in set(shares) | set(previous_shares)
        )
        effective = controller.effective_capacity(capacity, changed)
        scale = effective / capacity if capacity > 0.0 else 0.0
        for name in traces:
            grant = shares.get(name, 0.0) * scale
            served[name] += min(period_demand[name], grant)
        previous_shares = shares
    return FluidRunResult(
        controller=type(controller).__name__,
        periods=periods,
        offered_work=offered,
        served_work=served,
    )


def demand_trace_from_rates(
    arrival_rates: Sequence[float],
    work_per_request: Sequence[float],
    periods: int,
    rng: np.random.Generator,
    period_length: float = 1.0,
) -> dict[int, np.ndarray]:
    """Poisson per-period work demands for several services.

    Service ``i`` receives ``Poisson(lambda_i * period_length)`` requests per
    period, each worth ``work_per_request[i]`` normalized-server units.
    Returned keyed by service index; callers typically re-key by name.
    """
    if len(arrival_rates) != len(work_per_request):
        raise ValueError("arrival_rates and work_per_request must align")
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    if period_length <= 0.0:
        raise ValueError(f"period length must be positive, got {period_length}")
    out: dict[int, np.ndarray] = {}
    for i, (lam, work) in enumerate(zip(arrival_rates, work_per_request)):
        if lam < 0.0 or work < 0.0:
            raise ValueError("rates and work must be non-negative")
        counts = rng.poisson(lam * period_length, periods)
        out[i] = counts.astype(float) * work
    return out
