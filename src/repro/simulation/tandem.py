"""Multi-tier (tandem) service simulation.

The paper's related work stresses that different tiers of a multi-tiered
service have different resource characteristics and hence different
virtualization impact factors — one of its criticisms of whole-application
performance studies.  This module simulates a tandem of queueing tiers
(web front end -> application -> database, each an ``n_k``-server FIFO
station) so per-tier impact factors can be applied and their end-to-end
effect measured.

With exponential service everywhere this is a Jackson tandem: by Burke's
theorem each tier sees Poisson arrivals, the network is product-form, and
the end-to-end mean response time is the sum of per-tier M/M/n times —
which is exactly how the tests validate the simulator.  ``visit_ratio``
lets a tier be skipped probabilistically (not every web request touches
the database), thinning its Poisson stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..queueing.distributions import Distribution, as_distribution
from .engine import Simulator
from .metrics import RunningStats, TimeWeightedStat

__all__ = ["TierSpec", "TierResult", "TandemResult", "simulate_tandem"]


@dataclass(frozen=True)
class TierSpec:
    """One tier of the tandem.

    ``service`` is a distribution or an exponential mean; ``impact_factor``
    stretches service times by ``1/a`` (the virtualization overhead applied
    to *this tier only*); ``visit_ratio`` in (0, 1] is the probability a
    request visits this tier at all.
    """

    name: str
    servers: int
    service: Distribution | float
    impact_factor: float = 1.0
    visit_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.servers < 1:
            raise ValueError(f"{self.name}: servers must be >= 1, got {self.servers}")
        if not 0.0 < self.impact_factor <= 10.0:
            raise ValueError(
                f"{self.name}: impact factor must lie in (0, 10], got {self.impact_factor}"
            )
        if not 0.0 < self.visit_ratio <= 1.0:
            raise ValueError(
                f"{self.name}: visit ratio must lie in (0, 1], got {self.visit_ratio}"
            )
        dist = as_distribution(self.service)
        if self.impact_factor != 1.0:
            dist = dist.scaled(1.0 / self.impact_factor)
        object.__setattr__(self, "service", dist)


@dataclass(frozen=True)
class TierResult:
    """Measured per-tier behaviour."""

    name: str
    visits: int
    mean_wait: float
    mean_service: float
    utilization: float

    @property
    def mean_sojourn(self) -> float:
        return self.mean_wait + self.mean_service


@dataclass(frozen=True)
class TandemResult:
    """End-to-end and per-tier measurements."""

    completed: int
    mean_response_time: float
    tiers: tuple[TierResult, ...]

    def tier(self, name: str) -> TierResult:
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(f"no tier named {name!r}")


class _TierState:
    def __init__(self, spec: TierSpec, sim: Simulator):
        self.spec = spec
        self.sim = sim
        self.queue: deque = deque()
        self.busy = 0
        self.waits = RunningStats()
        self.services = RunningStats()
        self.busy_stat = TimeWeightedStat(0.0, 0.0)
        self.visits = 0


def simulate_tandem(
    arrival_rate: float,
    tiers: Sequence[TierSpec],
    horizon: float,
    rng: np.random.Generator,
) -> TandemResult:
    """Simulate the tandem on ``[0, horizon]`` with Poisson arrivals.

    Requests enter tier 0 and proceed through each subsequent tier they
    visit (independent ``visit_ratio`` coin per tier); response time is
    measured entrance-to-final-completion.
    """
    if arrival_rate <= 0.0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    if not tiers:
        raise ValueError("at least one tier required")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    names = [t.name for t in tiers]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tier names: {names}")

    sim = Simulator()
    states = [_TierState(t, sim) for t in tiers]
    responses = RunningStats()

    def finish(entered_at: float) -> None:
        responses.add(sim.now - entered_at)

    def advance(index: int, entered_at: float) -> None:
        """Route the request to the next visited tier (or finish)."""
        while index < len(states):
            spec = states[index].spec
            if spec.visit_ratio >= 1.0 or rng.uniform() < spec.visit_ratio:
                enqueue(states[index], index, entered_at)
                return
            index += 1
        finish(entered_at)

    def enqueue(state: _TierState, index: int, entered_at: float) -> None:
        state.visits += 1
        if state.busy < state.spec.servers:
            start_service(state, index, entered_at, queued_at=sim.now)
        else:
            state.queue.append((sim.now, entered_at))

    def start_service(
        state: _TierState, index: int, entered_at: float, queued_at: float
    ) -> None:
        wait = sim.now - queued_at
        hold = float(state.spec.service.sample(rng))
        state.waits.add(wait)
        state.services.add(hold)
        state.busy_stat.update(sim.now, state.busy + 1)
        state.busy += 1
        sim.schedule_in(hold, lambda: depart(state, index, entered_at))

    def depart(state: _TierState, index: int, entered_at: float) -> None:
        state.busy_stat.update(sim.now, state.busy - 1)
        state.busy -= 1
        if state.queue:
            queued_at, pending_entry = state.queue.popleft()
            start_service(state, index, pending_entry, queued_at)
        advance(index + 1, entered_at)

    def arrive() -> None:
        advance(0, sim.now)
        gap = rng.exponential(1.0 / arrival_rate)
        if sim.now + gap <= horizon:
            sim.schedule_in(gap, arrive)

    first = rng.exponential(1.0 / arrival_rate)
    if first <= horizon:
        sim.schedule_at(first, arrive)
    sim.run()
    end = max(sim.now, horizon)

    tier_results = []
    for state in states:
        state.busy_stat.finalize(end)
        tier_results.append(
            TierResult(
                name=state.spec.name,
                visits=state.visits,
                mean_wait=state.waits.mean if state.waits.count else 0.0,
                mean_service=state.services.mean if state.services.count else 0.0,
                utilization=min(
                    state.busy_stat.time_average(end) / state.spec.servers, 1.0
                ),
            )
        )
    return TandemResult(
        completed=responses.count,
        mean_response_time=responses.mean if responses.count else 0.0,
        tiers=tuple(tier_results),
    )
