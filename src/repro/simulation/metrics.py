"""Online statistics for the simulation.

Simulations produce long streams; storing every observation is wasteful and
the guides' advice is to keep the hot loop allocation-free.  These
accumulators maintain running moments:

- :class:`RunningStats` — Welford's numerically stable mean/variance;
- :class:`TimeWeightedStat` — piecewise-constant signals (queue length,
  utilization) averaged over virtual time;
- :class:`LossCounter` — arrivals/accepted/blocked with the loss
  probability estimate and a normal-approximation confidence interval
  (the paper's "loss probability calculated by requests", B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RunningStats", "TimeWeightedStat", "LossCounter"]


class RunningStats:
    """Welford accumulator for iid observations."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        if self._n == 0:
            raise ValueError("no observations")
        half = z * self.std / math.sqrt(self._n) if self._n > 1 else 0.0
        return (self._mean - half, self._mean + half)


class TimeWeightedStat:
    """Time average of a piecewise-constant signal.

    Call :meth:`update` *before* the signal changes, passing the current
    virtual time; the value held since the previous update is weighted by
    the elapsed interval.
    """

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._value = initial_value
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self._max = initial_value

    def update(self, time: float, new_value: float) -> None:
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = new_value
        self._max = max(self._max, new_value)

    def finalize(self, time: float) -> None:
        """Extend the last-held value to the end of the run."""
        self.update(time, self._value)

    @property
    def current(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    def time_average(self, now: float | None = None) -> float:
        """Average over [start, now] (defaults to last update time)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("now precedes last update")
        duration = end - self._start
        if duration <= 0.0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / duration


class LossCounter:
    """Arrived / accepted / blocked bookkeeping with CI on the loss rate."""

    def __init__(self) -> None:
        self.arrived = 0
        self.blocked = 0

    def record(self, accepted: bool) -> None:
        self.arrived += 1
        if not accepted:
            self.blocked += 1

    @property
    def accepted(self) -> int:
        return self.arrived - self.blocked

    @property
    def loss_probability(self) -> float:
        if self.arrived == 0:
            return 0.0
        return self.blocked / self.arrived

    def loss_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval — behaves sensibly for rare losses."""
        n = self.arrived
        if n == 0:
            return (0.0, 1.0)
        p = self.loss_probability
        z2 = z * z
        denom = 1.0 + z2 / n
        centre = (p + z2 / (2.0 * n)) / denom
        half = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
        lo = max(0.0, centre - half)
        hi = min(1.0, centre + half)
        # At the boundaries the Wilson bound equals the boundary exactly
        # (centre ± half telescopes to 0 or 1); pin it there so floating-
        # point round-off cannot report an interval excluding the estimate.
        if self.blocked == 0:
            lo = 0.0
        if self.blocked == n:
            hi = 1.0
        return (lo, hi)
