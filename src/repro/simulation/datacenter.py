"""Executable data-center case study: dedicated vs consolidated scenarios.

This is the simulated counterpart of the paper's Section IV experiments:
build both deployment scenarios from the same :class:`ModelInputs` the
analytic model consumes, run them as loss networks, and report measured
loss probabilities, utilizations, and metered energy — the quantities
Figs. 10–13 compare.

Scenario construction mirrors Fig. 3:

- **dedicated** — every service gets its own island of servers; requests of
  one service can never use another island's capacity (one loss network per
  service, native serving rates ``mu_ij``);
- **consolidated** — one pooled loss network over ``N`` shared machines;
  every request may be served anywhere (capability flowing), at the
  virtualized rates ``mu_ij * a_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..cluster.pool import ServerPool
from ..cluster.power_meter import EnergyReading, PowerMeter, apply_platform_effect
from ..core.inputs import ModelInputs, ResourceKind, ServiceSpec
from ..core.power import ServerPowerModel
from .loss_network import LossNetwork, LossNetworkResult, ServiceTraffic

__all__ = ["ScenarioResult", "CaseStudyResult", "DataCenterSimulation"]


@dataclass(frozen=True)
class ScenarioResult:
    """Measured behaviour of one deployment scenario."""

    scenario: str
    servers: int
    per_service_loss: Mapping[str, float]
    per_service_loss_ci: Mapping[str, tuple[float, float]]
    per_service_throughput: Mapping[str, float]
    per_resource_utilization: Mapping[ResourceKind, float]
    energy: EnergyReading

    @property
    def worst_loss(self) -> float:
        return max(self.per_service_loss.values(), default=0.0)

    @property
    def total_throughput(self) -> float:
        return sum(self.per_service_throughput.values())


@dataclass(frozen=True)
class CaseStudyResult:
    """Both scenarios side by side (one Fig. 10/11-style comparison)."""

    dedicated: ScenarioResult
    consolidated: ScenarioResult

    @property
    def power_saving(self) -> float:
        """Fraction of total energy saved by consolidation (Fig. 12)."""
        de = self.dedicated.energy.total_energy
        if de == 0.0:
            return 0.0
        return (de - self.consolidated.energy.total_energy) / de

    @property
    def workload_power_saving(self) -> float:
        """Fraction of workload-attributed energy saved (Fig. 13)."""
        dw = self.dedicated.energy.workload_energy
        if dw == 0.0:
            return 0.0
        return (dw - self.consolidated.energy.workload_energy) / dw

    def utilization_improvement(self, resource: ResourceKind) -> float:
        """Measured ``U_N / U_M`` for one resource (the 1.7x claim)."""
        u_m = self.dedicated.per_resource_utilization.get(resource, 0.0)
        u_n = self.consolidated.per_resource_utilization.get(resource, 0.0)
        if u_m == 0.0:
            return float("inf") if u_n > 0.0 else 1.0
        return u_n / u_m


class DataCenterSimulation:
    """Build and run both scenarios from the analytic model's inputs.

    Parameters
    ----------
    inputs:
        The same services + loss target the analytic model sizes.
    power_model:
        Per-server linear power model for the metered fleets.
    xen_idle_factor, xen_workload_factor:
        Measured platform effects applied to the consolidated (Xen) fleet's
        power models (defaults reproduce the paper's 9% / 30%).
    """

    def __init__(
        self,
        inputs: ModelInputs,
        power_model: ServerPowerModel | None = None,
        xen_idle_factor: float = 0.91,
        xen_workload_factor: float = 0.70,
    ) -> None:
        self.inputs = inputs
        self.power_model = power_model or ServerPowerModel()
        self.xen_idle_factor = xen_idle_factor
        self.xen_workload_factor = xen_workload_factor

    # -- traffic construction ---------------------------------------------------

    def _native_traffic(self, service: ServiceSpec) -> ServiceTraffic:
        rates = {kind: service.mu(kind) for kind in service.service_rates}
        return ServiceTraffic.exponential(service.name, service.arrival_rate, rates)

    def _virtualized_traffic(self, service: ServiceSpec) -> ServiceTraffic:
        rates = {
            kind: service.effective_mu(kind) for kind in service.service_rates
        }
        return ServiceTraffic.exponential(service.name, service.arrival_rate, rates)

    # -- scenario runs -------------------------------------------------------------

    def run_dedicated(
        self,
        per_service_servers: Mapping[str, int],
        horizon: float,
        rng: np.random.Generator,
    ) -> ScenarioResult:
        """Run every service on its own island and aggregate the fleet view."""
        losses: dict[str, float] = {}
        cis: dict[str, tuple[float, float]] = {}
        throughput: dict[str, float] = {}
        total_servers = 0
        # Fleet utilization: per resource, busy-unit-seconds across islands
        # divided by fleet capacity (idle islands dilute it — that is the
        # waste the paper's Fig. 1(a) points at).
        busy_weighted: dict[ResourceKind, float] = {}
        for service in self.inputs.services:
            if service.name not in per_service_servers:
                raise KeyError(f"no server count given for service {service.name!r}")
            n_i = per_service_servers[service.name]
            if n_i < 1:
                raise ValueError(f"{service.name}: island needs >= 1 server, got {n_i}")
            total_servers += n_i
            network = LossNetwork(
                n_i,
                [self._native_traffic(service)],
                pool=f"dedicated:{service.name}",
                power_model=self.power_model,
            )
            result = network.run(horizon, rng)
            losses[service.name] = result.per_service_loss[service.name]
            cis[service.name] = result.per_service_loss_ci[service.name]
            accepted = (
                result.per_service_arrived[service.name]
                - result.per_service_blocked[service.name]
            )
            throughput[service.name] = accepted / horizon
            for kind, util in result.per_resource_utilization.items():
                busy_weighted[kind] = busy_weighted.get(kind, 0.0) + util * n_i
        fleet_util = {
            kind: busy / total_servers for kind, busy in busy_weighted.items()
        }
        energy = self._meter(total_servers, fleet_util, horizon, xen=False)
        return ScenarioResult(
            scenario="dedicated",
            servers=total_servers,
            per_service_loss=losses,
            per_service_loss_ci=cis,
            per_service_throughput=throughput,
            per_resource_utilization=fleet_util,
            energy=energy,
        )

    def run_consolidated(
        self, servers: int, horizon: float, rng: np.random.Generator
    ) -> ScenarioResult:
        """Run the pooled scenario on ``servers`` shared machines."""
        traffics = [self._virtualized_traffic(s) for s in self.inputs.services]
        network = LossNetwork(
            servers,
            traffics,
            pool="consolidated",
            power_model=self._xen_power_model(),
        )
        result = network.run(horizon, rng)
        throughput = {
            name: (result.per_service_arrived[name] - result.per_service_blocked[name])
            / horizon
            for name in result.per_service_arrived
        }
        energy = self._meter(
            servers, dict(result.per_resource_utilization), horizon, xen=True
        )
        return ScenarioResult(
            scenario="consolidated",
            servers=servers,
            per_service_loss=dict(result.per_service_loss),
            per_service_loss_ci=dict(result.per_service_loss_ci),
            per_service_throughput=throughput,
            per_resource_utilization=dict(result.per_resource_utilization),
            energy=energy,
        )

    def run_controlled(
        self,
        controller,
        horizon: float,
        rng: np.random.Generator,
        rate_schedule: Mapping[str, Sequence[tuple[float, float]]] | None = None,
    ) -> ScenarioResult:
        """Pooled scenario with a live consolidation controller attached.

        ``controller`` is a :class:`repro.control.controller
        .ConsolidationController` (or anything honouring the
        ``LossNetwork.run(control=...)`` duck type *plus* the energy
        ledger attributes used below).  The pool starts at the
        controller's powered count; from the first control tick onward
        the controller owns capacity.  Energy comes from the controller's
        own ledger — it meters boots, migrations, and the on/off schedule
        the static ``PowerMeter`` cannot see.
        """
        traffics = [self._virtualized_traffic(s) for s in self.inputs.services]
        servers = controller.fleet.powered_count
        network = LossNetwork(
            servers,
            traffics,
            pool="controlled",
            power_model=self._xen_power_model(),
        )
        result = network.run(
            horizon, rng, rate_schedule=rate_schedule, control=controller
        )
        throughput = {
            name: (result.per_service_arrived[name] - result.per_service_blocked[name])
            / horizon
            for name in result.per_service_arrived
        }
        period_s = controller.planner.period_length
        energy = EnergyReading(
            duration=controller.ticks * period_s,
            total_energy=controller.energy_j,
            idle_energy=controller.server_ticks
            * controller.planner.power_model.base_watts
            * period_s,
            samples=max(controller.ticks, 1),
        )
        return ScenarioResult(
            scenario="controlled",
            servers=servers,
            per_service_loss=dict(result.per_service_loss),
            per_service_loss_ci=dict(result.per_service_loss_ci),
            per_service_throughput=throughput,
            per_resource_utilization=dict(result.per_resource_utilization),
            energy=energy,
        )

    def run_case_study(
        self,
        per_service_servers: Mapping[str, int],
        consolidated_servers: int,
        horizon: float,
        rng: np.random.Generator,
    ) -> CaseStudyResult:
        """Both scenarios under one RNG stream (paper Figs. 10–13 shape)."""
        dedicated = self.run_dedicated(per_service_servers, horizon, rng)
        consolidated = self.run_consolidated(consolidated_servers, horizon, rng)
        return CaseStudyResult(dedicated=dedicated, consolidated=consolidated)

    def _xen_power_model(self) -> ServerPowerModel:
        """Per-server model with the measured Xen platform effects applied:
        idle draw scaled by ``xen_idle_factor``, dynamic range by
        ``xen_workload_factor`` (same algebra as ``apply_platform_effect``).
        Drives the consolidated pool's instantaneous power telemetry."""
        base = self.power_model.base_watts * self.xen_idle_factor
        dynamic = (
            self.power_model.max_watts - self.power_model.base_watts
        ) * self.xen_workload_factor
        return ServerPowerModel(base, base + dynamic)

    # -- power metering ---------------------------------------------------------------

    def _meter(
        self,
        servers: int,
        fleet_util: Mapping[ResourceKind, float],
        horizon: float,
        xen: bool,
    ) -> EnergyReading:
        resources = set(fleet_util) | {ResourceKind.CPU}
        pool = ServerPool.homogeneous(
            servers,
            capacity={kind: 1.0 for kind in resources},
            power_model=self.power_model,
        )
        if xen:
            apply_platform_effect(
                pool,
                idle_factor=self.xen_idle_factor,
                dynamic_factor=self.xen_workload_factor,
            )
        meter = PowerMeter(pool)
        meter.sample(0.0)
        for kind, util in fleet_util.items():
            pool.apply_uniform_load(kind, min(util, 1.0))
        meter.sample(0.0)
        meter.sample(horizon)
        return meter.reading()
