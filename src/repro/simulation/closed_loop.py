"""Closed-loop (finite-population) simulation — the TPC-W structure.

A fixed population of customers (emulated browsers) cycles forever:
think for an exponential ``think_time``, then visit each station in order
(FIFO queueing, exponential service), then think again.  Throughput is
interactions per second; with exponential assumptions the steady state is
product-form, so the exact-MVA results of :mod:`repro.queueing.mva` apply
— giving the validation pairing the tests exercise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .engine import Simulator
from .metrics import RunningStats, TimeWeightedStat

__all__ = ["ClosedLoopResult", "simulate_closed_loop"]


@dataclass(frozen=True)
class ClosedLoopResult:
    """Measured closed-loop behaviour."""

    population: int
    completed_cycles: int
    throughput: float
    mean_cycle_time: float
    per_station_utilization: Mapping[str, float]
    per_station_mean_queue: Mapping[str, float]


class _Station:
    def __init__(self, name: str, mean_service: float):
        self.name = name
        self.mean_service = mean_service
        self.queue: deque = deque()
        self.busy = False
        self.busy_stat = TimeWeightedStat(0.0, 0.0)
        self.queue_stat = TimeWeightedStat(0.0, 0.0)


def simulate_closed_loop(
    population: int,
    think_time: float,
    service_demands: Mapping[str, float],
    horizon: float,
    rng: np.random.Generator,
    warmup_fraction: float = 0.1,
) -> ClosedLoopResult:
    """Simulate the closed network on ``[0, horizon]``.

    ``service_demands[k]`` is station ``k``'s mean (exponential) service
    time; stations are visited in mapping order.  Cycle statistics exclude
    the warm-up prefix.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if think_time < 0.0:
        raise ValueError(f"think time must be non-negative, got {think_time}")
    if not service_demands:
        raise ValueError("at least one station required")
    for name, d in service_demands.items():
        if d <= 0.0:
            raise ValueError(f"demand for {name!r} must be positive, got {d}")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")

    sim = Simulator()
    stations = [_Station(k, d) for k, d in service_demands.items()]
    warmup_end = horizon * warmup_fraction
    cycles = RunningStats()
    completed = 0

    def begin_cycle() -> None:
        started = sim.now
        think = rng.exponential(think_time) if think_time > 0.0 else 0.0
        sim.schedule_in(think, lambda: enter_station(0, started))

    def enter_station(index: int, started: float) -> None:
        if index >= len(stations):
            nonlocal completed
            # Count completions inside the measurement window so the
            # throughput normalisation is exact.
            if warmup_end <= sim.now <= horizon:
                cycles.add(sim.now - started)
                completed += 1
            if sim.now < horizon:
                begin_cycle()
            return
        st = stations[index]
        if not st.busy:
            start_service(st, index, started)
        else:
            st.queue_stat.update(sim.now, len(st.queue) + 1)
            st.queue.append(started)

    def start_service(st: _Station, index: int, started: float) -> None:
        st.busy_stat.update(sim.now, 1.0)
        st.busy = True
        hold = rng.exponential(st.mean_service)
        sim.schedule_in(hold, lambda: finish_service(st, index, started))

    def finish_service(st: _Station, index: int, started: float) -> None:
        st.busy_stat.update(sim.now, 0.0)
        st.busy = False
        if st.queue:
            st.queue_stat.update(sim.now, len(st.queue) - 1)
            pending = st.queue.popleft()
            start_service(st, index, pending)
        enter_station(index + 1, started)

    for _ in range(population):
        begin_cycle()
    # Hard-stop measurement at the horizon; in-flight cycles are discarded
    # (steady-state rates are unaffected by the truncation).
    sim.run(until=horizon)
    end = horizon
    for st in stations:
        st.busy_stat.finalize(end)
        st.queue_stat.finalize(end)

    effective = horizon - warmup_end
    return ClosedLoopResult(
        population=population,
        completed_cycles=completed,
        throughput=completed / effective if effective > 0.0 else 0.0,
        mean_cycle_time=cycles.mean if cycles.count else 0.0,
        per_station_utilization={
            st.name: st.busy_stat.time_average(end) for st in stations
        },
        per_station_mean_queue={
            st.name: st.queue_stat.time_average(end) for st in stations
        },
    )
