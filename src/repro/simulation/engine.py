"""Minimal discrete-event simulation engine.

SimPy is not available in this environment, so the data-center simulation
runs on this small, dependency-free engine: a time-ordered heap of events,
each an opaque callback.  Determinism is guaranteed by a monotonically
increasing sequence number breaking time ties in insertion order, so runs
with a fixed RNG seed are exactly reproducible — a property the statistical
validation tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """Heap entry: ordered by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """Event loop with virtual time."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = ScheduledEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after a relative ``delay``."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the heap drains or virtual time passes ``until``.

        With ``until`` given, events scheduled at exactly ``until`` still
        execute; the clock is then advanced to ``until`` even if the last
        event fired earlier (so time-weighted statistics close correctly).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
