"""Minimal discrete-event simulation engine.

SimPy is not available in this environment, so the data-center simulation
runs on this small, dependency-free engine: a time-ordered heap of events,
each an opaque callback.  Determinism is guaranteed by a monotonically
increasing sequence number breaking time ties in insertion order, so runs
with a fixed RNG seed are exactly reproducible — a property the statistical
validation tests rely on.

Observability: when a real metrics registry is installed (see
:mod:`repro.obs`) *before* the simulator is constructed, the engine reports
events executed, cancelled-event skips, live heap depth, and virtual-time
progress.  The instrumented step is bound at construction, so with the
default null registry the hot loop runs the bare path — its only additions
over an uninstrumented engine are the live-event bookkeeping that keeps
:attr:`Simulator.pending` O(1) (guarded by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..obs import get_registry

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """Heap entry: ordered by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Owning simulator while the event is queued; cleared when it executes,
    # so a late cancel() of an already-fired event stays a harmless flag.
    sim: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._dead += 1


class Simulator:
    """Event loop with virtual time."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        # Cancelled events still sitting in the heap; pending is then the
        # O(1) difference len(heap) - dead instead of an O(n) scan.
        self._dead = 0
        registry = get_registry()
        if registry.enabled:
            self._c_executed = registry.counter(
                "sim_events_executed_total", help="events popped and run"
            )
            self._c_skipped = registry.counter(
                "sim_events_skipped_total", help="cancelled events discarded on pop"
            )
            self._g_pending = registry.gauge(
                "sim_pending_events", help="live (uncancelled) events queued"
            )
            self._g_now = registry.gauge(
                "sim_virtual_time", help="current virtual time of the simulator"
            )
            # Shadow the class method so the disabled path never branches.
            self.step = self._step_instrumented  # type: ignore[method-assign]

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = ScheduledEvent(
            time=time, seq=next(self._seq), callback=callback, sim=self
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after a relative ``delay``."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                continue
            event.sim = None
            self._now = event.time
            event.callback()
            return True
        return False

    def _step_instrumented(self) -> bool:
        """Step variant installed when a real registry is active."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                self._c_skipped.inc()
                continue
            event.sim = None
            self._now = event.time
            self._c_executed.inc()
            self._g_pending.set(len(self._heap) - self._dead)
            self._g_now.set(self._now)
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the heap drains or virtual time passes ``until``.

        With ``until`` given, events scheduled at exactly ``until`` still
        execute; the clock is then advanced to ``until`` even if the last
        event fired earlier (so time-weighted statistics close correctly).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        step = self.step
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1): cancellations are
        counted as they happen instead of scanning the heap)."""
        return len(self._heap) - self._dead
