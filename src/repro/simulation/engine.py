"""Minimal discrete-event simulation engine.

SimPy is not available in this environment, so the data-center simulation
runs on this small, dependency-free engine: a time-ordered heap of events,
each an opaque callback.  Determinism is guaranteed by a monotonically
increasing sequence number breaking time ties in insertion order, so runs
with a fixed RNG seed are exactly reproducible — a property the statistical
validation tests rely on.

Observability: when a real metrics registry is installed (see
:mod:`repro.obs`) *before* the simulator is constructed, the engine reports
events executed, cancelled-event skips, live heap depth, and virtual-time
progress.  The instrumented step is bound at construction, so with the
default null registry the hot loop runs the bare path — its only additions
over an uninstrumented engine are the live-event bookkeeping that keeps
:attr:`Simulator.pending` O(1) (guarded by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..obs import get_bus, get_registry

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """Heap entry: ordered by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Owning simulator while the event is queued; cleared when it executes,
    # so a late cancel() of an already-fired event stays a harmless flag.
    sim: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._dead += 1


class Simulator:
    """Event loop with virtual time."""

    # Registry instruments; None when only the telemetry bus is enabled, so
    # _step_telemetry can serve both configurations with one bound method.
    _c_executed = None
    _c_skipped = None
    _g_pending = None
    _g_now = None

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        # Cancelled events still sitting in the heap; pending is then the
        # O(1) difference len(heap) - dead instead of an O(n) scan.
        self._dead = 0
        registry = get_registry()
        if registry.enabled:
            self._c_executed = registry.counter(
                "sim_events_executed_total", help="events popped and run"
            )
            self._c_skipped = registry.counter(
                "sim_events_skipped_total", help="cancelled events discarded on pop"
            )
            self._g_pending = registry.gauge(
                "sim_pending_events", help="live (uncancelled) events queued"
            )
            self._g_now = registry.gauge(
                "sim_virtual_time", help="current virtual time of the simulator"
            )
            # Shadow the class method so the disabled path never branches.
            self.step = self._step_instrumented  # type: ignore[method-assign]
        bus = get_bus()
        if bus.enabled:
            bus.attach_simulator(self)
            self._ts_executed = bus.counter("engine.events", {"kind": "executed"})
            self._ts_skipped_add = bus.counter(
                "engine.events", {"kind": "skipped"}
            ).add
            # Cached bucket window [lo, hi, values, idx] for the
            # executed-events series: the hot loop increments the current
            # bucket with plain float compares (no method call, no
            # division) and falls back to the series' own add() only when
            # an event crosses a bucket boundary.  Refreshed on every
            # miss, so decimation inside add() — which swaps the value
            # list and doubles the width — is picked up.
            self._ts_cache: list = [0.0, -1.0, None, 0]
            self._bind_telemetry_step()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = ScheduledEvent(
            time=time, seq=next(self._seq), callback=callback, sim=self
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after a relative ``delay``."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                continue
            event.sim = None
            self._now = event.time
            event.callback()
            return True
        return False

    def _step_instrumented(self) -> bool:
        """Step variant installed when a real registry is active."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                self._c_skipped.inc()
                continue
            event.sim = None
            self._now = event.time
            self._c_executed.inc()
            self._g_pending.set(len(self._heap) - self._dead)
            self._g_now.set(self._now)
            event.callback()
            return True
        return False

    def _bind_telemetry_step(self) -> None:
        """Install the telemetry step as a closure over hot-loop state.

        The per-event budget here is tight (the bench asserts telemetry
        stays within 15% of the disabled engine), and on CPython closure
        cells are several times cheaper to read than instance attributes —
        so everything the loop touches every event is captured in cells.
        The closure also drives the registry instruments (if any), so the
        two instrumented step variants never need to compose.
        """
        heap = self._heap
        pop = heapq.heappop
        cache = self._ts_cache
        miss = self._ts_miss
        skipped_add = self._ts_skipped_add
        c_executed = self._c_executed
        c_skipped = self._c_skipped
        g_pending = self._g_pending
        g_now = self._g_now

        def step() -> bool:
            while heap:
                event = pop(heap)
                if event.cancelled:
                    self._dead -= 1
                    skipped_add(self._now)
                    if c_skipped is not None:
                        c_skipped.inc()
                    continue
                event.sim = None
                t = event.time
                self._now = t
                if cache[0] <= t < cache[1]:
                    cache[2][cache[3]] += 1.0
                else:
                    miss(t)
                if c_executed is not None:
                    c_executed.inc()
                    g_pending.set(len(heap) - self._dead)
                    g_now.set(t)
                event.callback()
                return True
            return False

        self.step = step  # type: ignore[method-assign]

    def _ts_miss(self, t: float) -> None:
        """Slow path of the telemetry step: record the event through the
        series API, then re-cache the bucket window it landed in."""
        series = self._ts_executed
        series.add(t)
        width = series.bucket_width
        idx = int(t / width)
        cache = self._ts_cache
        cache[0] = idx * width
        cache[1] = cache[0] + width
        cache[2] = series._values
        cache[3] = idx

    def run(self, until: float | None = None) -> None:
        """Run events until the heap drains or virtual time passes ``until``.

        With ``until`` given, events scheduled at exactly ``until`` still
        execute; the clock is then advanced to ``until`` even if the last
        event fired earlier (so time-weighted statistics close correctly).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        step = self.step
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1): cancellations are
        counted as they happen instead of scanning the heap)."""
        return len(self._heap) - self._dead
