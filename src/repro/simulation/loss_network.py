"""Loss-system and loss-network simulations.

Two levels of fidelity:

- :func:`simulate_loss_system` — a fast, heap-based simulation of a single
  ``n``-server loss station fed by explicit arrival times.  No generic
  event loop: arrivals are processed in order while a min-heap tracks busy
  servers' departure times, giving ``O(K log n)`` for ``K`` arrivals.  Used
  to validate the Erlang-B formula (including its insensitivity to the
  service-time law) at scale.

- :class:`LossNetwork` — a multi-resource loss network on the generic DES
  engine: each physical-server pool exposes ``n`` units of *each* resource
  kind; a request of service ``i`` simultaneously occupies one unit of
  every resource it touches, for independently drawn holding times, and is
  blocked (lost) if *any* required resource has no free unit.  This is the
  closest executable reading of the paper's Fig. 3(b) picture: requests
  dispatched to VMs whose capability flows freely across the pooled
  machines, queued/blocked per physical resource.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.inputs import ResourceKind
from ..core.power import ServerPowerModel
from ..obs import get_bus
from ..queueing.distributions import Distribution, Exponential, as_distribution
from .engine import Simulator
from .metrics import LossCounter, TimeWeightedStat

__all__ = [
    "LossSystemResult",
    "simulate_loss_system",
    "ServiceTraffic",
    "LossNetworkResult",
    "LossNetwork",
]


@dataclass(frozen=True)
class LossSystemResult:
    """Outcome of a single-station loss simulation."""

    servers: int
    arrived: int
    blocked: int
    duration: float
    busy_time_average: float

    @property
    def loss_probability(self) -> float:
        if self.arrived == 0:
            return 0.0
        return self.blocked / self.arrived

    @property
    def utilization(self) -> float:
        if self.servers == 0:
            return 0.0
        return self.busy_time_average / self.servers


def simulate_loss_system(
    arrivals: np.ndarray,
    service: Distribution | float,
    servers: int,
    rng: np.random.Generator,
) -> LossSystemResult:
    """Simulate an ``n``-server loss station over explicit arrival times.

    ``service`` may be a :class:`Distribution` or a number (exponential
    mean).  Holding times are pre-drawn in one vectorised call; the loop
    only manages the departure heap.
    """
    if servers < 0:
        raise ValueError(f"servers must be non-negative, got {servers}")
    times = np.asarray(arrivals, dtype=float)
    if times.size and (np.diff(times) < 0).any():
        raise ValueError("arrival times must be sorted")
    dist = as_distribution(service)
    holds = np.atleast_1d(np.asarray(dist.sample(rng, times.size), dtype=float)) if times.size else np.empty(0)

    busy: list[float] = []  # departure-time min-heap
    blocked = 0
    busy_area = 0.0
    last_t = times[0] if times.size else 0.0
    start_t = last_t
    for t, h in zip(times, holds):
        busy_area += len(busy) * (t - last_t)
        last_t = t
        while busy and busy[0] <= t:
            dep = heapq.heappop(busy)
            # Integrate the step down at the departure instant: the interval
            # [dep, t] had one fewer busy server than counted above.
            busy_area -= t - dep
        if len(busy) < servers:
            heapq.heappush(busy, t + h)
        else:
            blocked += 1
    # Drain remaining departures to close the busy-time integral.
    end_t = last_t
    while busy:
        dep = heapq.heappop(busy)
        if dep > end_t:
            busy_area += (dep - end_t) * (len(busy) + 1)
            end_t = dep
    duration = max(end_t - start_t, 0.0)
    avg_busy = busy_area / duration if duration > 0.0 else 0.0
    return LossSystemResult(
        servers=servers,
        arrived=int(times.size),
        blocked=blocked,
        duration=duration,
        busy_time_average=avg_busy,
    )


@dataclass(frozen=True)
class ServiceTraffic:
    """Simulation-side description of one service's traffic.

    ``holding`` maps each resource the service touches to the distribution
    of its holding time on that resource (mean ``1/(mu_ij * a_ij)`` in the
    consolidated scenario, ``1/mu_ij`` dedicated).
    """

    name: str
    arrival_rate: float
    holding: Mapping[ResourceKind, Distribution]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.arrival_rate < 0.0:
            raise ValueError(f"{self.name}: arrival rate must be non-negative")
        holding = dict(self.holding)
        if not holding:
            raise ValueError(f"{self.name}: at least one resource holding time required")
        object.__setattr__(self, "holding", holding)

    @classmethod
    def exponential(
        cls, name: str, arrival_rate: float, rates: Mapping[ResourceKind, float]
    ) -> "ServiceTraffic":
        """Markovian traffic: exponential holding at the given rates.

        Infinite rates (untouched resources) are dropped.
        """
        holding = {
            kind: Exponential(rate)
            for kind, rate in rates.items()
            if not math.isinf(rate)
        }
        if not holding:
            raise ValueError(f"{name}: no finite resource rates")
        return cls(name=name, arrival_rate=arrival_rate, holding=holding)


@dataclass
class _ResourceState:
    capacity: int
    in_use: int = 0
    busy_stat: TimeWeightedStat | None = None


@dataclass(frozen=True)
class LossNetworkResult:
    """Measured behaviour of one loss-network run."""

    servers: int
    duration: float
    per_service_loss: Mapping[str, float]
    per_service_arrived: Mapping[str, int]
    per_service_blocked: Mapping[str, int]
    per_resource_utilization: Mapping[ResourceKind, float]
    per_service_loss_ci: Mapping[str, tuple[float, float]]

    @property
    def overall_loss(self) -> float:
        arrived = sum(self.per_service_arrived.values())
        blocked = sum(self.per_service_blocked.values())
        return blocked / arrived if arrived else 0.0

    @property
    def total_arrived(self) -> int:
        return sum(self.per_service_arrived.values())

    @property
    def total_blocked(self) -> int:
        return sum(self.per_service_blocked.values())


class LossNetwork:
    """Multi-resource loss network over a pool of ``servers`` machines.

    Each machine contributes one normalized unit of every resource kind, so
    resource ``j`` is a pool of ``servers`` units.  An arriving request of
    service ``i``:

    1. checks every resource in its holding map — if any has no free unit,
       the request is lost (counted per service);
    2. otherwise occupies one unit of each, releasing each after an
       independently drawn holding time.

    With a single resource kind this reduces exactly to the Erlang loss
    system; with several it is the standard loss-network generalisation,
    whose per-resource marginal blocking the Erlang fixed-point approximates
    — the paper's per-resource sizing is precisely that approximation plus
    a max over resources.
    """

    def __init__(
        self,
        servers: int,
        services: Sequence[ServiceTraffic],
        *,
        pool: str = "pool",
        power_model: ServerPowerModel | None = None,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if not services:
            raise ValueError("at least one service required")
        names = [s.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names: {names}")
        self.servers = servers
        self.services = tuple(services)
        self.pool = pool
        self.power_model = power_model
        self.resources: tuple[ResourceKind, ...] = tuple(
            {kind: None for s in services for kind in s.holding}
        )
        # Construct-time telemetry binding (see repro.obs.timeseries): the
        # bus active *now* records this network's runs; with the default
        # null bus the run loop takes the untelemetered closures below.
        self._bus = get_bus()

    @staticmethod
    def _compile_rate_schedule(
        rate_schedule: Mapping[str, Sequence[tuple[float, float]]] | None,
        names: set[str],
    ) -> dict[str, tuple[list[float], list[float], float]]:
        """Validate and index piecewise-constant rate steps per service."""
        if not rate_schedule:
            return {}
        compiled: dict[str, tuple[list[float], list[float], float]] = {}
        for name, steps in rate_schedule.items():
            if name not in names:
                raise ValueError(
                    f"rate schedule names unknown service {name!r}; "
                    f"have {sorted(names)}"
                )
            pairs = sorted((float(t), float(r)) for t, r in steps)
            if not pairs:
                raise ValueError(f"{name}: rate schedule must be non-empty")
            for when, rate in pairs:
                if when < 0.0:
                    raise ValueError(f"{name}: schedule times must be >= 0, got {when}")
                if rate < 0.0:
                    raise ValueError(f"{name}: rates must be >= 0, got {rate}")
            peak = max(rate for _, rate in pairs)
            if peak <= 0.0:
                raise ValueError(f"{name}: rate schedule is identically zero")
            compiled[name] = (
                [when for when, _ in pairs],
                [rate for _, rate in pairs],
                peak,
            )
        return compiled

    def run(
        self,
        horizon: float,
        rng: np.random.Generator,
        capacity_schedule: Sequence[tuple[float, int]] = (),
        rate_schedule: Mapping[str, Sequence[tuple[float, float]]] | None = None,
        control=None,
    ) -> LossNetworkResult:
        """Simulate ``[0, horizon]`` of virtual time.

        ``capacity_schedule`` optionally changes the pool size mid-run:
        each ``(time, servers)`` entry sets the machine count from that
        instant on (failure injection when shrinking, repair/boot when
        growing).  In-flight requests on removed machines are allowed to
        drain — capacity reductions only gate *new* admissions, the
        graceful-decommission semantics of live migration.

        ``rate_schedule`` makes named services' arrival streams
        nonhomogeneous Poisson: per service, sorted ``(time, rate)`` steps
        hold from each time onward (rate 0 before the first).  Arrivals are
        generated by thinning — candidates drawn at the schedule's peak
        rate, each accepted with probability ``rate(t)/peak`` — so a
        constant schedule reproduces the homogeneous distribution.
        Services without an entry keep their homogeneous
        ``arrival_rate`` stream on the byte-identical legacy RNG path.

        ``control`` attaches a consolidation controller to the pool (duck
        typed: ``.interval`` in virtual-time units and ``.tick(t, rates,
        busy) -> servers``, the contract of
        :class:`repro.control.controller.ConsolidationController`).  Every
        ``interval`` the run measures each service's arrival rate and the
        bottleneck resource's mean busy level over the elapsed window,
        hands them to the controller, and applies the returned pool size
        through the same graceful-drain machinery as
        ``capacity_schedule``.  The network's ``servers`` should equal the
        controller's initial powered count — the controller's fleet is the
        authority on capacity from the first tick onward.
        """
        if horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        schedule = sorted(capacity_schedule)
        for when, count in schedule:
            if when < 0.0:
                raise ValueError(f"schedule times must be >= 0, got {when}")
            if count < 0:
                raise ValueError(f"scheduled capacity must be >= 0, got {count}")
        thinned = self._compile_rate_schedule(
            rate_schedule, {s.name for s in self.services}
        )
        sim = Simulator()
        states = {
            kind: _ResourceState(
                capacity=self.servers, busy_stat=TimeWeightedStat(0.0, 0.0)
            )
            for kind in self.resources
        }
        counters = {s.name: LossCounter() for s in self.services}

        # Telemetry series (construct-time-bound bus; all no-ops when the
        # bus is the null singleton, and `telemetry` keeps even the no-op
        # calls off the disabled hot path).
        bus = self._bus
        telemetry = bus.enabled
        own_gauges: list = []
        if telemetry:
            bus.attach_simulator(sim)
            pool_labels = {"pool": self.pool}
            occ_g = {
                kind: bus.gauge(
                    "pool.occupancy", {"pool": self.pool, "resource": kind.value}
                )
                for kind in self.resources
            }
            cap_g = bus.gauge("pool.capacity", pool_labels)
            busy_g = bus.gauge("pool.busy_servers", pool_labels)
            arr_c = {
                s.name: bus.counter(
                    "pool.arrivals", {"pool": self.pool, "service": s.name}
                )
                for s in self.services
            }
            adm_c = {
                s.name: bus.counter(
                    "pool.admits", {"pool": self.pool, "service": s.name}
                )
                for s in self.services
            }
            los_c = {
                s.name: bus.counter(
                    "pool.losses", {"pool": self.pool, "service": s.name}
                )
                for s in self.services
            }
            pm = self.power_model
            pow_g = bus.gauge("pool.power_watts", pool_labels) if pm else None
            own_gauges = list(occ_g.values()) + [cap_g, busy_g]
            cap_g.set(0.0, float(self.servers))
            if pow_g is not None:
                own_gauges.append(pow_g)
                pow_g.set(0.0, self.servers * pm.base_watts)

            def record_level() -> None:
                busy = max(st.in_use for st in states.values())
                capacity = next(iter(states.values())).capacity
                busy_g.set(sim.now, float(busy))
                if pow_g is not None:
                    pow_g.set(
                        sim.now,
                        capacity * pm.base_watts
                        + (pm.max_watts - pm.base_watts) * min(busy, capacity),
                    )

        peak_capacity = [self.servers]

        def set_capacity(count: int) -> None:
            for st in states.values():
                st.capacity = count
            peak_capacity[0] = max(peak_capacity[0], count)
            if telemetry:
                cap_g.set(sim.now, float(count))
                record_level()

        for when, count in schedule:
            if when <= horizon:
                sim.schedule_at(when, lambda c=count: set_capacity(c))

        if control is not None:
            interval = float(control.interval)
            if interval <= 0.0:
                raise ValueError(f"control interval must be positive, got {interval}")
            ctl_arrived = {name: 0 for name in counters}
            ctl_area = [0.0]

            def control_tick() -> None:
                t = sim.now
                rates = {}
                for name, counter in counters.items():
                    rates[name] = (counter.arrived - ctl_arrived[name]) / interval
                    ctl_arrived[name] = counter.arrived
                # Window-mean busy on the bottleneck resource: difference of
                # the cumulative busy integral (time_average over [0, t]
                # times t) across the window.
                area = (
                    max(st.busy_stat.time_average(t) * t for st in states.values())
                    if t > 0.0
                    else 0.0
                )
                busy = (area - ctl_area[0]) / interval
                ctl_area[0] = area
                servers_on = int(control.tick(t, rates, busy))
                if servers_on < 1:
                    raise ValueError(
                        f"controller returned non-positive capacity {servers_on}"
                    )
                if servers_on != next(iter(states.values())).capacity:
                    set_capacity(servers_on)
                if t + interval <= horizon:
                    sim.schedule_in(interval, control_tick)

            sim.schedule_at(interval, control_tick)

        def release(kind: ResourceKind) -> None:
            st = states[kind]
            st.busy_stat.update(sim.now, st.in_use - 1)
            st.in_use -= 1
            if telemetry:
                occ_g[kind].set(sim.now, float(st.in_use))
                record_level()

        def next_thinned(name: str) -> float | None:
            """Next accepted arrival after ``sim.now`` (or None past the
            horizon) for a rate-scheduled service."""
            times, rates, peak = thinned[name]
            t = sim.now
            while True:
                t += rng.exponential(1.0 / peak)
                if t > horizon:
                    return None
                idx = bisect_right(times, t) - 1
                rate = rates[idx] if idx >= 0 else 0.0
                if rng.random() * peak < rate:
                    return t

        def arrive(service: ServiceTraffic) -> None:
            needed = list(service.holding)
            if telemetry:
                arr_c[service.name].add(sim.now)
            if all(states[k].in_use < states[k].capacity for k in needed):
                counters[service.name].record(True)
                for kind in needed:
                    st = states[kind]
                    st.busy_stat.update(sim.now, st.in_use + 1)
                    st.in_use += 1
                    hold = float(service.holding[kind].sample(rng))
                    sim.schedule_in(hold, lambda k=kind: release(k))
                if telemetry:
                    adm_c[service.name].add(sim.now)
                    for kind in needed:
                        occ_g[kind].set(sim.now, float(states[kind].in_use))
                    record_level()
            else:
                counters[service.name].record(False)
                if telemetry:
                    los_c[service.name].add(sim.now)
            # Next arrival of this service (per-service Poisson stream,
            # thinned against the rate schedule when one is given).
            if service.name in thinned:
                nxt = next_thinned(service.name)
                if nxt is not None:
                    sim.schedule_at(nxt, lambda s=service: arrive(s))
            elif service.arrival_rate > 0.0:
                gap = rng.exponential(1.0 / service.arrival_rate)
                if sim.now + gap <= horizon:
                    sim.schedule_in(gap, lambda s=service: arrive(s))

        for service in self.services:
            if service.name in thinned:
                first = next_thinned(service.name)
                if first is not None:
                    sim.schedule_at(first, lambda s=service: arrive(s))
            elif service.arrival_rate > 0.0:
                first = rng.exponential(1.0 / service.arrival_rate)
                if first <= horizon:
                    sim.schedule_at(first, lambda s=service: arrive(s))

        sim.run()
        end = max(sim.now, horizon)
        for st in states.values():
            st.busy_stat.finalize(end)
        # Close only this network's gauges: other pools sharing the bus may
        # still be mid-run on their own virtual timelines.
        for gauge in own_gauges:
            gauge.finalize(end)

        return LossNetworkResult(
            servers=self.servers,
            duration=end,
            per_service_loss={
                name: c.loss_probability for name, c in counters.items()
            },
            per_service_arrived={name: c.arrived for name, c in counters.items()},
            per_service_blocked={name: c.blocked for name, c in counters.items()},
            per_resource_utilization={
                # Normalised by the largest pool size the run ever had
                # (scheduled or controller-driven), so utilization stays in
                # [0, 1] under capacity changes.
                kind: st.busy_stat.time_average(end) / max(peak_capacity[0], 1)
                for kind, st in states.items()
            },
            per_service_loss_ci={
                name: c.loss_confidence_interval() for name, c in counters.items()
            },
        )
