"""Registered benchmarks for the parallel sweep engine.

These live in ``src`` (not ``benchmarks/``) so both entry points share one
workload definition without double-registering:

- ``repro-bench run`` imports this module before snapshotting the
  :func:`repro.obs.bench.bench` registry, picking up the two registered
  specs below;
- ``benchmarks/bench_parallel_sweep.py`` wraps the same workload in
  pytest-benchmark style tests for the discovered on-disk suite.

The workload is a grid of Erlang-B inversions through the *uncached*
:func:`repro.queueing.erlang.min_servers` — memoization would turn every
repeat after the first into a dictionary lookup and the serial-vs-parallel
comparison would measure nothing.  The serial and jobs=4 variants run the
identical grid, so the BENCH artifact records both throughputs side by
side and their ratio is the pool speedup on that machine (>= 2x on the
multi-core CI runners; a single-core box shows pool overhead instead,
which is itself worth tracking).
"""

from __future__ import annotations

from ..obs.bench import bench
from ..queueing.erlang import erlang_b, min_servers
from .sweep import sweep_map

__all__ = [
    "GRID",
    "bench_parallel_sweep_jobs4",
    "bench_parallel_sweep_serial",
    "run_sweep",
]

#: Offered loads spanning the model's operating range (small web islands
#: up to consolidated fleets).  96 tasks keeps one serial pass ~O(100ms)
#: while giving a 4-way pool enough work to amortize fork/submit overhead.
GRID = tuple(2.0 + 3.7 * i for i in range(96))


def _invert(rho: float) -> tuple[int, float]:
    """One grid task: size a fleet, then verify the blocking it delivers."""
    servers = min_servers(rho, 0.01)
    return servers, erlang_b(servers, rho)


def run_sweep(jobs: int) -> list[tuple[int, float]]:
    """Run the benchmark grid at ``jobs`` workers (deterministic output)."""
    return sweep_map(_invert, GRID, jobs=jobs, name=f"bench:jobs{jobs}")


@bench(name="parallel_sweep::serial", group="parallel-sweep")
def bench_parallel_sweep_serial() -> list[tuple[int, float]]:
    return run_sweep(1)


@bench(name="parallel_sweep::jobs4", group="parallel-sweep")
def bench_parallel_sweep_jobs4() -> list[tuple[int, float]]:
    return run_sweep(4)
