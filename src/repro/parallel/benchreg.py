"""Registered benchmarks for the parallel sweep engine.

These live in ``src`` (not ``benchmarks/``) so both entry points share one
workload definition without double-registering:

- ``repro-bench run`` imports this module before snapshotting the
  :func:`repro.obs.bench.bench` registry, picking up the two registered
  specs below;
- ``benchmarks/bench_parallel_sweep.py`` wraps the same workload in
  pytest-benchmark style tests for the discovered on-disk suite.

The workload is a grid of Erlang-B inversions through the *uncached*
:func:`repro.queueing.erlang.min_servers` — memoization would turn every
repeat after the first into a dictionary lookup and the serial-vs-parallel
comparison would measure nothing.  The serial and jobs=4 variants run the
identical grid, so the BENCH artifact records both throughputs side by
side and their ratio is the pool speedup on that machine (>= 2x on the
multi-core CI runners; a single-core box shows pool overhead instead,
which is itself worth tracking).
"""

from __future__ import annotations

import numpy as np

from ..obs.bench import bench
from ..queueing import vectorized
from ..queueing.erlang import erlang_b, min_servers
from .sweep import sweep_map

__all__ = [
    "GRID",
    "VEC_GRID_POINTS",
    "VEC_GRID_MILLION",
    "bench_parallel_sweep_jobs4",
    "bench_parallel_sweep_serial",
    "bench_vectorized_grid_million",
    "bench_vectorized_grid_scalar",
    "bench_vectorized_grid_vectorized",
    "run_sweep",
    "solve_grid_scalar",
    "solve_grid_vectorized",
    "vec_grid",
]

#: Offered loads spanning the model's operating range (small web islands
#: up to consolidated fleets).  96 tasks keeps one serial pass ~O(100ms)
#: while giving a 4-way pool enough work to amortize fork/submit overhead.
GRID = tuple(2.0 + 3.7 * i for i in range(96))


def _invert(rho: float) -> tuple[int, float]:
    """One grid task: size a fleet, then verify the blocking it delivers."""
    servers = min_servers(rho, 0.01)
    return servers, erlang_b(servers, rho)


def run_sweep(jobs: int) -> list[tuple[int, float]]:
    """Run the benchmark grid at ``jobs`` workers (deterministic output)."""
    return sweep_map(_invert, GRID, jobs=jobs, name=f"bench:jobs{jobs}")


@bench(name="parallel_sweep::serial", group="parallel-sweep")
def bench_parallel_sweep_serial() -> list[tuple[int, float]]:
    return run_sweep(1)


@bench(name="parallel_sweep::jobs4", group="parallel-sweep")
def bench_parallel_sweep_jobs4() -> list[tuple[int, float]]:
    return run_sweep(4)


# -- vectorized grid: one batched call vs a per-point scalar loop --------------
#
# The ``vectorized_grid::*`` pair backs the CI throughput-ratio gate: the
# batched lockstep kernel must stay >= 10x the scalar loop on the
# 100k-point grid (see ``repro-bench ratio``).  Both run the identical
# deterministic grid through the *uncached* entry points, so the artifact
# measures arithmetic dispatch, not memoization.

#: Grid size of the ratio-gated pair.
VEC_GRID_POINTS = 100_000
#: Grid size of the headline single-call benchmark (acceptance: < 60 s).
VEC_GRID_MILLION = 1_000_000


def vec_grid(points: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic (rho, B) grid over the model's operating range."""
    rho = np.linspace(0.5, 120.0, points)
    target = np.full(points, 0.01)
    return rho, target


def solve_grid_scalar(points: int) -> np.ndarray:
    """The pre-vectorization idiom: one scalar inversion per grid point."""
    rho, target = vec_grid(points)
    return np.asarray(
        [min_servers(float(r), float(t)) for r, t in zip(rho, target)],
        dtype=np.int64,
    )


def solve_grid_vectorized(points: int) -> np.ndarray:
    """The batched idiom: the whole grid in one lockstep call."""
    rho, target = vec_grid(points)
    return vectorized.min_servers(rho, target)


@bench(name="vectorized_grid::scalar", group="vectorized-grid")
def bench_vectorized_grid_scalar() -> np.ndarray:
    return solve_grid_scalar(VEC_GRID_POINTS)


@bench(name="vectorized_grid::vectorized", group="vectorized-grid")
def bench_vectorized_grid_vectorized() -> np.ndarray:
    return solve_grid_vectorized(VEC_GRID_POINTS)


@bench(name="vectorized_grid::vectorized_1m", group="vectorized-grid")
def bench_vectorized_grid_million() -> np.ndarray:
    return solve_grid_vectorized(VEC_GRID_MILLION)
