"""Process-pool sweep engine with a bit-identical serial reference path.

Every application of the paper's model (Sections III–V) is a dense
parameter sweep: server-count curves, utilization/power ratios, QoS
bounds.  Each point is cheap but independent, so the sweep fans out
across cores — under one hard contract: **the parallel result is
bit-identical to the serial one**.

Three ingredients enforce the contract:

- :func:`seed_for` derives every task's RNG seed from ``(base_seed,
  task_index)`` alone — not from the chunk it lands in, the worker that
  runs it, or the order it completes — so any partitioning of the grid
  sees the same random streams;
- :func:`chunk_grid` splits the grid into contiguous chunks that remember
  their start index, so results can be stitched back in submission order;
- :class:`ParallelSweep` runs chunks via
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` runs the
  same chunk code inline, which *is* the serial reference) and merges
  chunk outputs in submission order.

Cache accounting: chunks that execute in *worker processes* mutate the
workers' own shared-cache counters, which the parent cannot see, so each
chunk ships its hit/miss/eviction deltas back with its results and the
sweep folds them into the parent's metrics registry (label
``origin="workers"``).  Chunks run inline mutate the parent's cache
directly; those counters reach the registry through
:func:`repro.parallel.cache.record_cache_metrics` (label
``origin="parent"``), so nothing is ever counted twice.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from math import ceil
from time import perf_counter
from typing import Any, Callable, Iterator, Sequence

from ..obs import get_registry, get_trace
from .cache import shared_cache

__all__ = [
    "seed_for",
    "chunk_grid",
    "ParallelSweep",
    "SweepStats",
    "sweep_map",
    "sweep_grid",
]


def seed_for(base_seed: int, task_index: int) -> int:
    """Deterministic 64-bit seed for one grid point.

    Depends only on ``(base_seed, task_index)`` — hashed through SHA-256
    so neighbouring task indices get uncorrelated streams — and therefore
    survives any re-chunking or re-ordering of the sweep.  This is the
    keystone of the ``jobs=N == jobs=1`` guarantee for seeded tasks.
    """
    if task_index < 0:
        raise ValueError(f"task index must be non-negative, got {task_index}")
    payload = f"repro.parallel:{base_seed}:{task_index}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def chunk_grid(grid: Sequence[Any], chunk_size: int) -> Iterator[tuple[int, list]]:
    """Split ``grid`` into contiguous ``(start_index, items)`` chunks."""
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    for start in range(0, len(grid), chunk_size):
        yield start, list(grid[start : start + chunk_size])


def _run_chunk(
    fn: Callable[..., Any],
    base_seed: int | None,
    start_index: int,
    items: list,
) -> tuple[list, dict[str, int]]:
    """Run one contiguous chunk; returns results + cache-stat deltas.

    Module-level so it pickles for the process pool; the serial path runs
    this same code inline, so both paths execute identical calls.
    """
    cache = shared_cache()
    before = cache.stats()
    results = []
    for offset, item in enumerate(items):
        if base_seed is None:
            results.append(fn(item))
        else:
            results.append(fn(item, seed=seed_for(base_seed, start_index + offset)))
    after = cache.stats()
    delta = {key: after[key] - before[key] for key in ("hits", "misses", "evictions")}
    return results, delta


def _run_grid_chunk(
    fn: Callable[..., Any],
    base_seed: int | None,
    start_index: int,
    block: Any,
) -> tuple[list, dict[str, int]]:
    """Run one contiguous column block; returns results + cache deltas.

    The columnar analogue of :func:`_run_chunk`: ``fn`` receives the whole
    block (a :class:`repro.experiments.base.ParamGrid` slice) at once,
    plus per-row seeds derived from the rows' positions in the *original*
    grid — the same ``seed_for(base_seed, index)`` values the per-point
    path would have used, so block boundaries cannot perturb any random
    stream.  ``fn`` must return one result per row.
    """
    cache = shared_cache()
    before = cache.stats()
    if base_seed is None:
        results = list(fn(block))
    else:
        seeds = [seed_for(base_seed, start_index + i) for i in range(len(block))]
        results = list(fn(block, seeds=seeds))
    if len(results) != len(block):
        raise ValueError(
            f"grid task returned {len(results)} results for a "
            f"{len(block)}-row block"
        )
    after = cache.stats()
    delta = {key: after[key] - before[key] for key in ("hits", "misses", "evictions")}
    return results, delta


@dataclass
class SweepStats:
    """Accounting for one :meth:`ParallelSweep.run` call.

    ``cache_*`` totals cover the whole run regardless of where chunks
    executed: inline chunks are measured as the parent cache's delta
    around the run, pooled chunks through the deltas their workers ship
    back.
    """

    jobs: int = 1
    tasks: int = 0
    chunks: int = 0
    wall_s: float = 0.0
    pool_used: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "wall_s": self.wall_s,
            "pool_used": self.pool_used,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
        }


class ParallelSweep:
    """Deterministic fan-out of an independent-task grid.

    ``fn`` must be a picklable module-level callable.  It is invoked as
    ``fn(item)`` when ``base_seed is None``, else as ``fn(item,
    seed=seed_for(base_seed, index))`` with ``index`` the task's position
    in the original grid.  Results come back in grid order regardless of
    completion order, so ``run()`` output is bit-identical across
    ``jobs`` values — the property the determinism test layer pins.

    ``jobs=1`` never spawns processes: the chunk code runs inline and is
    the reference implementation the pool is checked against.  If the
    platform refuses to give us a process pool (sandboxes without fork
    permission), the sweep degrades to the serial path with a trace
    warning rather than failing — results are identical either way.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        base_seed: int | None = None,
        name: str = "sweep",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self.fn = fn
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.base_seed = base_seed
        self.name = name
        self.stats = SweepStats(jobs=jobs)

    def _resolved_chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # Aim for a few chunks per worker so one straggler chunk cannot
        # serialise the tail of the sweep.
        return max(1, ceil(n_tasks / (self.jobs * 4)))

    def run(self, grid: Sequence[Any]) -> list:
        """Evaluate ``fn`` over ``grid``; results in grid order."""
        grid = list(grid)
        stats = SweepStats(jobs=self.jobs, tasks=len(grid))
        self.stats = stats
        if not grid:
            return []
        t0 = perf_counter()
        parent_before = shared_cache().stats()
        chunks = list(chunk_grid(grid, self._resolved_chunk_size(len(grid))))
        stats.chunks = len(chunks)

        if self.jobs == 1 or len(chunks) == 1:
            merged = self._run_serial(chunks)
        else:
            merged = self._run_pool(chunks, stats)
        parent_after = shared_cache().stats()
        stats.cache_hits += parent_after["hits"] - parent_before["hits"]
        stats.cache_misses += parent_after["misses"] - parent_before["misses"]
        stats.cache_evictions += (
            parent_after["evictions"] - parent_before["evictions"]
        )
        stats.wall_s = perf_counter() - t0
        self._record(stats)
        return merged

    def run_grid(self, grid: Any) -> list:
        """Evaluate a *block* task function over a columnar grid.

        ``grid`` is any columnar container with ``__len__`` and
        ``blocks(chunk_size)`` — in practice a
        :class:`repro.experiments.base.ParamGrid` (duck-typed here so the
        engine stays import-free of the experiments layer).  ``fn`` is
        called as ``fn(block)`` (or ``fn(block, seeds=[...])`` when
        ``base_seed`` is set) and must return one result per block row;
        results come back stitched in grid order.  Chunking, pooling,
        seed derivation, and cache accounting all match :meth:`run`, so
        the jobs∈{1,N} bit-identity contract carries over verbatim.
        """
        stats = SweepStats(jobs=self.jobs, tasks=len(grid))
        self.stats = stats
        if not len(grid):
            return []
        t0 = perf_counter()
        parent_before = shared_cache().stats()
        chunks = list(grid.blocks(self._resolved_chunk_size(len(grid))))
        stats.chunks = len(chunks)

        if self.jobs == 1 or len(chunks) == 1:
            merged = self._run_serial(chunks, runner=_run_grid_chunk)
        else:
            merged = self._run_pool(chunks, stats, runner=_run_grid_chunk)
        parent_after = shared_cache().stats()
        stats.cache_hits += parent_after["hits"] - parent_before["hits"]
        stats.cache_misses += parent_after["misses"] - parent_before["misses"]
        stats.cache_evictions += (
            parent_after["evictions"] - parent_before["evictions"]
        )
        stats.wall_s = perf_counter() - t0
        self._record(stats)
        return merged

    def _run_serial(
        self,
        chunks: list[tuple[int, Any]],
        runner: Callable[..., tuple[list, dict[str, int]]] = _run_chunk,
    ) -> list:
        out: list = []
        for start, items in chunks:
            # The inline chunk mutates the parent cache directly; run()
            # measures that as one delta around the whole sweep.
            results, _delta = runner(self.fn, self.base_seed, start, items)
            out.extend(results)
        return out

    def _run_pool(
        self,
        chunks: list[tuple[int, Any]],
        stats: SweepStats,
        runner: Callable[..., tuple[list, dict[str, int]]] = _run_chunk,
    ) -> list:
        try:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
        except (OSError, PermissionError, ValueError) as exc:
            get_trace().warning(
                "sweep_pool_unavailable", sweep=self.name, error=str(exc)
            )
            return self._run_serial(chunks, runner=runner)
        worker_deltas: list[dict[str, int]] = []
        with executor:
            futures = [
                executor.submit(runner, self.fn, self.base_seed, start, items)
                for start, items in chunks
            ]
            # Futures are consumed in submission order, which is grid
            # order: the merge cannot depend on completion order.
            out: list = []
            for future in futures:
                results, delta = future.result()
                out.extend(results)
                worker_deltas.append(delta)
        for delta in worker_deltas:
            stats.cache_hits += delta["hits"]
            stats.cache_misses += delta["misses"]
            stats.cache_evictions += delta["evictions"]
        stats.pool_used = True
        self._record_worker_cache(worker_deltas)
        return out

    def _record(self, stats: SweepStats) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        labels = {"sweep": self.name}
        registry.counter(
            "sweep_tasks_total",
            help="grid points evaluated by ParallelSweep",
            labels=labels,
        ).inc(stats.tasks)
        registry.counter(
            "sweep_chunks_total",
            help="chunks dispatched by ParallelSweep",
            labels=labels,
        ).inc(stats.chunks)
        registry.timer(
            "sweep_seconds", help="wall time per ParallelSweep.run", labels=labels
        ).observe(stats.wall_s)
        registry.gauge(
            "sweep_jobs", help="worker count of the latest sweep", labels=labels
        ).set(stats.jobs)

    @staticmethod
    def _record_worker_cache(deltas: list[dict[str, int]]) -> None:
        """Surface child-process cache activity in the parent registry.

        Worker registries die with the workers; these counters are the
        only way their cache effectiveness reaches run manifests.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        labels = {"origin": "workers"}
        totals = {
            key: sum(delta[key] for delta in deltas)
            for key in ("hits", "misses", "evictions")
        }
        for key, amount in totals.items():
            if amount:
                registry.counter(
                    f"erlang_cache_{key}_total",
                    help=f"shared Erlang-cache {key} (see repro.parallel.cache)",
                    labels=labels,
                ).inc(amount)


def sweep_map(
    fn: Callable[..., Any],
    grid: Sequence[Any],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    base_seed: int | None = None,
    name: str = "sweep",
) -> list:
    """One-shot :class:`ParallelSweep` convenience wrapper."""
    return ParallelSweep(
        fn, jobs=jobs, chunk_size=chunk_size, base_seed=base_seed, name=name
    ).run(grid)


def sweep_grid(
    fn: Callable[..., Any],
    grid: Any,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    base_seed: int | None = None,
    name: str = "sweep",
) -> list:
    """One-shot :meth:`ParallelSweep.run_grid` convenience wrapper."""
    return ParallelSweep(
        fn, jobs=jobs, chunk_size=chunk_size, base_seed=base_seed, name=name
    ).run_grid(grid)
