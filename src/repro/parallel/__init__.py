"""Parallel sweep engine + shared Erlang-inversion cache.

The throughput layer of the reproduction: :mod:`repro.parallel.sweep`
fans independent grid points out over a process pool with a bit-identical
serial reference path, and :mod:`repro.parallel.cache` memoizes the
Erlang-B inversions every sweep point leans on.  Determinism is a tested
contract, not an aspiration — see ``tests/parallel/``.
"""

from .cache import (
    ErlangCache,
    cached_erlang_b,
    cached_min_servers,
    cached_min_servers_continuous,
    cached_min_servers_grid,
    configure_shared_cache,
    record_cache_metrics,
    shared_cache,
)
from .sweep import (
    ParallelSweep,
    SweepStats,
    chunk_grid,
    seed_for,
    sweep_grid,
    sweep_map,
)

__all__ = [
    "ErlangCache",
    "ParallelSweep",
    "SweepStats",
    "cached_erlang_b",
    "cached_min_servers",
    "cached_min_servers_continuous",
    "cached_min_servers_grid",
    "chunk_grid",
    "configure_shared_cache",
    "record_cache_metrics",
    "seed_for",
    "shared_cache",
    "sweep_grid",
    "sweep_map",
]
