"""Bounded memoization for the Erlang-B inversions.

The model's hot path is :func:`repro.queueing.erlang.min_servers`: every
(service, resource) pair of every sweep point pays an ``O(n)`` recurrence
scan.  Dense sweeps revisit the same ``(rho, B)`` pairs constantly — the
consolidated load of a scaled scenario often equals a dedicated load seen
two grid points earlier — so an exact-answer cache turns most inversions
into a dict lookup.

Correctness contract:

- keys are ``(rho, B)`` rounded to a configurable number of decimals
  (``rho_decimals`` / ``target_decimals`` constructor parameters,
  defaulting to :attr:`ErlangCache.RHO_DECIMALS` /
  :attr:`ErlangCache.TARGET_DECIMALS`); two inputs share an entry only if
  they agree to that tolerance, which is far below the step-function
  granularity of ``min_servers`` everywhere except exactly at a step
  boundary.  The active precision is part of :meth:`ErlangCache.stats`,
  so every run manifest records it under ``parallel.cache``;
- values are computed by the *uncached* solvers on first miss and returned
  verbatim afterwards — the cache can change timing, never numbers, for
  any inputs that are representable on the rounding grid (the property
  tests sweep this);
- the store is a bounded LRU: at :attr:`maxsize` entries the least
  recently used key is evicted, so long-running services cannot leak
  memory through an unbounded sweep.

Hit/miss/eviction counts are kept as plain integers on the cache object.
:class:`repro.parallel.sweep.ParallelSweep` snapshots them around every
chunk — including chunks executed in worker processes, whose registries
the parent cannot see — and folds the deltas into the ambient metrics
registry, which is how they surface in run manifests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..queueing import erlang, vectorized

__all__ = [
    "ErlangCache",
    "shared_cache",
    "configure_shared_cache",
    "cached_min_servers",
    "cached_min_servers_continuous",
    "cached_min_servers_grid",
    "cached_erlang_b",
    "record_cache_metrics",
]


class ErlangCache:
    """Bounded LRU cache over the three Erlang solvers.

    Thread-safe; one instance is shared per process via
    :func:`shared_cache`.
    """

    #: Default rounding tolerance of the cache key, in decimal places.
    #: 1e-9 in offered load is ~1 request/year of drift at the paper's
    #: scales.
    RHO_DECIMALS = 9
    #: Blocking targets are probabilities; 12 decimals keeps distinct QoS
    #: classes (paper uses 1e-2..1e-4) unambiguously apart.
    TARGET_DECIMALS = 12

    def __init__(
        self,
        maxsize: int = 65536,
        *,
        rho_decimals: int | None = None,
        target_decimals: int | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        rho_decimals = self.RHO_DECIMALS if rho_decimals is None else rho_decimals
        target_decimals = (
            self.TARGET_DECIMALS if target_decimals is None else target_decimals
        )
        if rho_decimals < 0:
            raise ValueError(
                f"rho_decimals must be non-negative, got {rho_decimals}"
            )
        if target_decimals < 0:
            raise ValueError(
                f"target_decimals must be non-negative, got {target_decimals}"
            )
        self.maxsize = maxsize
        self.rho_decimals = rho_decimals
        self.target_decimals = target_decimals
        self._store: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- key construction -------------------------------------------------------------

    def key_for(self, kind: str, *args: float) -> tuple:
        """The exact store key used for a lookup (exposed for the tests)."""
        if kind == "erlang_b":
            n, rho = args
            return ("erlang_b", int(n), round(float(rho), self.rho_decimals))
        rho, target = args
        return (
            kind,
            round(float(rho), self.rho_decimals),
            round(float(target), self.target_decimals),
        )

    # -- core lookup ------------------------------------------------------------------

    def _lookup(self, key: tuple, compute: Callable[[], object]) -> object:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
        # Compute outside the lock: inversions can take milliseconds and
        # concurrent threads should not serialise on them.  A racing
        # duplicate computation returns the same value, so last-write-wins
        # is harmless.
        value = compute()
        with self._lock:
            self.misses += 1
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
        return value

    # -- cached solvers ---------------------------------------------------------------

    def min_servers(self, rho: float, blocking_target: float) -> int:
        """Memoized :func:`repro.queueing.erlang.min_servers`."""
        key = self.key_for("min_servers", rho, blocking_target)
        return self._lookup(key, lambda: erlang.min_servers(rho, blocking_target))

    def min_servers_continuous(self, rho: float, blocking_target: float) -> int:
        """Memoized :func:`repro.queueing.erlang.min_servers_continuous`."""
        key = self.key_for("min_servers_continuous", rho, blocking_target)
        return self._lookup(
            key, lambda: erlang.min_servers_continuous(rho, blocking_target)
        )

    def erlang_b(self, n: int, rho: float) -> float:
        """Memoized :func:`repro.queueing.erlang.erlang_b`."""
        key = self.key_for("erlang_b", n, rho)
        return self._lookup(key, lambda: erlang.erlang_b(n, rho))

    # -- batched solver ---------------------------------------------------------------

    def min_servers_grid(self, rho, blocking_target):
        """Memoized batched inversion over aligned ``(rho, B)`` arrays.

        Known points are answered from the store; every miss in the batch
        is solved in ONE call to the vectorized lockstep kernel
        (:func:`repro.queueing.vectorized.min_servers`) and written back.
        Returns an ``int64`` array of the broadcast shape.  Counters move
        exactly as if each point had gone through :meth:`min_servers`,
        and since the vectorized kernel is bit-identical to the scalar
        scan, so do the cached values.
        """
        rho_arr, tgt_arr = np.broadcast_arrays(
            np.asarray(rho, dtype=np.float64),
            np.asarray(blocking_target, dtype=np.float64),
        )
        shape = rho_arr.shape
        rho_flat = np.ascontiguousarray(rho_arr).reshape(-1)
        tgt_flat = np.ascontiguousarray(tgt_arr).reshape(-1)
        out = np.empty(rho_flat.shape, dtype=np.int64)
        keys = [
            self.key_for("min_servers", r, t)
            for r, t in zip(rho_flat.tolist(), tgt_flat.tolist())
        ]
        miss_idx: list[int] = []
        with self._lock:
            for i, key in enumerate(keys):
                if key in self._store:
                    self._store.move_to_end(key)
                    self.hits += 1
                    out[i] = self._store[key]
                else:
                    miss_idx.append(i)
        if miss_idx:
            idx = np.asarray(miss_idx, dtype=np.intp)
            # One vectorized solve for the whole miss set (outside the
            # lock, same rationale as _lookup).  Duplicate keys inside the
            # batch cost one extra lockstep lane, never a wrong answer.
            solved = vectorized.min_servers(rho_flat[idx], tgt_flat[idx])
            out[idx] = solved
            with self._lock:
                for i, value in zip(miss_idx, solved.tolist()):
                    self.misses += 1
                    self._store[keys[i]] = value
                    self._store.move_to_end(keys[i])
                while len(self._store) > self.maxsize:
                    self._store.popitem(last=False)
                    self.evictions += 1
        return out.reshape(shape)

    # -- introspection ----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> dict[str, int]:
        """Current counters + occupancy (plain ints, snapshot-safe)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._store),
                "maxsize": self.maxsize,
                "rho_decimals": self.rho_decimals,
                "target_decimals": self.target_decimals,
            }

    def clear(self) -> None:
        """Drop all entries and zero the counters (test isolation hook)."""
        with self._lock:
            self._store.clear()
            self.hits = self.misses = self.evictions = 0


_shared = ErlangCache()
_shared_lock = threading.Lock()


def shared_cache() -> ErlangCache:
    """The per-process shared cache instance.

    Worker processes of a :class:`~repro.parallel.sweep.ParallelSweep`
    each hold their own (fork children start with a copy, spawn children
    with a fresh one); the sweep engine merges their counter deltas back
    into the parent.
    """
    return _shared


def configure_shared_cache(
    maxsize: int,
    *,
    rho_decimals: int | None = None,
    target_decimals: int | None = None,
) -> ErlangCache:
    """Replace the shared cache with a fresh one bounded at ``maxsize``.

    ``rho_decimals`` / ``target_decimals`` override the key-rounding
    precision (default: class attributes); the active values are reported
    by :meth:`ErlangCache.stats` and therefore land in run manifests.
    """
    global _shared
    with _shared_lock:
        _shared = ErlangCache(
            maxsize=maxsize,
            rho_decimals=rho_decimals,
            target_decimals=target_decimals,
        )
        return _shared


def cached_min_servers(rho: float, blocking_target: float) -> int:
    """Shared-cache front end for the paper's Fig. 4 inner loop."""
    return _shared.min_servers(rho, blocking_target)


def cached_min_servers_continuous(rho: float, blocking_target: float) -> int:
    """Shared-cache front end for the bisection inversion."""
    return _shared.min_servers_continuous(rho, blocking_target)


def cached_min_servers_grid(rho, blocking_target):
    """Shared-cache front end for the batched inversion over a grid."""
    return _shared.min_servers_grid(rho, blocking_target)


def cached_erlang_b(n: int, rho: float) -> float:
    """Shared-cache front end for one Erlang-B evaluation."""
    return _shared.erlang_b(n, rho)


def record_cache_metrics(registry, baseline: dict[str, int] | None = None) -> None:
    """Fold this process's cache counters into ``registry``.

    ``baseline`` is an earlier :meth:`ErlangCache.stats` snapshot; only the
    delta since then is recorded, so a CLI can scope the counters to one
    run.  Counters carry ``origin="parent"`` to stay disjoint from the
    ``origin="workers"`` series that :class:`repro.parallel.sweep.
    ParallelSweep` merges out of its child processes — together the two
    series are the complete cache story a run manifest shows.
    """
    if not getattr(registry, "enabled", False):
        return
    stats = _shared.stats()
    base = baseline or {}
    labels = {"origin": "parent"}
    for key in ("hits", "misses", "evictions"):
        amount = stats[key] - base.get(key, 0)
        if amount:
            registry.counter(
                f"erlang_cache_{key}_total",
                help=f"shared Erlang-cache {key} (see repro.parallel.cache)",
                labels=labels,
            ).inc(amount)
    registry.gauge(
        "erlang_cache_size", help="entries resident in the shared Erlang cache"
    ).set(stats["size"])
