#!/usr/bin/env python3
"""Validate the analytic plan against the discrete-event simulator.

The paper validated its model on a physical Xen testbed; this example does
the same against the loss-network data-center simulation: build both
deployments the model sized, drive them with Poisson traffic, and compare
measured loss probabilities, throughput, utilization and metered power.

It also demonstrates the reproduction's main *finding about the model*:
the paper's Eq. 4 arithmetic rate mixture is optimistic — at the model's N
the measured loss sits above the target B, at the Erlang level implied by
the offered (harmonic) load.  Plan with ``load_model="offered"`` when the
loss target is a hard SLA.

Run:  python examples/consolidation_simulation.py
"""

import numpy as np

from repro import ResourceKind, UtilityAnalyticModel
from repro.analysis.report import format_kv, format_table
from repro.experiments.casestudy import GROUP2
from repro.queueing.erlang import erlang_b
from repro.simulation.datacenter import DataCenterSimulation

HORIZON = 300.0  # simulated seconds
CPU = ResourceKind.CPU

inputs = GROUP2.inputs()
solution = UtilityAnalyticModel(inputs).solve()
print(
    f"Model sizing: M = {solution.dedicated_servers} dedicated, "
    f"N = {solution.consolidated_servers} consolidated "
    f"(B = {inputs.loss_probability})"
)

sim = DataCenterSimulation(inputs)
rng = np.random.default_rng(2009)
case = sim.run_case_study(
    GROUP2.island_sizes, solution.consolidated_servers, HORIZON, rng
)

rows = []
for scenario in (case.dedicated, case.consolidated):
    for service, loss in scenario.per_service_loss.items():
        lo, hi = scenario.per_service_loss_ci[service]
        rows.append(
            {
                "deployment": scenario.scenario,
                "service": service,
                "measured_loss": round(loss, 4),
                "loss_95ci": f"[{lo:.4f}, {hi:.4f}]",
                "throughput": round(scenario.per_service_throughput[service], 1),
            }
        )
print()
print(format_table(rows, title="Measured loss and throughput"))

# Where does the consolidated loss actually sit?  Exactly at the Erlang
# value of the OFFERED load — above the paper-mode prediction.
n = solution.consolidated_servers
paper_pred = erlang_b(n, inputs.consolidated_load(CPU, "paper"))
offered_pred = erlang_b(n, inputs.consolidated_load(CPU, "offered"))
measured = max(case.consolidated.per_service_loss.values())
print()
print(
    format_kv(
        {
            "paper-mode Erlang prediction": f"{paper_pred:.4f}",
            "offered-load Erlang prediction": f"{offered_pred:.4f}",
            "measured (simulation)": f"{measured:.4f}",
            "conservative N (load_model='offered')": UtilityAnalyticModel(
                inputs, load_model="offered"
            )
            .solve()
            .consolidated_servers,
        },
        title="Model optimism check (consolidated CPU)",
    )
)

print()
print(
    format_kv(
        {
            "power saving (measured)": f"{case.power_saving:.1%}",
            "workload power saving": f"{case.workload_power_saving:.1%}",
            "CPU utilization improvement": f"{case.utilization_improvement(CPU):.2f}x",
            "dedicated CPU utilization": f"{case.dedicated.per_resource_utilization[CPU]:.3f}",
            "consolidated CPU utilization": f"{case.consolidated.per_resource_utilization[CPU]:.3f}",
        },
        title="Fleet-level effects (paper's headline claims)",
    )
)
