#!/usr/bin/env python3
"""Measure virtualization impact factors, the paper's Section IV.C.1 step.

Before the model can size anything it needs the impact factors ``a_ij``:
the QoS a service keeps when hosted in VMs relative to native Linux.  The
paper measures them by sweeping request rates with httperf (Web) and
emulated browsers (DB) against 1..9 VMs, taking stable-mean-throughput
ratios, and fitting a curve over the VM count.

This example reruns that procedure against the simulated testbed and
prints the recovered fits next to the published ones.

Run:  python examples/measure_impact_factors.py
"""

import numpy as np

from repro.analysis.regression import fit_line
from repro.analysis.report import format_table
from repro.virtualization.impact import (
    DB_CPU_IMPACT,
    WEB_CPU_IMPACT,
    WEB_DISK_IO_IMPACT,
    fit_saturating_impact,
)
from repro.workloads.specweb import SINGLE_FILE_8KB, SPECWEB_FILESET, WebServiceModel
from repro.workloads.tpcw import DbServiceModel

rng = np.random.default_rng(7)
vm_counts = np.arange(1, 10)

# ---- Web service, disk-I/O bound (Fig. 5): ordered 5.1 GB file set -------
io_model = WebServiceModel.for_fileset(SPECWEB_FILESET)
a_io = io_model.measured_impact_factors(vm_counts, rng=rng, rel_noise=0.02)
fit_io = fit_line(vm_counts.astype(float), a_io)

# ---- Web service, CPU bound (Fig. 6): one cached 8 KB file ---------------
cpu_model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
a_cpu = cpu_model.measured_impact_factors(vm_counts, rng=rng, rel_noise=0.02)
fit_cpu = fit_line(vm_counts.astype(float), a_cpu)

# ---- DB service (Fig. 8): TPC-W against the 2.7 GB e-book database -------
db_model = DbServiceModel()
a_db = db_model.measured_impact_factors(vm_counts, rng=rng, rel_noise=0.02)
fit_db = fit_saturating_impact(vm_counts.astype(float), a_db)

rows = [
    {
        "curve": "web / disk I/O (linear)",
        "recovered": f"a = {fit_io.slope:+.4f} v + {fit_io.intercept:.4f}",
        "published": f"a = {WEB_DISK_IO_IMPACT.slope:+.4f} v + {WEB_DISK_IO_IMPACT.intercept:.4f}",
        "r2": round(fit_io.r2, 4),
    },
    {
        "curve": "web / CPU (linear)",
        "recovered": f"a = {fit_cpu.slope:+.4f} v + {fit_cpu.intercept:.4f}",
        "published": f"a = {WEB_CPU_IMPACT.slope:+.4f} v + {WEB_CPU_IMPACT.intercept:.4f}",
        "r2": round(fit_cpu.r2, 4),
    },
    {
        "curve": "db / CPU+software (saturating)",
        "recovered": f"a = {fit_db.ceiling:.2f} v^2/(v^2+{fit_db.half_v2:.2f})",
        "published": f"a = {DB_CPU_IMPACT.ceiling:.2f} v^2/(v^2+{DB_CPU_IMPACT.half_v2:.2f})",
        "r2": "-",
    },
]
print(format_table(rows, title="Impact-factor measurement (simulated testbed)"))

print()
print("Per-VM-count factors (measured):")
print(
    format_table(
        [
            {
                "vms": int(v),
                "web_disk_io": round(float(a_io[i]), 3),
                "web_cpu": round(float(a_cpu[i]), 3),
                "db_cpu": round(float(a_db[i]), 3),
            }
            for i, v in enumerate(vm_counts)
        ]
    )
)
print()
print(
    "Feed these into ServiceSpec.impact_factors at your planned VM density\n"
    "(the paper uses a_wi=0.8, a_wc=0.65, a_dc=0.9 at its operating point)."
)
