#!/usr/bin/env python3
"""Power analysis over a simulated day: dedicated vs consolidated fleets.

Extends the paper's Figs. 12-13 from one operating point to a full diurnal
cycle: drive both fleets with the same time-varying workload, meter them
with the simulated electric parameter tester, and additionally let the
consolidated fleet *shrink at night* (power off machines the Erlang sizing
says are unnecessary) — the energy-management strategy the paper's related
work section surveys, now guided by this paper's model instead of reactive
control.

Run:  python examples/power_analysis.py
"""

import numpy as np

from repro import ResourceKind, UtilityAnalyticModel
from repro.analysis.report import format_kv, format_table
from repro.cluster.pool import ServerPool
from repro.cluster.power_meter import PowerMeter, apply_platform_effect
from repro.experiments.casestudy import case_study_inputs
from repro.workloads.traces import DiurnalProfile

CPU = ResourceKind.CPU
HOURS = np.arange(0.0, 24.0, 1.0)
SECONDS_PER_HOUR = 3600.0

web_profile = DiurnalProfile("web", base=300.0, peak=1200.0, peak_hour=14.0, noise=0.0)
db_profile = DiurnalProfile("db", base=20.0, peak=80.0, peak_hour=20.0, noise=0.0)

# Peak sizing fixes the fleets (the paper's single-point plan).
peak_inputs = case_study_inputs(1200.0, 80.0)
peak_solution = UtilityAnalyticModel(peak_inputs).solve()
m, n = peak_solution.dedicated_servers, peak_solution.consolidated_servers
print(f"Peak plan: M = {m} dedicated, N = {n} consolidated\n")

dedicated_pool = ServerPool.homogeneous(m, name_prefix="linux")
consolidated_pool = ServerPool.homogeneous(n, name_prefix="xen")
shrink_pool = ServerPool.homogeneous(n, name_prefix="xen-shrink")
for pool in (consolidated_pool, shrink_pool):
    apply_platform_effect(pool, idle_factor=0.91, dynamic_factor=0.70)

meters = {
    "dedicated (Linux, 8)": PowerMeter(dedicated_pool),
    "consolidated (Xen, 4)": PowerMeter(consolidated_pool),
    "consolidated + night shrink": PowerMeter(shrink_pool),
}
for meter in meters.values():
    meter.sample(0.0)

rows = []
for hour in HOURS:
    t = hour * SECONDS_PER_HOUR
    web_rate = float(web_profile.rate(np.array([hour]))[0])
    db_rate = float(db_profile.rate(np.array([hour]))[0])
    inputs = case_study_inputs(web_rate, db_rate)

    # Per-resource utilizations for this hour.
    ded_util = sum(s.offered_load(CPU) for s in inputs.services) / m
    con_load = inputs.consolidated_load(CPU, "offered")

    # How many consolidated servers does *this hour's* workload need?
    hourly_n = max(1, UtilityAnalyticModel(inputs).solve().consolidated_servers)

    for name, meter in meters.items():
        meter.sample(t)
    dedicated_pool.apply_uniform_load(CPU, min(ded_util, 1.0))
    consolidated_pool.apply_uniform_load(CPU, min(con_load / n, 1.0))
    shrink_pool.grow_to(hourly_n)
    shrink_pool.shrink_to(hourly_n)
    shrink_pool.apply_uniform_load(CPU, min(con_load / hourly_n, 1.0))
    for name, meter in meters.items():
        meter.sample(t)

    if hour % 6 == 0:
        rows.append(
            {
                "hour": int(hour),
                "web_req_s": round(web_rate),
                "db_wips": round(db_rate),
                "servers_needed_N(t)": hourly_n,
            }
        )

end = 24.0 * SECONDS_PER_HOUR
readings = {}
for name, meter in meters.items():
    meter.sample(end)
    readings[name] = meter.reading()

print(format_table(rows, title="Diurnal workload and hourly consolidated sizing"))
print()

base = readings["dedicated (Linux, 8)"].total_energy
summary = {}
for name, reading in readings.items():
    kwh = reading.total_energy / 3.6e6
    summary[name] = f"{kwh:8.2f} kWh   (saves {1.0 - reading.total_energy / base:6.1%})"
print(format_kv(summary, title="24-hour fleet energy"))
print()
print(
    "Consolidation alone reproduces the paper's ~53% saving; shrinking the\n"
    "consolidated pool at night (model-guided, not reactive) adds more."
)
