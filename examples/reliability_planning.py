#!/usr/bin/env python3
"""Production hardening: redundancy, failure-aware loss, and sensitivity.

The analytic model's N assumes every machine is healthy and every input is
measured exactly.  This example layers the production concerns on top:

1. *N + k redundancy* — how many machines to rack so that, despite
   failures (MTBF/MTTR), at least N are up with 99.9% assurance;
2. *failure-aware loss* — the expected request loss once the fleet's
   availability is folded into the Erlang analysis;
3. *sensitivity* — which measured inputs (rates, impact factors, B) the
   plan actually depends on, so measurement effort goes where it matters.

Run:  python examples/reliability_planning.py
"""

from repro import UtilityAnalyticModel
from repro.analysis.report import format_kv, format_table
from repro.cluster import (
    ServerReliability,
    expected_loss_with_failures,
    fleet_up_probability,
    servers_with_redundancy,
)
from repro.core import ResourceKind, sensitivity_report
from repro.experiments.casestudy import GROUP2

inputs = GROUP2.inputs()
solution = UtilityAnalyticModel(inputs, load_model="offered").solve()
n = solution.consolidated_servers
cpu_load = inputs.consolidated_load(ResourceKind.CPU, "offered")
print(f"Load sizing (offered mode): N = {n} consolidated servers\n")

# ---------------------------------------------------------------- N + k --
commodity = ServerReliability(mtbf=4380.0, mttr=8.0)    # decent hardware
salvage = ServerReliability(mtbf=400.0, mttr=48.0)      # scavenged fleet

rows = []
for label, rel in (("commodity", commodity), ("salvage", salvage)):
    fleet = servers_with_redundancy(n, rel, assurance=0.999)
    rows.append(
        {
            "hardware": label,
            "availability": round(rel.availability, 4),
            "fleet_n_plus_k": fleet,
            "spares_k": fleet - n,
            "P(>=N up)": round(fleet_up_probability(fleet, n, rel), 5),
            "E[loss] bare N": round(expected_loss_with_failures(n, cpu_load, rel), 4),
            "E[loss] with k": round(
                expected_loss_with_failures(fleet, cpu_load, rel), 4
            ),
        }
    )
print(format_table(rows, title="N + k redundancy at 99.9% assurance"))
print()

# ------------------------------------------------------------ sensitivity --
report = sensitivity_report(inputs, delta=0.2, load_model="offered")
print(
    format_table(
        report.rows(),
        title="Sensitivity of N to +/-20% input error (offered mode)",
    )
)
print()
print(
    format_kv(
        {
            "baseline N": report.baseline_n,
            "robust inputs (no swing at +/-20%)": ", ".join(
                report.robust_parameters
            ) or "(none)",
        },
        title="Where to spend measurement effort",
    )
)
