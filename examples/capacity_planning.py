#!/usr/bin/env python3
"""Capacity planning sweeps: growth, QoS tiers, and mixed hardware.

Three planning questions a data-center designer asks the model beyond the
single-point quickstart:

1. *Growth*: how do M and N scale as traffic doubles and quadruples?
   (Statistical multiplexing means N grows slower than M.)
2. *QoS tiers*: what does tightening the loss probability from 5% to 0.1%
   cost in machines?
3. *Mixed hardware*: my inventory is AMD and Intel boxes of different
   generations — how many of each do I power on?  (Uses the paper's
   Section IV.D observation that measured, not nameplate, capability must
   drive the normalization.)

Run:  python examples/capacity_planning.py
"""

from repro import (
    ConsolidationPlanner,
    HeterogeneousPool,
    ResourceKind,
    ServerClass,
    ServiceSpec,
)
from repro.analysis.report import format_table

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO

services = [
    ServiceSpec("web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}),
    ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9}),
]
planner = ConsolidationPlanner()

# ---------------------------------------------------------------- growth --
rows = []
for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
    report = planner.sweep_workload_scale(services, 0.01, [factor])[0]
    rows.append(
        {
            "traffic_scale": f"x{factor}",
            "M_dedicated": report.dedicated_servers,
            "N_consolidated": report.consolidated_servers,
            "saving": f"{report.infrastructure_saving:.0%}",
        }
    )
print(format_table(rows, title="Growth sweep (loss probability B = 1%)"))
print()

# ------------------------------------------------------------- QoS tiers --
rows = []
for b in (0.05, 0.01, 0.001):
    report = planner.plan(services, b)
    rows.append(
        {
            "loss_target_B": b,
            "M_dedicated": report.dedicated_servers,
            "N_consolidated": report.consolidated_servers,
        }
    )
print(format_table(rows, title="QoS tier sweep (current traffic)"))
print()

# --------------------------------------------------------- mixed hardware --
# Reference machine: the paper's dual quad-core AMD box.  The Intel boxes
# have a higher nameplate clock but measured ~20% lower DB throughput, so
# we normalize them by measurement (measured_scale), not spec sheet.
amd = ServerClass("amd-2350", {CPU: 16.0, DISK: 100.0}, count=6)
intel = ServerClass(
    "intel-5140", {CPU: 18.6, DISK: 100.0}, count=6, measured_scale=0.83
)
inventory = HeterogeneousPool([amd, intel], reference=amd)

norm = inventory.normalize()
print("Inventory normalization (reference = amd-2350):")
for name, eq in norm.per_class_equivalents.items():
    print(f"  {name:<12s} -> {eq:.2f} reference-equivalent servers")
print(f"  total        -> {norm.equivalent_servers:.2f}")
print()

report = ConsolidationPlanner(inventory=inventory).plan(services, 0.01)
print(f"Consolidated plan needs N = {report.consolidated_servers} normalized servers")
print(f"Machines to power on:      {report.consolidated_packing}")
print(f"Dedicated plan would need: {report.dedicated_packing}")
