#!/usr/bin/env python3
"""Model-guided dynamic capacity planning over a day.

The paper positions its model as the *proactive* complement to reactive
on/off controllers: plan the fleet before deployment, then let the same
model decide, period by period, how many machines each hour's forecast
workload needs.  ``DynamicCapacityPlanner`` adds the operational
wrinkles — hysteresis so machines do not flap, and a boot-energy charge so
the reported saving is net.

Run:  python examples/dynamic_capacity_planning.py
"""

import numpy as np

from repro import DynamicCapacityPlanner, ServerPowerModel
from repro.analysis.report import format_kv, format_table
from repro.experiments.casestudy import db_service, web_service
from repro.workloads.traces import DiurnalProfile

web_profile = DiurnalProfile("web", base=300.0, peak=1200.0, peak_hour=14.0, noise=0.0)
db_profile = DiurnalProfile("db", base=20.0, peak=80.0, peak_hour=20.0, noise=0.0)

hours = np.arange(24.0)
profile = [
    {
        "web": float(web_profile.rate(np.array([h]))[0]),
        "db": float(db_profile.rate(np.array([h]))[0]),
    }
    for h in hours
]

planner = DynamicCapacityPlanner(
    services=[web_service(1.0), db_service(1.0)],
    loss_probability=0.01,
    power_model=ServerPowerModel(250.0, 295.0),
    period_length=3600.0,
    hold_periods=1,       # tolerate one low hour before shrinking
    boot_energy=60_000.0, # ~4 minutes of full draw per boot
)
plan = planner.plan(profile)

print(format_table(plan.rows(), title="Hourly schedule (model-guided on/off)"))
print()
print(
    format_kv(
        {
            "peak fleet (static plan)": plan.peak_servers,
            "mean servers on (dynamic)": f"{plan.mean_servers_on:.1f}",
            "dynamic energy": f"{plan.total_energy / 3.6e6:.2f} kWh",
            "static (peak fleet) energy": f"{plan.static_energy / 3.6e6:.2f} kWh",
            "boot energy spent": f"{plan.boot_energy_spent / 3.6e6:.3f} kWh",
            "net saving vs static": f"{plan.energy_saving:.1%}",
        },
        title="24-hour summary",
    )
)
print()
print(
    "Compare: the hysteresis (hold_periods) and boot-energy knobs trade\n"
    "flapping against savings; try hold_periods=0 and boot_energy=0 for\n"
    "the idealised bound."
)
