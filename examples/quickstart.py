#!/usr/bin/env python3
"""Quickstart: plan a consolidated data center before deploying anything.

This is the paper's headline use case.  You know, per Internet service:

- its mean request arrival rate (``lambda_i``, Poisson),
- how fast one reference server's CPU / disk serves its requests
  (``mu_ij``), and
- the virtualization impact factors measured for your hypervisor
  (``a_ij`` — see ``examples/measure_impact_factors.py``).

The utility analytic model then answers: how many dedicated servers would
this take (M)?  How many consolidated VM-hosting servers (N)?  What do I
save in machines, power and utilization — all at the same request-loss
probability ``B``.

Run:  python examples/quickstart.py
"""

from repro import ConsolidationPlanner, ResourceKind, ServiceSpec

# The paper's case study: an e-commerce web service (SPECweb2005-like,
# disk-I/O bound at 1420 req/s per server) and an e-book database service
# (TPC-W-like, CPU bound at 100 WIPS per server, negligible disk demand).
web = ServiceSpec(
    name="web",
    arrival_rate=1200.0,  # requests/s offered to the whole site
    service_rates={
        ResourceKind.CPU: 3360.0,
        ResourceKind.DISK_IO: 1420.0,
    },
    impact_factors={
        ResourceKind.CPU: 0.65,  # Xen costs ~1/3 of CPU QoS (paper Fig. 6)
        ResourceKind.DISK_IO: 0.8,  # and ~20% of disk QoS (paper Fig. 5)
    },
)

db = ServiceSpec(
    name="db",
    arrival_rate=80.0,  # web interactions/s
    service_rates={ResourceKind.CPU: 100.0},  # disk demand ~ 0: omit it
    impact_factors={ResourceKind.CPU: 0.9},
)

# Platform effects measured in the paper (Figs. 12-13): the idle Xen
# platform draws ~9% less than idle Linux, and the same workloads draw
# ~30% less on the consolidated hosts.  Leave both at 1.0 for the pure
# analytic model.
planner = ConsolidationPlanner(xen_idle_factor=0.91, xen_workload_factor=0.70)

report = planner.plan([web, db], loss_probability=0.01)
print(report.to_text())

# Individual numbers are available programmatically:
print()
print(f"M (dedicated)            = {report.dedicated_servers}")
print(f"N (consolidated)         = {report.consolidated_servers}")
print(f"infrastructure saving    = {report.infrastructure_saving:.0%}")
print(f"power saving             = {report.power_saving:.0%}")
print(f"CPU utilization gain     = {report.utilization_improvement:.2f}x")
