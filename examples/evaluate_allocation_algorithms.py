#!/usr/bin/env python3
"""Score resource-flowing algorithms against the model's optimal bound.

Section III.B.4(1): give the consolidated pool the same number of machines
and compare goodput ``(1-B)``; the analytic ratio is the ceiling for any
on-demand resource allocation algorithm.  We run four controllers — a
static partition, Rainbow-style priority flowing, proportional flowing
with a reallocation tax, and the ideal flow — over anti-phase diurnal
demand (web peaks while db rests, Fig. 2 style) and score each by the
fraction of the optimal improvement it realises.

Run:  python examples/evaluate_allocation_algorithms.py
"""

import numpy as np

from repro import allocation_algorithm_bound, allocation_algorithm_score
from repro.analysis.report import format_kv, format_table
from repro.experiments.casestudy import GROUP2, MU_DB_CPU, MU_WEB_DISK_IO
from repro.simulation.fluid import simulate_flow_control
from repro.virtualization.rainbow import (
    IdealFlow,
    PriorityFlow,
    ProportionalFlow,
    StaticPartition,
)

inputs = GROUP2.inputs()
bound = allocation_algorithm_bound(inputs)
print(
    format_kv(
        {
            "servers (M = N)": bound.servers,
            "dedicated loss": f"{bound.dedicated_loss:.4f}",
            "consolidated loss (optimal flowing)": f"{bound.consolidated_loss:.5f}",
            "optimal goodput improvement": f"{bound.improvement:.3f}x",
        },
        title="Analytic bound (Section III.B.4, application 1)",
    )
)

# Anti-phase bursty demands: the situation flowing exists for.
rng = np.random.default_rng(11)
periods = 1000
phase = np.linspace(0.0, 8.0 * np.pi, periods)
web_rate = inputs.service("web").arrival_rate * (1.0 + 0.8 * np.sin(phase)) * 1.8
db_rate = inputs.service("db").arrival_rate * (1.0 - 0.8 * np.sin(phase)) * 1.8
demands = {
    "web": rng.poisson(web_rate) / (MU_WEB_DISK_IO * 0.8),
    "db": rng.poisson(db_rate) / (MU_DB_CPU * 0.9),
}
capacity = float(bound.servers)

controllers = {
    "static 50/50 partition": StaticPartition(fractions={"web": 0.5, "db": 0.5}),
    "priority (db first)": PriorityFlow(priority_order=("db", "web")),
    "proportional, 2% realloc tax": ProportionalFlow(reallocation_tax=0.02),
    "proportional, 10% realloc tax": ProportionalFlow(reallocation_tax=0.10),
    "ideal flow (model assumption 4)": IdealFlow(),
}

baseline = simulate_flow_control(
    StaticPartition(fractions={"web": 0.5, "db": 0.5}), demands, capacity
).goodput_fraction

rows = []
for name, controller in controllers.items():
    result = simulate_flow_control(controller, demands, capacity)
    improvement = result.goodput_fraction / baseline
    rows.append(
        {
            "controller": name,
            "goodput": f"{result.goodput_fraction:.4f}",
            "vs_static": f"{improvement:.3f}x",
            "score_vs_bound": f"{allocation_algorithm_score(improvement, inputs):.2f}",
        }
    )
print()
print(format_table(rows, title="Controllers under anti-phase bursty demand"))
print()
print(
    "The paper's rule: 'the more close the improvements in QoS introduced\n"
    "by an on-demand resource allocation algorithm to such ratio of (1-B),\n"
    "the better this resource allocation algorithm is.'"
)
