"""End-to-end integration: the analytic model versus the simulated testbed.

The paper validates its model by running the case study on real hardware;
we validate the same predictions against the discrete-event loss-network
simulation.  These tests tie all packages together: core model sizing ->
simulated deployments -> measured loss/utilization/power.
"""

import numpy as np
import pytest

from repro.core import (
    ConsolidationPlanner,
    ResourceKind,
    UtilityAnalyticModel,
    utilization_report,
)
from repro.experiments.casestudy import GROUP1, GROUP2
from repro.queueing.erlang import erlang_b
from repro.simulation.datacenter import DataCenterSimulation

CPU = ResourceKind.CPU
HORIZON = 400.0


@pytest.fixture(scope="module")
def group2_case():
    sim = DataCenterSimulation(GROUP2.inputs())
    rng = np.random.default_rng(42)
    return sim.run_case_study(
        GROUP2.island_sizes, GROUP2.expected_consolidated, HORIZON, rng
    )


class TestDedicatedPredictions:
    def test_dedicated_loss_meets_target(self, group2_case):
        # The Erlang sizing of the islands must hold up in simulation.
        for name, loss in group2_case.dedicated.per_service_loss.items():
            lo, hi = group2_case.dedicated.per_service_loss_ci[name]
            assert lo <= 0.015, f"{name} loss CI {lo}-{hi} way above target"

    def test_dedicated_loss_matches_erlang_value(self, group2_case):
        # Web island: 4 servers, disk rho = 1200/1420.
        expected = erlang_b(4, 1200.0 / 1420.0)
        measured = group2_case.dedicated.per_service_loss["web"]
        assert measured == pytest.approx(expected, abs=0.012)

    def test_db_island_loss_matches_erlang(self, group2_case):
        expected = erlang_b(4, 80.0 / 100.0)
        measured = group2_case.dedicated.per_service_loss["db"]
        assert measured == pytest.approx(expected, abs=0.015)


class TestConsolidatedPredictions:
    def test_consolidated_loss_matches_offered_erlang(self, group2_case):
        # The *simulation truth* is the offered-load Erlang value (the
        # paper-mode mixture is optimistic; this quantifies by how much).
        offered = GROUP2.inputs().consolidated_load(CPU, "offered")
        expected = erlang_b(4, offered)
        measured = max(group2_case.consolidated.per_service_loss.values())
        assert measured == pytest.approx(expected, abs=0.03)

    def test_paper_mode_is_lower_bound(self, group2_case):
        paper_load = GROUP2.inputs().consolidated_load(CPU, "paper")
        lower = erlang_b(4, paper_load)
        measured = max(group2_case.consolidated.per_service_loss.values())
        assert measured >= lower - 0.01

    def test_throughput_similar_to_dedicated(self, group2_case):
        ded = group2_case.dedicated.per_service_throughput
        con = group2_case.consolidated.per_service_throughput
        for name in ded:
            assert con[name] >= 0.9 * ded[name]


class TestUtilizationAndPower:
    def test_measured_utilization_matches_model(self, group2_case):
        solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
        predicted = utilization_report(solution)
        measured_ded = group2_case.dedicated.per_resource_utilization[CPU]
        measured_con = group2_case.consolidated.per_resource_utilization[CPU]
        assert measured_ded == pytest.approx(
            predicted.resource(CPU).dedicated, rel=0.1
        )
        # Consolidated runs slightly below the offered load due to blocking
        # thinning; stay within 15%.
        assert measured_con == pytest.approx(
            predicted.resource(CPU).consolidated, rel=0.15
        )

    def test_power_saving_matches_planner(self, group2_case):
        planner = ConsolidationPlanner(
            xen_idle_factor=0.91, xen_workload_factor=0.70
        )
        report = planner.plan(list(GROUP2.inputs().services), 0.01)
        assert group2_case.power_saving == pytest.approx(
            report.power_saving, abs=0.05
        )

    def test_headline_numbers(self, group2_case):
        # The abstract's three claims, measured end to end:
        # 50% infrastructure, ~53% power, >1.5x CPU utilization.
        assert group2_case.consolidated.servers == 4
        assert group2_case.dedicated.servers == 8
        assert group2_case.power_saving == pytest.approx(0.53, abs=0.06)
        assert group2_case.utilization_improvement(CPU) > 1.5


class TestGroup1EndToEnd:
    def test_three_consolidated_carry_group1(self):
        sim = DataCenterSimulation(GROUP1.inputs())
        rng = np.random.default_rng(43)
        case = sim.run_case_study(GROUP1.island_sizes, 3, HORIZON, rng)
        ded = case.dedicated.per_service_throughput
        con = case.consolidated.per_service_throughput
        for name in ded:
            assert con[name] >= 0.9 * ded[name]

    def test_two_consolidated_fail_group1(self):
        sim = DataCenterSimulation(GROUP1.inputs())
        rng = np.random.default_rng(44)
        result = sim.run_consolidated(2, HORIZON, rng)
        # "The failure of this experiment because of too many workloads":
        # blocking is an order of magnitude above target.
        assert result.worst_loss > 0.08
