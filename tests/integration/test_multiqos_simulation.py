"""Integration: per-service QoS sizing validated against the simulator.

With capability pooled, PASTA makes every service see the same
per-resource blocking, so the pool sized for the *strictest* target must
deliver (approximately) that loss to everyone — which is both the point
and the cost of mixing SLA tiers on shared infrastructure.
"""

import numpy as np
import pytest

from repro.core.multiqos import solve_with_targets
from repro.experiments.casestudy import GROUP2
from repro.simulation.datacenter import DataCenterSimulation


class TestMultiQosInSimulation:
    def test_gold_tier_target_met_for_everyone(self):
        inputs = GROUP2.inputs()
        targets = {"web": 0.05, "db": 0.002}
        multi = solve_with_targets(inputs, targets, load_model="offered")
        n = multi.consolidated_servers
        sim = DataCenterSimulation(inputs)
        result = sim.run_consolidated(n, 600.0, np.random.default_rng(99))
        # Both services share the pool; both must see <= ~the strict target
        # (Wilson CI lower bound guards the sampling noise).
        for name in ("web", "db"):
            lo, _hi = result.per_service_loss_ci[name]
            assert lo <= 0.004, f"{name} loss CI {result.per_service_loss_ci[name]}"

    def test_tiering_cost_is_real(self):
        # The shared pool pays for the gold tier: sizing with db at 0.002
        # needs strictly more machines than everyone at 0.05.
        inputs = GROUP2.inputs()
        lax = solve_with_targets(
            inputs, {"web": 0.05, "db": 0.05}, load_model="offered"
        )
        gold = solve_with_targets(
            inputs, {"web": 0.05, "db": 0.002}, load_model="offered"
        )
        assert gold.consolidated_servers > lax.consolidated_servers
        # Dedicated islands, by contrast, only grow the db island.
        assert gold.dedicated_per_service["web"] == lax.dedicated_per_service["web"]
        assert gold.dedicated_per_service["db"] > lax.dedicated_per_service["db"]
