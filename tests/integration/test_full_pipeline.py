"""End-to-end pipeline: JSON deployment -> CLI plan -> DES validation.

The complete user journey: describe a deployment in JSON, size it through
the CLI with the conservative load model, then replay the sized deployment
in the discrete-event simulator and confirm the loss target is met.
"""

import json

import numpy as np
import pytest

from repro.cli import main, parse_deployment
from repro.core import UtilityAnalyticModel
from repro.simulation.datacenter import DataCenterSimulation

DOC = {
    "loss_probability": 0.02,
    "services": [
        {
            "name": "api",
            "arrival_rate": 500.0,
            "service_rates": {"cpu": 900.0, "disk_io": 700.0},
            "impact_factors": {"cpu": 0.75, "disk_io": 0.85},
        },
        {
            "name": "reports",
            "arrival_rate": 40.0,
            "service_rates": {"cpu": 60.0},
            "impact_factors": {"cpu": 0.9},
        },
    ],
}


@pytest.fixture(scope="module")
def sized():
    inputs, _, _ = parse_deployment(DOC)
    solution = UtilityAnalyticModel(inputs, load_model="offered").solve()
    return inputs, solution


class TestPipeline:
    def test_cli_agrees_with_library(self, tmp_path, capsys, sized):
        inputs, solution = sized
        path = tmp_path / "d.json"
        path.write_text(json.dumps(DOC))
        assert main([str(path), "--load-model", "offered", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["consolidated_servers"] == solution.consolidated_servers
        assert doc["dedicated_servers"] == solution.dedicated_servers

    def test_sized_deployment_meets_target_in_simulation(self, sized):
        inputs, solution = sized
        sim = DataCenterSimulation(inputs)
        rng = np.random.default_rng(77)
        islands = {d.service.name: d.servers for d in solution.dedicated}
        case = sim.run_case_study(
            islands, solution.consolidated_servers, 400.0, rng
        )
        b = inputs.loss_probability
        for name, loss in case.dedicated.per_service_loss.items():
            assert loss <= 2.5 * b, f"dedicated {name} loss {loss}"
        for name, loss in case.consolidated.per_service_loss.items():
            assert loss <= 2.5 * b, f"consolidated {name} loss {loss}"

    def test_consolidation_still_saves(self, sized):
        inputs, solution = sized
        # Even the conservative sizing beats dedication.
        assert solution.consolidated_servers < solution.dedicated_servers
