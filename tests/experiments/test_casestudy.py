"""Tests pinning the reconstructed case-study constants to the paper."""

import pytest

from repro.core import ResourceKind, UtilityAnalyticModel, utilization_report
from repro.experiments.casestudy import (
    A_DB_CPU,
    A_WEB_CPU,
    A_WEB_DISK_IO,
    GROUP1,
    GROUP2,
    GROUPS,
    LOSS_PROBABILITY,
    MU_DB_CPU,
    MU_WEB_CPU,
    MU_WEB_DISK_IO,
    case_study_inputs,
    db_service,
    web_service,
)

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


class TestConstants:
    def test_reconstructed_rates(self):
        assert MU_WEB_DISK_IO == 1420.0
        assert MU_WEB_CPU == 3360.0
        assert MU_DB_CPU == 100.0
        assert (A_WEB_DISK_IO, A_DB_CPU, A_WEB_CPU) == (0.8, 0.9, 0.65)
        assert LOSS_PROBABILITY == 0.01

    def test_web_service_spec(self):
        web = web_service(1200.0)
        assert web.mu(CPU) == MU_WEB_CPU
        assert web.mu(DISK) == MU_WEB_DISK_IO
        assert web.impact(CPU) == A_WEB_CPU

    def test_db_service_spec(self):
        db = db_service(80.0)
        assert db.mu(CPU) == MU_DB_CPU
        assert db.offered_load(DISK) == 0.0  # mu_di ~ inf

    def test_native_variants(self):
        assert web_service(1.0, virtualized=False).impact(CPU) == 1.0
        assert db_service(1.0, virtualized=False).impact(CPU) == 1.0


class TestGroups:
    @pytest.mark.parametrize("group", GROUPS, ids=lambda g: g.name)
    def test_model_reproduces_m_and_n(self, group):
        solution = UtilityAnalyticModel(group.inputs()).solve()
        assert solution.dedicated_servers == group.expected_dedicated
        assert solution.consolidated_servers == group.expected_consolidated
        assert (
            solution.dedicated_for("web").servers == group.expected_web_island
        )
        assert solution.dedicated_for("db").servers == group.expected_db_island

    def test_group1_is_paper_6_to_3(self):
        assert GROUP1.expected_dedicated == 6
        assert GROUP1.expected_consolidated == 3

    def test_group2_is_paper_8_to_4(self):
        assert GROUP2.expected_dedicated == 8
        assert GROUP2.expected_consolidated == 4

    def test_headline_50pct_infrastructure_saving(self):
        for group in GROUPS:
            solution = UtilityAnalyticModel(group.inputs()).solve()
            assert solution.infrastructure_saving == pytest.approx(0.5)

    def test_web_bottleneck_is_disk_dedicated(self):
        solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
        assert solution.dedicated_for("web").bottleneck == DISK

    def test_consolidated_bottleneck_is_cpu(self):
        solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
        assert solution.consolidated_bottleneck == CPU

    def test_utilization_improvement_band(self):
        solution = UtilityAnalyticModel(GROUP2.inputs()).solve()
        improvement = utilization_report(solution).bottleneck_improvement
        # Paper: model 1.5x, measured 1.7x; our busy-time accounting says
        # ~2.5x (documented in EXPERIMENTS.md).  Direction must hold firmly.
        assert improvement > 1.5

    def test_island_sizes_mapping(self):
        assert GROUP2.island_sizes == {"web": 4, "db": 4}

    def test_intensive_workload_selection_rule(self):
        # The chosen rates sit in the top half of the Erlang-admissible
        # range of their island (the paper's "intensive workload that the
        # servers can afford").
        from repro.queueing.erlang import max_load_for_blocking

        for group in GROUPS:
            web_limit = max_load_for_blocking(
                group.expected_web_island, group.loss_probability
            ) * MU_WEB_DISK_IO
            db_limit = max_load_for_blocking(
                group.expected_db_island, group.loss_probability
            ) * MU_DB_CPU
            assert 0.5 * web_limit <= group.web_rate <= web_limit
            assert 0.5 * db_limit <= group.db_rate <= db_limit


class TestCaseStudyInputs:
    def test_bundles_both_services(self):
        inputs = case_study_inputs(100.0, 10.0)
        assert {s.name for s in inputs.services} == {"web", "db"}
        assert inputs.loss_probability == LOSS_PROBABILITY

    def test_custom_loss(self):
        assert case_study_inputs(1.0, 1.0, 0.05).loss_probability == 0.05
