"""Every registered experiment runs and its headline shape-claims hold.

These are the reproduction's acceptance tests: each paper artifact's
qualitative finding (who wins, by roughly what factor) must come out of the
corresponding experiment.
"""

import pytest

from repro.experiments import all_experiments, run_experiment
from repro.experiments import runner  # noqa: F401 — populates the registry

EXPECTED = {
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "app1",
    "app2",
    "ext-scale",
    "ext-multiservice",
    "ext-wan",
    "ext-telemetry",
}


def test_registry_complete():
    assert EXPECTED <= set(all_experiments())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_experiment_runs_and_renders(name):
    result = run_experiment(name, seed=7, fast=True)
    assert result.experiment == name
    assert result.rows
    assert result.summary
    assert len(result.text) > 100


class TestShapeClaims:
    """One assertion block per paper artifact."""

    def test_fig2_peak_of_sum_below_sum_of_peaks(self):
        s = run_experiment("fig2").summary
        assert s["peak_of_sum"] < s["sum_of_peaks"]
        assert s["headroom_fraction"] > 0.1
        assert s["consolidated_servers_N"] < s["dedicated_servers_M"]

    def test_fig5_recovers_published_line(self):
        s = run_experiment("fig5").summary
        assert s["fit_slope"] == pytest.approx(-0.012, abs=0.01)
        assert s["fit_intercept"] == pytest.approx(1.082, abs=0.05)
        assert s["fit_r2"] > 0.8
        assert s["bottleneck"] == "disk_io"

    def test_fig6_recovers_published_line(self):
        s = run_experiment("fig6").summary
        assert s["fit_slope"] == pytest.approx(-0.039, abs=0.01)
        assert s["fit_intercept"] == pytest.approx(0.658, abs=0.05)
        assert s["bottleneck"] == "cpu"
        # Native much better than VMs for the CPU-bound workload.
        assert s["native_over_1vm_peak"] > 1.3

    def test_fig7_pinning_wins(self):
        s = run_experiment("fig7").summary
        assert s["pinned_peak_wips"] > s["floating_peak_wips"]
        assert 1.05 <= s["pinned_over_floating"] <= 1.5
        # The paper's configuration: 6 vCPUs pinned to 6 cores.
        assert s["hypervisor_db_cores_granted"] >= 5.0

    def test_fig8_software_bottleneck(self):
        s = run_experiment("fig8").summary
        assert s["software_bottleneck_confirmed"]
        assert s["one_vm_over_multivm"] == pytest.approx(0.55, abs=0.15)
        assert s["fit_ceiling"] == pytest.approx(1.85, abs=0.15)

    def test_fig9_selections_within_limits(self):
        s = run_experiment("fig9").summary
        assert s["db_selection_within_limit"]
        assert s["web_selection_within_limit"]
        assert s["db_selection_utilisation_of_limit"] > 0.5

    def test_table1_matches_paper_groups(self):
        s = run_experiment("table1").summary
        assert s["group1_matches_paper"]
        assert s["group2_matches_paper"]

    def test_fig10_three_consolidated_match_six_dedicated(self):
        s = run_experiment("fig10").summary
        assert s["matches_model"]
        assert s["smallest_similar_N_measured"] == 3
        assert s["N2_degraded"]
        assert s["servers_saved_fraction"] == pytest.approx(0.5)

    def test_fig11_qos_and_utilization(self):
        s = run_experiment("fig11").summary
        assert s["qos_preserved"]
        assert s["cpu_util_improvement_measured"] > 1.5
        # Measured and model-predicted improvements agree (both use the
        # busy-time reading).
        assert s["cpu_util_improvement_measured"] == pytest.approx(
            s["cpu_util_improvement_model"], rel=0.2
        )

    def test_fig12_power_savings(self):
        s = run_experiment("fig12").summary
        assert s["power_saving_fraction"] == pytest.approx(0.53, abs=0.06)
        assert s["busy_increase_below_17pct"]
        assert s["xen_idle_saving_per_server"] == pytest.approx(0.09, abs=0.02)

    def test_fig13_workload_power_direction(self):
        s = run_experiment("fig13").summary
        # Consolidated Xen attributes less power to the same workloads;
        # exact 30% depends on busy-time inflation (see EXPERIMENTS.md).
        assert s["workload_power_saving"] > 0.05

    def test_app1_controller_ordering(self):
        result = run_experiment("app1")
        by_name = {r["controller"]: r["goodput_fraction"] for r in result.rows}
        # Full reactive-control spectrum: static < EWMA-predictive (lags
        # bursts) < taxed proportional < priority/ideal flowing.
        assert by_name["ideal_flow"] >= by_name["proportional_tax2%"]
        assert by_name["proportional_tax2%"] > by_name["predictive_ewma"]
        assert by_name["predictive_ewma"] > by_name["static_partition"]
        assert result.summary["optimal_improvement"] > 1.0

    def test_ext_scale_multiplexing_and_optimism(self):
        s = run_experiment("ext-scale").summary
        assert s["multiplexing_strengthens"]
        assert s["paper_estimate_optimistic_everywhere"]
        assert s["saving_at_largest_scale"] >= 0.5

    def test_ext_multiservice_offered_sizing_deploys(self):
        s = run_experiment("ext-multiservice").summary
        assert s["offered_sizing_meets_target"]
        assert s["N_offered_mode"] > s["N_paper_mode"]
        assert s["paper_N_worst_loss_measured"] > 5 * 0.01
        assert s["infrastructure_saving_offered"] > 0.5
        assert s["power_saving_measured"] > 0.5

    def test_ext_wan_poisson_assumption(self):
        s = run_experiment("ext-wan").summary
        assert s["poisson_matches_erlang"]
        assert s["burstier_traffic_blocks_more"]
        assert s["lrd_loss_over_erlang"] > 1.5

    def test_app2_ideal_hypervisor_ceiling(self):
        s = run_experiment("app2").summary
        assert s["ideal_improvement"] >= s["xen_improvement"] - 1e-6
        assert 0.0 <= s["virtualization_qos_cost"] <= 0.5
        assert s["xen_fraction_of_ideal"] <= 1.0 + 1e-9


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = run_experiment("fig10", seed=11)
        b = run_experiment("fig10", seed=11)
        assert a.rows == b.rows

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
