"""The dynamic-consolidation experiment and its runner integration.

Covers the PR's acceptance criteria: three strategies reported with the
reactive controller strictly between static and oracle on server-hours,
the DES loss ties back to the schedule-aware fluid prediction, control
decisions ride in picklable artifacts (so the export is bit-identical
across ``--jobs``), and the manifest grows a ``control`` block.
"""

import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.runner import main
from repro.obs.timeseries import (
    load_timeseries_jsonl,
    validate_timeseries_doc,
)


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-dynamic", seed=2009, fast=True)

    def test_summary_shape(self, result):
        s = result.summary
        assert s["fleet_hosts"] >= 100
        assert s["static_servers"] >= 1
        assert s["packing_floor"] >= 1
        assert s["reactive_boots"] > 0 and s["reactive_shutdowns"] > 0
        assert s["des_days"] >= 1
        assert 0.0 <= s["des_overall_loss"] <= 1.0
        assert s["telemetry_series"] > 0

    def test_reactive_lands_strictly_between_static_and_oracle(self, result):
        s = result.summary
        assert s["reactive_between"] is True
        assert (
            s["oracle_server_hours"]
            < s["reactive_server_hours"]
            < s["static_server_hours"]
        )
        assert s["saving_vs_static_pct"] > 0.0
        assert s["regret_vs_oracle_pct"] > 0.0

    def test_migrations_are_counted_and_charged(self, result):
        s = result.summary
        assert s["reactive_migrations"] > 0
        assert s["migration_energy_kwh"] > 0.0

    def test_alarms_drive_the_loop(self, result):
        s = result.summary
        assert s["overload_fires"] >= 1
        assert s["underload_fires"] >= 1
        assert s["alarm_clears"] >= 1

    def test_des_loss_ties_to_the_fluid_prediction(self, result):
        s = result.summary
        assert s["fluid_loss_prediction"] > 0.0
        assert s["des_loss_vs_fluid"] == pytest.approx(1.0, abs=0.75)

    def test_strategy_rows_cover_all_three(self, result):
        strategies = {r["strategy"] for r in result.rows}
        assert {"static", "oracle", "reactive"} <= strategies

    def test_artifacts_carry_valid_timeseries_and_control_docs(self, result):
        docs = result.artifacts["timeseries"]
        assert docs
        for doc in docs:
            validate_timeseries_doc(doc)
        series_names = {d["series"] for d in docs if d["kind"] == "series"}
        assert {
            "control.pressure",
            "control.servers_on",
            "control.servers_needed",
            "pool.arrivals",
            "pool.losses",
        } <= series_names
        alarm_rules = {d["rule"] for d in docs if d["kind"] == "alarm"}
        assert {"control-overload", "control-underload"} <= alarm_rules

        control = result.artifacts["control"]
        phases = {d["phase"] for d in control}
        assert phases == {"fluid", "des", "summary"}
        decision_kinds = {d["kind"] for d in control if "kind" in d}
        assert {"boot", "shutdown"} <= decision_kinds

    def test_deterministic_across_repeat_runs(self, result):
        again = run_experiment("ext-dynamic", seed=2009, fast=True)
        assert again.summary == result.summary
        assert again.artifacts["timeseries"] == result.artifacts["timeseries"]
        assert again.artifacts["control"] == result.artifacts["control"]

    def test_seed_changes_the_timeline(self, result):
        other = run_experiment("ext-dynamic", seed=7, fast=True)
        assert other.artifacts["timeseries"] != result.artifacts["timeseries"]


class TestRunnerIntegration:
    def run_jobs(self, tmp_path, capsys, jobs, *extra):
        out = tmp_path / f"jobs{jobs}"
        code = main([
            "ext-dynamic", "--seed", "2009", "--jobs", str(jobs),
            "--output", str(out),
            "--timeseries-out", str(out / "timeseries.jsonl"),
            *extra,
        ])
        capsys.readouterr()
        assert code == 0
        return out

    def test_timeseries_bit_identical_across_jobs(self, tmp_path, capsys):
        texts = {}
        for jobs in (1, 2, 4):
            out = self.run_jobs(tmp_path, capsys, jobs)
            texts[jobs] = (out / "timeseries.jsonl").read_text()
        assert texts[1] == texts[2] == texts[4]
        series, alarms = load_timeseries_jsonl(
            tmp_path / "jobs1" / "timeseries.jsonl"
        )
        assert series and alarms

    def test_manifest_records_control_block(self, tmp_path, capsys):
        out = self.run_jobs(tmp_path, capsys, 1)
        manifest = json.loads((out / "run_manifest.json").read_text())
        block = manifest["control"]
        assert block["decisions"] > 0
        assert block["boots"] > 0
        assert block["shutdowns"] > 0
        assert block["migrations"] > 0
        assert block["decisions_printed"] is False
        # The control block must stay out of the reproducibility hash.
        assert "control" not in manifest["inputs"]

    def test_control_flag_prints_decisions(self, tmp_path, capsys):
        out = tmp_path / "controlled"
        code = main([
            "ext-dynamic", "--seed", "2009",
            "--output", str(out), "--control",
        ])
        captured = capsys.readouterr()
        assert code == 0
        lines = [
            ln for ln in captured.out.splitlines()
            if ln.strip().startswith("control ")
        ]
        assert lines, "expected control decision lines with --control"
        assert any("[fluid]" in ln for ln in lines)
        assert any("[des]" in ln for ln in lines)
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert manifest["control"]["decisions_printed"] is True
