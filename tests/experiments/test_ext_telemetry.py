"""The telemetry extension experiment and its runner integration.

Covers the PR's acceptance criteria: the diurnal run records a full
telemetry timeline, both alarm kinds fire, the loss in the peak window ties
back to Erlang B, and the exported ``repro.timeseries/v1`` artifact is
bit-identical across ``--jobs`` values (telemetry rides in pickled
experiment results, never in worker-process globals).
"""

import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.runner import main
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    load_timeseries_jsonl,
    validate_timeseries_doc,
)


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-telemetry", seed=2009, fast=True)

    def test_summary_shape(self, result):
        s = result.summary
        assert s["servers"] >= 1
        assert 0.0 <= s["overall_loss"] <= 1.0
        assert s["peak_offered_load"] > s["mean_offered_load"]
        assert s["telemetry_series"] > 0

    def test_both_alarm_kinds_fire(self, result):
        assert result.summary["overload_fires"] >= 1
        assert result.summary["underload_fires"] >= 1
        assert result.summary["both_alarm_kinds_fired"] is True

    def test_peak_loss_ties_to_erlang(self, result):
        # The diurnal peak window behaves quasi-stationarily, so the
        # simulated loss there should land near the Erlang-B prediction
        # for the peak offered load (generous band: finite window).
        assert result.summary["peak_loss_vs_erlang"] == pytest.approx(
            1.0, abs=0.6
        )

    def test_artifacts_carry_valid_timeseries_docs(self, result):
        docs = result.artifacts["timeseries"]
        assert docs
        for doc in docs:
            validate_timeseries_doc(doc)
        kinds = {d["kind"] for d in docs}
        assert kinds == {"series", "alarm"}
        series_names = {d["series"] for d in docs if d["kind"] == "series"}
        assert {
            "pool.occupancy",
            "pool.capacity",
            "pool.busy_servers",
            "pool.arrivals",
            "pool.admits",
            "pool.losses",
            "pool.power_watts",
            "engine.events",
        } <= series_names

    def test_deterministic_across_repeat_runs(self, result):
        again = run_experiment("ext-telemetry", seed=2009, fast=True)
        assert again.summary == result.summary
        assert again.artifacts["timeseries"] == result.artifacts["timeseries"]

    def test_seed_changes_the_timeline(self, result):
        other = run_experiment("ext-telemetry", seed=7, fast=True)
        assert other.artifacts["timeseries"] != result.artifacts["timeseries"]


class TestRunnerIntegration:
    def run_jobs(self, tmp_path, capsys, jobs, *extra):
        out = tmp_path / f"jobs{jobs}"
        code = main([
            "ext-telemetry", "--seed", "2009", "--jobs", str(jobs),
            "--output", str(out),
            "--timeseries-out", str(out / "timeseries.jsonl"),
            *extra,
        ])
        capsys.readouterr()
        assert code == 0
        return out

    def test_timeseries_bit_identical_across_jobs(self, tmp_path, capsys):
        texts = {}
        for jobs in (1, 2, 4):
            out = self.run_jobs(tmp_path, capsys, jobs)
            texts[jobs] = (out / "timeseries.jsonl").read_text()
        assert texts[1] == texts[2] == texts[4]
        series, alarms = load_timeseries_jsonl(
            tmp_path / "jobs1" / "timeseries.jsonl"
        )
        assert series and alarms

    def test_manifest_records_telemetry_block(self, tmp_path, capsys):
        out = self.run_jobs(tmp_path, capsys, 1)
        manifest = json.loads((out / "run_manifest.json").read_text())
        block = manifest["timeseries"]
        assert block["out"] == str(out / "timeseries.jsonl")
        assert block["documents"] > 0
        assert block["alarm_events"] >= 2
        assert manifest["trace"]["dropped_by_kind"] == {}

    def test_alarms_flag_prints_transitions(self, tmp_path, capsys):
        out = tmp_path / "alarmed"
        code = main([
            "ext-telemetry", "--seed", "2009",
            "--output", str(out), "--alarms",
        ])
        captured = capsys.readouterr()
        assert code == 0
        lines = [
            ln for ln in captured.out.splitlines()
            if ln.strip().startswith("alarm ")
        ]
        assert any("fire" in ln for ln in lines)
        assert any("clear" in ln for ln in lines)

    def test_experiments_without_telemetry_export_empty_stream(
        self, tmp_path, capsys
    ):
        out = tmp_path / "plain"
        code = main([
            "table1", "--output", str(out),
            "--timeseries-out", str(out / "timeseries.jsonl"),
        ])
        capsys.readouterr()
        assert code == 0
        assert (out / "timeseries.jsonl").read_text() == ""

    def test_schema_constant_matches_artifact(self, tmp_path, capsys):
        out = self.run_jobs(tmp_path, capsys, 1)
        first = json.loads(
            (out / "timeseries.jsonl").read_text().splitlines()[0]
        )
        assert first["schema"] == TIMESERIES_SCHEMA
